//! Integration test of the plan/execute retrieval API's headline claims:
//!
//! 1. A 3-QoI [`RetrievalRequest`] over QoIs sharing a field reads
//!    **strictly fewer source bytes** than the same three tolerances
//!    issued as independent legacy `Session::request` calls (the shared
//!    field's fragments move once instead of three times).
//! 2. Batched execution over a [`FileSource`] performs **strictly fewer
//!    read operations** than per-fragment execution for identical bytes
//!    (adjacent fragments coalesce into single range reads).
//!
//! Both are asserted by counters, not by timing.

use pqr::prelude::*;

/// Three QoIs all deriving from field 0 (`Vx`), two of them from more:
/// V = √(Vx²+Vy²), KE-ish Vx² and the product Vx·Vy.
const TOLS: [(&str, f64); 3] = [("V", 1e-4), ("Vx2", 1e-4), ("VxVy", 1e-3)];

fn build_archive() -> Archive {
    let n = 3000;
    let vx: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.013).sin() * 30.0 + 50.0)
        .collect();
    let vy: Vec<f64> = (0..n).map(|i| (i as f64 * 0.021).cos() * 15.0).collect();
    ArchiveBuilder::new(&[n])
        .field("Vx", vx)
        .field("Vy", vy)
        .qoi("V", velocity_magnitude(0, 2))
        .qoi("Vx2", QoiExpr::var(0).pow(2))
        .qoi("VxVy", species_product(0, 1))
        .build()
        .unwrap()
}

fn save_archive(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pqr_plan_execution_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}_{}.pqrx", std::process::id()));
    build_archive().save(&path).unwrap();
    path
}

#[test]
fn batched_multi_qoi_reads_strictly_fewer_bytes_than_sequential_requests() {
    let path = save_archive("bytes");

    // batched: one session, one 3-target request
    let batched = Archive::open(&path).unwrap();
    let mut session = batched.session().unwrap();
    let mut request = RetrievalRequest::new();
    for (name, tol) in TOLS {
        request = request.qoi(name, tol);
    }
    let plan = session.plan(&request).unwrap();
    assert!(
        plan.shared_fields().contains(&0),
        "the three QoIs must share field Vx"
    );
    let report = session.execute(&request).unwrap();
    assert!(report.satisfied);
    assert!(report.shared_bytes_saved > 0);
    let batched_bytes = batched.source_stats().fetched_bytes;

    // sequential legacy: the same three tolerances, each as an independent
    // `Session::request` against its own lazily opened archive — the
    // pre-plan workflow, where every request re-reads the shared field
    let mut sequential_bytes = 0u64;
    for (name, tol) in TOLS {
        let solo = Archive::open(&path).unwrap();
        let mut s = solo.session().unwrap();
        let r = s.request(name, tol).unwrap();
        assert!(r.satisfied);
        sequential_bytes += solo.source_stats().fetched_bytes;
    }

    assert!(
        batched_bytes < sequential_bytes,
        "batched plan read {batched_bytes} B, sequential requests {sequential_bytes} B"
    );
    // the guarantee still holds per target
    for t in &report.targets {
        assert!(t.satisfied && t.max_est_error <= t.tol_abs);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn file_batched_execution_uses_strictly_fewer_read_ops_for_identical_bytes() {
    let path = save_archive("readops");
    let run = |batch_io: bool| {
        let mut archive = Archive::open(&path).unwrap();
        archive.set_engine_config(EngineConfig {
            batch_io,
            ..Default::default()
        });
        let mut session = archive.session().unwrap();
        let mut request = RetrievalRequest::new();
        for (name, tol) in TOLS {
            request = request.qoi(name, tol);
        }
        let report = session.execute(&request).unwrap();
        assert!(report.satisfied);
        let stats = archive.source_stats();
        (stats.read_ops, stats.fetched_bytes, stats.fetches)
    };
    let (ops_batched, bytes_batched, frags_batched) = run(true);
    let (ops_perfrag, bytes_perfrag, frags_perfrag) = run(false);

    // identical fragments and bytes move either way...
    assert_eq!(bytes_batched, bytes_perfrag);
    assert_eq!(frags_batched, frags_perfrag);
    // ...but coalesced ranges collapse the operation count
    assert!(
        ops_batched < ops_perfrag,
        "batched {ops_batched} read ops !< per-fragment {ops_perfrag}"
    );
    // per-fragment execution pays one op per fragment
    assert_eq!(ops_perfrag, frags_perfrag);
    std::fs::remove_file(&path).ok();
}

#[test]
fn decode_workers_and_overlap_do_not_change_results() {
    // the decode parallelism / overlapped-prefetch matrix over a real
    // file-backed archive: reconstructions, certified bounds and byte
    // accounting must be identical in every cell (CI re-runs this whole
    // file under PQR_THREADS=1 and =4, which covers the env-driven
    // default worker count as well)
    let path = save_archive("matrix");
    let run = |workers: usize, overlap_io: bool| {
        let mut archive = Archive::open(&path).unwrap();
        archive.set_engine_config(EngineConfig {
            workers,
            overlap_io,
            ..Default::default()
        });
        let mut session = archive.session().unwrap();
        let mut request = RetrievalRequest::new();
        for (name, tol) in TOLS {
            request = request.qoi(name, tol);
        }
        let report = session.execute(&request).unwrap();
        assert!(report.satisfied);
        let stats = archive.source_stats();
        (
            session.reconstruction("Vx").unwrap().to_vec(),
            session.reconstruction("Vy").unwrap().to_vec(),
            report
                .field_bounds
                .iter()
                .map(|b| b.to_bits())
                .collect::<Vec<_>>(),
            report
                .targets
                .iter()
                .map(|t| (t.satisfied, t.max_est_error.to_bits(), t.bytes))
                .collect::<Vec<_>>(),
            report.bytes_fetched,
            stats.fetches,
            stats.fetched_bytes,
        )
    };
    let baseline = run(1, false); // the pre-parallel executor, exactly
    for (workers, overlap) in [(1, true), (4, false), (4, true), (8, true)] {
        assert_eq!(
            baseline,
            run(workers, overlap),
            "workers={workers} overlap={overlap} changed results"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn plan_report_read_ops_reflect_the_backend() {
    let path = save_archive("report_ops");
    let archive = Archive::open(&path).unwrap();
    let mut session = archive.session().unwrap();
    let report = session
        .execute(&RetrievalRequest::new().qoi("V", 1e-3).qoi("Vx2", 1e-3))
        .unwrap();
    assert!(report.satisfied);
    assert!(report.fragments_read > 0);
    assert!(report.read_ops > 0);
    assert!(
        report.read_ops < report.fragments_read,
        "coalescing must collapse ops ({} ops for {} fragments)",
        report.read_ops,
        report.fragments_read
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn shared_store_decodes_once_and_serves_looser_sessions_for_free() {
    // the service acceptance criterion, counter-asserted: session 1 pulls
    // the store to a tight depth; session 2 at a looser tolerance must
    // perform 0 source fetches and 0 bitplane decodes — served entirely
    // from the shared decode state
    let path = save_archive("decode_once");
    let archive = Archive::open(&path).unwrap();
    let service = archive.service().unwrap();

    let mut tight = service.session().unwrap();
    let r1 = tight.request("V", 1e-5).unwrap();
    assert!(r1.satisfied);
    assert_eq!(
        tight.fragments_decoded(),
        0,
        "service sessions never decode themselves"
    );
    let store_after_tight = service.store_stats();
    let source_after_tight = service.source_stats();
    assert!(store_after_tight.fragments_decoded > 0);

    let mut loose = service.session().unwrap();
    let r2 = loose.request("V", 1e-2).unwrap();
    assert!(r2.satisfied);
    let store_after_loose = service.store_stats();
    let source_after_loose = service.source_stats();
    // 0 source fetches — except the explicitly-counted rehydration bytes a
    // tight PQR_STORE_BUDGET forces (the CI matrix re-runs this file with
    // one; unbounded, the delta is exactly zero)
    let rehydration_delta =
        store_after_loose.rehydration_bytes - store_after_tight.rehydration_bytes;
    if rehydration_delta == 0 {
        assert_eq!(
            source_after_loose.fetches, source_after_tight.fetches,
            "looser session touched the source"
        );
    }
    assert_eq!(
        source_after_loose.fetched_bytes,
        source_after_tight.fetched_bytes + rehydration_delta
    );
    // ...and 0 decodes — every byte of state was reused
    assert_eq!(
        store_after_loose.fragments_decoded, store_after_tight.fragments_decoded,
        "looser session decoded bitplanes the store already held"
    );
    assert_eq!(loose.fragments_decoded(), 0);
    // the looser session adopted the deepest state: same reconstruction
    assert_eq!(
        tight.reconstruction("Vx").unwrap(),
        loose.reconstruction("Vx").unwrap()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn sequential_service_sessions_match_one_legacy_engine_byte_for_byte() {
    // the sharing layer must be invisible in results: K sessions run one
    // after another through the service reproduce exactly what a single
    // persistent legacy session produces for the same request series —
    // reconstructions, certified bounds and cumulative byte accounting
    let path = save_archive("service_equiv");
    let requests: [(&str, f64); 4] = [("V", 1e-2), ("Vx2", 1e-3), ("V", 1e-5), ("VxVy", 1e-3)];

    let service_archive = Archive::open(&path).unwrap();
    let service = service_archive.service().unwrap();
    let legacy_archive = Archive::open(&path).unwrap();
    let mut legacy = legacy_archive.session().unwrap();

    for (name, tol) in requests {
        let mut s = service.session().unwrap();
        let rs = s.request(name, tol).unwrap();
        let rl = legacy.request(name, tol).unwrap();
        assert_eq!(rs.satisfied, rl.satisfied, "{name}@{tol}");
        assert_eq!(
            rs.max_est_errors[0].to_bits(),
            rl.max_est_errors[0].to_bits(),
            "{name}@{tol}: certified bound drifted"
        );
        assert_eq!(rs.total_fetched, rl.total_fetched, "{name}@{tol}");
        for field in ["Vx", "Vy"] {
            assert_eq!(
                s.reconstruction(field).unwrap(),
                legacy.reconstruction(field).unwrap(),
                "{name}@{tol}: {field} reconstruction drifted"
            );
        }
    }
    // the service read exactly the bytes the single engine read — plus,
    // under a tight store budget, exactly its counted rehydration bytes:
    // sharing never re-fetches anything it doesn't explicitly account for
    assert_eq!(
        service_archive.source_stats().fetched_bytes,
        legacy_archive.source_stats().fetched_bytes + service.store_stats().rehydration_bytes
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn concurrent_mixed_tolerance_sessions_stress() {
    // 8 threads, mixed tolerances, one shared store (CI re-runs this file
    // under PQR_THREADS=1 and =4): every session certifies, the guarantee
    // holds per session, and the shared arm reads no more source bytes
    // than the per-session sum of independent cold engines
    let path = save_archive("stress");
    let tols = [1e-2, 1e-5, 1e-3, 1e-4, 1e-2, 1e-5, 1e-4, 1e-3];

    let shared_archive = Archive::open(&path).unwrap();
    let service = shared_archive.service().unwrap();
    std::thread::scope(|scope| {
        for (k, &tol) in tols.iter().enumerate() {
            let service = service.clone();
            let name = ["V", "Vx2", "VxVy"][k % 3];
            scope.spawn(move || {
                let mut session = service.session().unwrap();
                let report = session.request(name, tol).unwrap();
                assert!(report.satisfied, "session {k}: {name}@{tol}");
                assert_eq!(session.fragments_decoded(), 0);
            });
        }
    });
    let shared_bytes = shared_archive.source_stats().fetched_bytes;

    let mut cold_bytes = 0u64;
    for (k, &tol) in tols.iter().enumerate() {
        let solo = Archive::open(&path).unwrap();
        let mut s = solo.session().unwrap();
        let r = s.request(["V", "Vx2", "VxVy"][k % 3], tol).unwrap();
        assert!(r.satisfied);
        cold_bytes += solo.source_stats().fetched_bytes;
    }
    // under a tight store budget the shared arm may additionally pay its
    // explicitly-counted rehydration bytes; it must never exceed the cold
    // sum by more than that
    let rehydrated = service.store_stats().rehydration_bytes;
    assert!(
        shared_bytes <= cold_bytes + rehydrated,
        "shared {shared_bytes} B read more than cold sum {cold_bytes} B + rehydrated {rehydrated} B"
    );
    std::fs::remove_file(&path).ok();
}
