//! Integration test of the plan/execute retrieval API's headline claims:
//!
//! 1. A 3-QoI [`RetrievalRequest`] over QoIs sharing a field reads
//!    **strictly fewer source bytes** than the same three tolerances
//!    issued as independent legacy `Session::request` calls (the shared
//!    field's fragments move once instead of three times).
//! 2. Batched execution over a [`FileSource`] performs **strictly fewer
//!    read operations** than per-fragment execution for identical bytes
//!    (adjacent fragments coalesce into single range reads).
//!
//! Both are asserted by counters, not by timing.

use pqr::prelude::*;

/// Three QoIs all deriving from field 0 (`Vx`), two of them from more:
/// V = √(Vx²+Vy²), KE-ish Vx² and the product Vx·Vy.
const TOLS: [(&str, f64); 3] = [("V", 1e-4), ("Vx2", 1e-4), ("VxVy", 1e-3)];

fn build_archive() -> Archive {
    let n = 3000;
    let vx: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.013).sin() * 30.0 + 50.0)
        .collect();
    let vy: Vec<f64> = (0..n).map(|i| (i as f64 * 0.021).cos() * 15.0).collect();
    ArchiveBuilder::new(&[n])
        .field("Vx", vx)
        .field("Vy", vy)
        .qoi("V", velocity_magnitude(0, 2))
        .qoi("Vx2", QoiExpr::var(0).pow(2))
        .qoi("VxVy", species_product(0, 1))
        .build()
        .unwrap()
}

fn save_archive(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pqr_plan_execution_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}_{}.pqrx", std::process::id()));
    build_archive().save(&path).unwrap();
    path
}

#[test]
fn batched_multi_qoi_reads_strictly_fewer_bytes_than_sequential_requests() {
    let path = save_archive("bytes");

    // batched: one session, one 3-target request
    let batched = Archive::open(&path).unwrap();
    let mut session = batched.session().unwrap();
    let mut request = RetrievalRequest::new();
    for (name, tol) in TOLS {
        request = request.qoi(name, tol);
    }
    let plan = session.plan(&request).unwrap();
    assert!(
        plan.shared_fields().contains(&0),
        "the three QoIs must share field Vx"
    );
    let report = session.execute(&request).unwrap();
    assert!(report.satisfied);
    assert!(report.shared_bytes_saved > 0);
    let batched_bytes = batched.source_stats().fetched_bytes;

    // sequential legacy: the same three tolerances, each as an independent
    // `Session::request` against its own lazily opened archive — the
    // pre-plan workflow, where every request re-reads the shared field
    let mut sequential_bytes = 0u64;
    for (name, tol) in TOLS {
        let solo = Archive::open(&path).unwrap();
        let mut s = solo.session().unwrap();
        let r = s.request(name, tol).unwrap();
        assert!(r.satisfied);
        sequential_bytes += solo.source_stats().fetched_bytes;
    }

    assert!(
        batched_bytes < sequential_bytes,
        "batched plan read {batched_bytes} B, sequential requests {sequential_bytes} B"
    );
    // the guarantee still holds per target
    for t in &report.targets {
        assert!(t.satisfied && t.max_est_error <= t.tol_abs);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn file_batched_execution_uses_strictly_fewer_read_ops_for_identical_bytes() {
    let path = save_archive("readops");
    let run = |batch_io: bool| {
        let mut archive = Archive::open(&path).unwrap();
        archive.set_engine_config(EngineConfig {
            batch_io,
            ..Default::default()
        });
        let mut session = archive.session().unwrap();
        let mut request = RetrievalRequest::new();
        for (name, tol) in TOLS {
            request = request.qoi(name, tol);
        }
        let report = session.execute(&request).unwrap();
        assert!(report.satisfied);
        let stats = archive.source_stats();
        (stats.read_ops, stats.fetched_bytes, stats.fetches)
    };
    let (ops_batched, bytes_batched, frags_batched) = run(true);
    let (ops_perfrag, bytes_perfrag, frags_perfrag) = run(false);

    // identical fragments and bytes move either way...
    assert_eq!(bytes_batched, bytes_perfrag);
    assert_eq!(frags_batched, frags_perfrag);
    // ...but coalesced ranges collapse the operation count
    assert!(
        ops_batched < ops_perfrag,
        "batched {ops_batched} read ops !< per-fragment {ops_perfrag}"
    );
    // per-fragment execution pays one op per fragment
    assert_eq!(ops_perfrag, frags_perfrag);
    std::fs::remove_file(&path).ok();
}

#[test]
fn decode_workers_and_overlap_do_not_change_results() {
    // the decode parallelism / overlapped-prefetch matrix over a real
    // file-backed archive: reconstructions, certified bounds and byte
    // accounting must be identical in every cell (CI re-runs this whole
    // file under PQR_THREADS=1 and =4, which covers the env-driven
    // default worker count as well)
    let path = save_archive("matrix");
    let run = |decode_workers: usize, overlap_io: bool| {
        let mut archive = Archive::open(&path).unwrap();
        archive.set_engine_config(EngineConfig {
            decode_workers,
            overlap_io,
            ..Default::default()
        });
        let mut session = archive.session().unwrap();
        let mut request = RetrievalRequest::new();
        for (name, tol) in TOLS {
            request = request.qoi(name, tol);
        }
        let report = session.execute(&request).unwrap();
        assert!(report.satisfied);
        let stats = archive.source_stats();
        (
            session.reconstruction("Vx").unwrap().to_vec(),
            session.reconstruction("Vy").unwrap().to_vec(),
            report
                .field_bounds
                .iter()
                .map(|b| b.to_bits())
                .collect::<Vec<_>>(),
            report
                .targets
                .iter()
                .map(|t| (t.satisfied, t.max_est_error.to_bits(), t.bytes))
                .collect::<Vec<_>>(),
            report.bytes_fetched,
            stats.fetches,
            stats.fetched_bytes,
        )
    };
    let baseline = run(1, false); // the pre-parallel executor, exactly
    for (workers, overlap) in [(1, true), (4, false), (4, true), (8, true)] {
        assert_eq!(
            baseline,
            run(workers, overlap),
            "workers={workers} overlap={overlap} changed results"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn plan_report_read_ops_reflect_the_backend() {
    let path = save_archive("report_ops");
    let archive = Archive::open(&path).unwrap();
    let mut session = archive.session().unwrap();
    let report = session
        .execute(&RetrievalRequest::new().qoi("V", 1e-3).qoi("Vx2", 1e-3))
        .unwrap();
    assert!(report.satisfied);
    assert!(report.fragments_read > 0);
    assert!(report.read_ops > 0);
    assert!(
        report.read_ops < report.fragments_read,
        "coalescing must collapse ops ({} ops for {} fragments)",
        report.read_ops,
        report.fragments_read
    );
    std::fs::remove_file(&path).ok();
}
