//! Cross-client round-coalescing equivalence suite.
//!
//! The contract under test: coalescing is a **pure scheduling
//! optimisation** — replies of K concurrent clients served through union
//! rounds are byte-identical to a *union-first serial oracle* (execute the
//! merged request once on a fresh shared store, then each client's own
//! request on its own session). This holds across every representation
//! scheme, file and in-memory backends, and under a tight global store
//! budget, because the union only moves the shared store to a depth the
//! uncoalesced race would also have reached, and each member still
//! executes its own request on its own session.
//!
//! Timing-dependent observability fields (`queue_wait_ms`, per-request
//! fetch deltas, the store counter deltas riding each report) are
//! deliberately excluded from the comparisons: they describe *when* work
//! happened relative to other clients — already nondeterministic for
//! uncoalesced concurrent clients — not *what* the client received. (So is
//! `total_fetched`: it sums the accounting of every reader the session
//! holds, including fields a request never touched, at whatever depth they
//! had when the session opened.) The reply contract compared here is
//! satisfaction, the certified per-target bounds, and every value byte.

use pqr::prelude::*;
use pqr::serve::{Registry, RemoteReport, ServeClient, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

const N: usize = 2400;

fn build_archive_bytes(scheme: Scheme) -> Vec<u8> {
    let vx: Vec<f64> = (0..N)
        .map(|i| (i as f64 * 0.017).sin() * 24.0 + 40.0)
        .collect();
    let vy: Vec<f64> = (0..N).map(|i| (i as f64 * 0.011).cos() * 12.0).collect();
    ArchiveBuilder::new(&[N])
        .field("Vx", vx)
        .field("Vy", vy)
        .qoi("V", velocity_magnitude(0, 2))
        .qoi("Vx2", QoiExpr::var(0).pow(2))
        .qoi("VxVy", species_product(0, 1))
        .scheme(scheme)
        .build()
        .unwrap()
        .to_bytes()
}

fn mem_archive(bytes: &[u8]) -> Archive {
    Archive::from_fragment_source(InMemorySource::new(bytes.to_vec()).unwrap()).unwrap()
}

fn start(archive: Archive, config: ServerConfig) -> (Server, SocketAddr) {
    let mut registry = Registry::new();
    registry.register("ds", archive).unwrap();
    let server = Server::start("127.0.0.1:0", registry, config).unwrap();
    let addr = server.local_addr();
    (server, addr)
}

fn one_qoi(name: &str, tol: f64) -> RetrievalRequest {
    RetrievalRequest::new().qoi(name, tol)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Overlapping per-client workloads: repeated (name, tolerance) pairs
/// exercise the union's target dedup, mixed tightness exercises
/// deeper-than-needed adoption.
fn workloads(k: usize) -> Vec<(String, RetrievalRequest)> {
    let menu = [
        ("V", 1e-2),
        ("V", 1e-4),
        ("Vx2", 1e-4),
        ("VxVy", 1e-3),
        ("V", 1e-4),
        ("Vx2", 1e-3),
    ];
    (0..k)
        .map(|i| {
            let (name, tol) = menu[i % menu.len()];
            (name.to_string(), one_qoi(name, tol))
        })
        .collect()
}

/// Deterministic per-thread start jitter (xorshift — no rand crate), so
/// each case races the gathering window on a different schedule.
fn jitter_ms(seed: u64, i: u64) -> u64 {
    let mut x = (seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x % 40
}

/// A config that gathers all `k` clients into one round: the window stays
/// open generously, but closes the moment the whole fleet has joined.
fn coalescing_config(k: usize) -> ServerConfig {
    ServerConfig {
        workers: k.max(2),
        pending_queue: 32,
        decode_permits: 2,
        busy_wait_ms: 60_000,
        coalesce: true,
        coalesce_window_ms: 300,
        coalesce_min_batch: k,
        ..ServerConfig::default()
    }
}

fn concurrent_replies(
    addr: SocketAddr,
    work: &[(String, RetrievalRequest)],
    seed: u64,
) -> Vec<RemoteReport> {
    std::thread::scope(|s| {
        let handles: Vec<_> = work
            .iter()
            .enumerate()
            .map(|(i, (name, req))| {
                let (name, req) = (name.clone(), req.clone());
                s.spawn(move || {
                    let mut c = ServeClient::connect(addr).unwrap();
                    c.set_io_timeout(Some(Duration::from_secs(60))).unwrap();
                    c.open("ds").unwrap().expect_ok("open");
                    std::thread::sleep(Duration::from_millis(jitter_ms(seed, i as u64)));
                    let r = c
                        .retrieve(&req, &[&name], false)
                        .unwrap()
                        .expect_ok("retrieve");
                    c.close().unwrap();
                    r
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// The serial oracle: one fresh shared store executes the union of all
/// requests first, then each client's request runs on its own session.
struct OracleReply {
    satisfied: bool,
    targets: Vec<(bool, u64, u64)>,
    values: Vec<u64>,
}

fn union_first_oracle(archive: &Archive, work: &[(String, RetrievalRequest)]) -> Vec<OracleReply> {
    let service = archive.service().unwrap();
    let reqs: Vec<_> = work.iter().map(|(_, r)| r.clone()).collect();
    let mut union = service.session().unwrap();
    union.execute(&merge_requests(&reqs)).unwrap();
    work.iter()
        .map(|(name, req)| {
            let mut s = service.session().unwrap();
            let rep = s.execute(req).unwrap();
            OracleReply {
                satisfied: rep.satisfied,
                targets: rep
                    .targets
                    .iter()
                    .map(|t| (t.satisfied, t.tol_abs.to_bits(), t.max_est_error.to_bits()))
                    .collect(),
                values: bits(&s.qoi_values(name).unwrap()),
            }
        })
        .collect()
}

fn assert_matches_oracle(
    tag: &str,
    work: &[(String, RetrievalRequest)],
    replies: &[RemoteReport],
    oracle: &[OracleReply],
) {
    for (i, ((name, _), (reply, want))) in work.iter().zip(replies.iter().zip(oracle)).enumerate() {
        assert_eq!(
            reply.satisfied, want.satisfied,
            "{tag}: client {i} satisfied"
        );
        let got: Vec<_> = reply
            .targets
            .iter()
            .map(|t| (t.satisfied, t.tol_abs.to_bits(), t.max_est_error.to_bits()))
            .collect();
        assert_eq!(got, want.targets, "{tag}: client {i} certified bounds");
        assert_eq!(
            bits(&reply.values[name]),
            want.values,
            "{tag}: client {i} ({name}) values diverged from the union-first oracle"
        );
    }
}

#[test]
fn coalesced_replies_match_union_first_serial_for_every_scheme() {
    for (case, scheme) in Scheme::extended().into_iter().enumerate() {
        let bytes = build_archive_bytes(scheme);
        let k = 6;
        let work = workloads(k);
        let (server, addr) = start(mem_archive(&bytes), coalescing_config(k));
        let replies = concurrent_replies(addr, &work, 0xC0A1 + case as u64);
        let snap = server.shutdown();

        assert_eq!(snap.retrieves, k as u64, "{}", scheme.name());
        assert_eq!(snap.shed_busy, 0, "{}", scheme.name());
        assert!(
            snap.coalesced_rounds >= 1,
            "{}: no union round formed",
            scheme.name()
        );
        assert!(
            snap.coalesced_requests >= 2,
            "{}: rounds formed but served nobody",
            scheme.name()
        );

        let oracle = union_first_oracle(&mem_archive(&bytes), &work);
        assert_matches_oracle(scheme.name(), &work, &replies, &oracle);
    }
}

#[test]
fn file_backend_coalesced_replies_match_union_first_serial() {
    let bytes = build_archive_bytes(Scheme::PmgardHb);
    let dir = std::env::temp_dir().join("pqr_coalesce_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("file_{}.pqrx", std::process::id()));
    std::fs::write(&path, &bytes).unwrap();

    let k = 6;
    let work = workloads(k);
    let (server, addr) = start(Archive::open(&path).unwrap(), coalescing_config(k));
    let replies = concurrent_replies(addr, &work, 0xF11E);
    let snap = server.shutdown();
    assert_eq!(snap.retrieves, k as u64);
    assert!(snap.coalesced_rounds >= 1);

    let oracle = union_first_oracle(&Archive::open(&path).unwrap(), &work);
    assert_matches_oracle("file", &work, &replies, &oracle);
    std::fs::remove_file(&path).ok();
}

#[test]
fn tight_shared_budget_preserves_reply_bytes() {
    // the server runs every dataset against one 128 KiB decoded-state
    // ceiling (evicting and rehydrating under the concurrent load); the
    // oracle runs unbudgeted — bit-exact rehydration must make them agree
    let bytes = build_archive_bytes(Scheme::PmgardHb);
    let k = 6;
    let work = workloads(k);
    let budget = Arc::new(StoreBudget::with_limit(128 << 10));
    let mut registry = Registry::with_budget(budget);
    registry.register("ds", mem_archive(&bytes)).unwrap();
    let server = Server::start("127.0.0.1:0", registry, coalescing_config(k)).unwrap();
    let addr = server.local_addr();

    let replies = concurrent_replies(addr, &work, 0xB0D6);
    let snap = server.shutdown();
    assert_eq!(snap.retrieves, k as u64);

    let oracle = union_first_oracle(&mem_archive(&bytes), &work);
    assert_matches_oracle("budget", &work, &replies, &oracle);
}

#[test]
fn singleton_rounds_are_identical_to_coalescing_off() {
    // a lone client must take the individual path (no union, no round
    // session) and be bit-and-counter identical to a coalescing-off server
    let bytes = build_archive_bytes(Scheme::PmgardHb);
    let series = [("V", 1e-2), ("Vx2", 1e-4), ("V", 1e-5), ("VxVy", 1e-3)];
    let run = |coalesce: bool| {
        let config = ServerConfig {
            coalesce,
            ..ServerConfig::default()
        };
        let (server, addr) = start(mem_archive(&bytes), config);
        let mut c = ServeClient::connect(addr).unwrap();
        c.set_io_timeout(Some(Duration::from_secs(60))).unwrap();
        c.open("ds").unwrap().expect_ok("open");
        let replies: Vec<_> = series
            .iter()
            .map(|(name, tol)| {
                c.retrieve(&one_qoi(name, *tol), &[name], false)
                    .unwrap()
                    .expect_ok("retrieve")
            })
            .collect();
        c.close().unwrap();
        (replies, server.shutdown())
    };
    let (on, snap_on) = run(true);
    let (off, snap_off) = run(false);

    // the singleton bypass means no rounds ever formed
    assert_eq!(snap_on.coalesced_rounds, 0);
    assert_eq!(snap_on.coalesced_requests, 0);
    assert_eq!(snap_on.coalesce_fallbacks, 0);

    for (i, (a, b)) in on.iter().zip(&off).enumerate() {
        assert_eq!(a.satisfied, b.satisfied, "request {i}");
        assert_eq!(a.iterations, b.iterations, "request {i}");
        assert_eq!(a.bytes_fetched, b.bytes_fetched, "request {i}");
        assert_eq!(a.total_fetched, b.total_fetched, "request {i}");
        assert_eq!(
            a.store_fragments_decoded, b.store_fragments_decoded,
            "request {i}"
        );
        assert_eq!(a.store_refine_reuses, b.store_refine_reuses, "request {i}");
        let name = series[i].0;
        assert_eq!(bits(&a.values[name]), bits(&b.values[name]), "request {i}");
    }
    // the dataset-level store counters agree exactly as well
    let (sa, sb) = (snap_on.datasets[0].store, snap_off.datasets[0].store);
    assert_eq!(sa.fragments_decoded, sb.fragments_decoded);
    assert_eq!(sa.refine_advances, sb.refine_advances);
    assert_eq!(sa.refine_reuses, sb.refine_reuses);
    assert_eq!(sa.adoptions, sb.adoptions);
}
