//! Integration test of the `pqr-serve` network layer, over real sockets.
//!
//! The headline claims under test:
//!
//! 1. A sequential series of retrieves over one connection is
//!    **byte-and-counter identical** to the same series on an in-process
//!    [`DatasetService`] session — the wire adds observability, not
//!    divergence (mirrors `tests/plan_execution.rs`).
//! 2. Many concurrent socket clients of one dataset share its decode
//!    store: aggregate source traffic stays strictly below the
//!    per-client-cold sum.
//! 3. Faults are survivable: hostile frames get clean `Error` replies, a
//!    client dying mid-retrieve leaves the store serving subsequent
//!    clients byte-identically, and a flaky fragment source fails the
//!    request — never the server.
//! 4. Budgets and admission behave as designed: an exceeded byte budget
//!    is a partial result *with its certified bound*; a saturated decode
//!    pool and a full accept queue shed with explicit `Busy` frames.

use pqr::prelude::*;
use pqr::serve::{FaultySource, Registry, Reply, ServeClient, Server, ServerConfig};
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The same field/QoI fixture as `tests/plan_execution.rs`, so counter
/// expectations carry over.
const TOLS: [(&str, f64); 3] = [("V", 1e-4), ("Vx2", 1e-4), ("VxVy", 1e-3)];

fn field_vx(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.013).sin() * 30.0 + 50.0)
        .collect()
}

fn field_vy(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.021).cos() * 15.0).collect()
}

fn build_archive() -> Archive {
    let n = 3000;
    ArchiveBuilder::new(&[n])
        .field("Vx", field_vx(n))
        .field("Vy", field_vy(n))
        .qoi("V", velocity_magnitude(0, 2))
        .qoi("Vx2", QoiExpr::var(0).pow(2))
        .qoi("VxVy", species_product(0, 1))
        .build()
        .unwrap()
}

fn save_archive(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pqr_serve_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}_{}.pqrx", std::process::id()));
    build_archive().save(&path).unwrap();
    path
}

/// Ground truth V = √(Vx²+Vy²) for error-vs-truth assertions.
fn truth_v() -> Vec<f64> {
    let (vx, vy) = (field_vx(3000), field_vy(3000));
    vx.iter()
        .zip(&vy)
        .map(|(x, y)| (x * x + y * y).sqrt())
        .collect()
}

fn start_server(archive: Archive, config: ServerConfig) -> (Server, SocketAddr) {
    let mut registry = Registry::new();
    registry.register("ds", archive).unwrap();
    let server = Server::start("127.0.0.1:0", registry, config).unwrap();
    let addr = server.local_addr();
    (server, addr)
}

fn connect(addr: SocketAddr) -> ServeClient {
    let c = ServeClient::connect(addr).unwrap();
    c.set_io_timeout(Some(Duration::from_secs(60))).unwrap();
    c
}

fn one_qoi(name: &str, tol: f64) -> RetrievalRequest {
    RetrievalRequest::new().qoi(name, tol)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn smoke_open_retrieve_stats_close_and_remote_shutdown() {
    let path = save_archive("smoke");
    let (server, addr) = start_server(Archive::open(&path).unwrap(), ServerConfig::default());

    let mut client = connect(addr);
    let info = client.open("ds").unwrap().expect_ok("open");
    assert_eq!(info.dims, vec![3000]);
    assert_eq!(info.fields, vec!["Vx".to_string(), "Vy".to_string()]);
    assert_eq!(
        info.qois,
        vec!["V".to_string(), "Vx2".to_string(), "VxVy".to_string()]
    );

    let mut request = RetrievalRequest::new();
    for (name, tol) in TOLS {
        request = request.qoi(name, tol);
    }
    let report = client
        .retrieve(&request, &["V"], true)
        .unwrap()
        .expect_ok("retrieve");
    assert!(report.satisfied);
    assert_eq!(report.targets.len(), 3);
    assert!(report.bytes_fetched > 0);
    assert!(report.store_fragments_decoded > 0);
    assert!(report.progress.is_some());

    // the served values are byte-identical to an in-process service run
    let service = Archive::open(&path).unwrap().service().unwrap();
    let mut mirror = service.session().unwrap();
    mirror.execute(&request).unwrap();
    assert_eq!(
        bits(&report.values["V"]),
        bits(&mirror.qoi_values("V").unwrap())
    );

    let stats = client.stats().unwrap().expect_ok("stats");
    assert_eq!(stats.retrieves, 1);
    assert!(stats.connections >= 1);
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
    assert_eq!(stats.datasets.len(), 1);
    assert_eq!(stats.datasets[0].name, "ds");
    assert!(stats.datasets[0].store.fragments_decoded > 0);
    client.close().unwrap();

    // a second client shuts the server down over the wire
    connect(addr).shutdown_server().unwrap();
    let final_stats = server.wait();
    assert_eq!(final_stats.retrieves, 1);
}

#[test]
fn sequential_socket_series_is_counter_identical_to_in_process_service() {
    let path = save_archive("seq");
    let (server, addr) = start_server(Archive::open(&path).unwrap(), ServerConfig::default());

    // the same tolerance-tightening series, remote and in-process
    let series = [("V", 1e-2), ("V", 1e-4), ("Vx2", 1e-4), ("VxVy", 1e-3)];
    let local_archive = Archive::open(&path).unwrap();
    let local_service = local_archive.service().unwrap();
    let mut local = local_service.session().unwrap();

    let mut client = connect(addr);
    client.open("ds").unwrap().expect_ok("open");
    for (name, tol) in series {
        let request = one_qoi(name, tol);
        let remote = client
            .retrieve(&request, &[name], false)
            .unwrap()
            .expect_ok("retrieve");
        let mirror = local.execute(&request).unwrap();

        assert_eq!(remote.satisfied, mirror.satisfied, "{name}@{tol}");
        assert_eq!(remote.iterations, mirror.iterations as u64);
        assert_eq!(remote.bytes_fetched, mirror.bytes_fetched as u64);
        assert_eq!(remote.total_fetched, mirror.total_fetched as u64);
        assert_eq!(
            remote.store_fragments_decoded,
            mirror.store_fragments_decoded
        );
        assert_eq!(remote.store_refine_reuses, mirror.store_refine_reuses);
        assert_eq!(
            bits(&remote.values[name]),
            bits(&local.qoi_values(name).unwrap()),
            "values diverged for {name}@{tol}"
        );
    }
    client.close().unwrap();

    // the dataset-level counters agree exactly as well
    let snap = server.shutdown();
    let remote_store = snap.datasets[0].store;
    let local_store = local_service.store_stats();
    assert_eq!(
        remote_store.fragments_decoded,
        local_store.fragments_decoded
    );
    assert_eq!(remote_store.refine_advances, local_store.refine_advances);
    assert_eq!(remote_store.refine_reuses, local_store.refine_reuses);
    assert_eq!(remote_store.adoptions, local_store.adoptions);
    assert_eq!(
        snap.datasets[0].source.fetched_bytes,
        local_archive.source_stats().fetched_bytes
    );
}

#[test]
fn eight_concurrent_socket_clients_share_the_decode_store() {
    let path = save_archive("conc");
    let config = ServerConfig {
        workers: 8,
        pending_queue: 16,
        decode_permits: 4,
        busy_wait_ms: 60_000, // this test wants sharing, not shedding
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(Archive::open(&path).unwrap(), config);

    let handles: Vec<_> = (0..8)
        .map(|k| {
            let (name, tol) = TOLS[k % TOLS.len()];
            std::thread::spawn(move || {
                let mut client = connect(addr);
                client.open("ds").unwrap().expect_ok("open");
                let report = client
                    .retrieve(&one_qoi(name, tol), &[name], false)
                    .unwrap()
                    .expect_ok("retrieve");
                client.close().unwrap();
                assert!(report.satisfied, "client {k} ({name}@{tol}) not satisfied");
                assert!(report.targets[0].max_est_error <= report.targets[0].tol_abs);
                (name, report)
            })
        })
        .collect();
    let reports: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // every client got values matching the certified bound against truth
    let truth = truth_v();
    for (name, report) in &reports {
        if *name == "V" {
            let tol_abs = report.targets[0].tol_abs;
            let worst = report.values["V"]
                .iter()
                .zip(&truth)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(worst <= tol_abs, "actual error {worst} > bound {tol_abs}");
        }
    }

    let snap = server.shutdown();
    assert_eq!(snap.retrieves, 8);
    assert_eq!(snap.shed_busy, 0);
    assert_eq!(snap.shed_admission, 0);
    assert!(snap.datasets[0].store.fragments_decoded > 0);

    // cold baseline: the same eight workloads, each on its own engine
    let mut cold_bytes = 0u64;
    let mut cold_decoded = 0u64;
    for k in 0..8 {
        let (name, tol) = TOLS[k % TOLS.len()];
        let solo = Archive::open(&path).unwrap();
        let mut s = solo.session().unwrap();
        assert!(s.execute(&one_qoi(name, tol)).unwrap().satisfied);
        cold_bytes += solo.source_stats().fetched_bytes;
        cold_decoded += s.fragments_decoded();
    }
    let shared_bytes = snap.datasets[0].source.fetched_bytes;
    assert!(
        shared_bytes < cold_bytes,
        "shared-store serving fetched {shared_bytes} B, per-client cold engines {cold_bytes} B"
    );
    assert!(
        snap.datasets[0].store.fragments_decoded <= cold_decoded,
        "shared store decoded more fragments than eight cold engines"
    );
}

#[test]
fn hostile_frames_get_clean_error_replies_and_the_server_survives() {
    let path = save_archive("hostile");
    let config = ServerConfig {
        io_timeout_ms: 500,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(Archive::open(&path).unwrap(), config);

    let expect_error_frame = |mut raw: TcpStream| {
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let (kind, body, _) = pqr::transfer::wire::read_frame(&mut raw).unwrap();
        assert_eq!(kind, pqr::serve::wire::ERROR, "expected an Error frame");
        assert!(matches!(
            pqr::serve::wire::decode_error(&body),
            PqrError::CorruptStream(_)
        ));
    };

    // (a) garbage bytes where a header belongs
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"XXXXXXXXXXXXXXXX").unwrap();
    expect_error_frame(raw);

    // (b) valid magic, hostile length prefix (1 GiB body claim) — refused
    // at header parse, before any allocation
    let mut raw = TcpStream::connect(addr).unwrap();
    let mut header = Vec::new();
    header.extend_from_slice(pqr::transfer::wire::FRAME_MAGIC);
    header.extend_from_slice(&pqr::transfer::wire::WIRE_VERSION.to_le_bytes());
    header.extend_from_slice(&pqr::serve::wire::OPEN.to_le_bytes());
    header.extend_from_slice(&(1u32 << 30).to_le_bytes());
    raw.write_all(&header).unwrap();
    expect_error_frame(raw);

    // (c) truncated body: claim 64 bytes, send 10, half-close
    let mut raw = TcpStream::connect(addr).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(pqr::transfer::wire::FRAME_MAGIC);
    frame.extend_from_slice(&pqr::transfer::wire::WIRE_VERSION.to_le_bytes());
    frame.extend_from_slice(&pqr::serve::wire::OPEN.to_le_bytes());
    frame.extend_from_slice(&64u32.to_le_bytes());
    frame.extend_from_slice(&[0u8; 10]);
    raw.write_all(&frame).unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();
    expect_error_frame(raw);

    // the server is unharmed: a healthy client gets a full retrieve
    let mut client = connect(addr);
    client.open("ds").unwrap().expect_ok("open");
    let report = client
        .retrieve(&one_qoi("V", 1e-3), &["V"], false)
        .unwrap()
        .expect_ok("retrieve");
    assert!(report.satisfied);
    client.close().unwrap();

    let snap = server.shutdown();
    assert!(
        snap.errors >= 3,
        "expected >=3 recorded errors, got {}",
        snap.errors
    );
    assert_eq!(snap.retrieves, 1);
}

#[test]
fn mid_retrieve_disconnect_leaves_the_store_serving_byte_identically() {
    let path = save_archive("disco");
    let (server, addr) = start_server(Archive::open(&path).unwrap(), ServerConfig::default());

    // client A sends a full retrieve frame and vanishes without reading
    // the reply — the server executes it against the shared store anyway
    {
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut w = pqr::util::byteio::ByteWriter::new();
        w.put_bytes(b"ds");
        pqr::transfer::wire::write_frame(&mut raw, pqr::serve::wire::OPEN, &w.finish()).unwrap();
        let (kind, _, _) = pqr::transfer::wire::read_frame(&mut raw).unwrap();
        assert_eq!(kind, pqr::serve::wire::OPEN_OK);
        let body = pqr::serve::wire::RetrieveBody {
            request: one_qoi("V", 1e-4),
            want_values: Vec::new(),
            save_progress: false,
        };
        pqr::transfer::wire::write_frame(&mut raw, pqr::serve::wire::RETRIEVE, &body.to_bytes())
            .unwrap();
        // drop: the peer is gone before the server replies
    }

    // wait until the orphaned retrieve has fully executed (store counters
    // non-zero and stable across two spaced snapshots)
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let a = server.stats().datasets[0].store;
        std::thread::sleep(Duration::from_millis(100));
        let b = server.stats().datasets[0].store;
        if a.fragments_decoded > 0
            && a.fragments_decoded == b.fragments_decoded
            && a.refine_advances == b.refine_advances
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "orphaned retrieve never settled: {a:?} vs {b:?}"
        );
    }

    // client B deepens past A's tolerance; the store state A left behind
    // must serve B exactly as an uninterrupted in-process sequence would
    let mut client_b = connect(addr);
    client_b.open("ds").unwrap().expect_ok("open");
    let remote = client_b
        .retrieve(&one_qoi("V", 1e-6), &["V"], false)
        .unwrap()
        .expect_ok("retrieve");
    client_b.close().unwrap();
    assert!(remote.satisfied);

    let service = Archive::open(&path).unwrap().service().unwrap();
    let mut mirror_a = service.session().unwrap();
    mirror_a.execute(&one_qoi("V", 1e-4)).unwrap();
    let mut mirror_b = service.session().unwrap();
    let mirror = mirror_b.execute(&one_qoi("V", 1e-6)).unwrap();

    assert_eq!(remote.satisfied, mirror.satisfied);
    assert_eq!(remote.total_fetched, mirror.total_fetched as u64);
    assert_eq!(
        bits(&remote.values["V"]),
        bits(&mirror_b.qoi_values("V").unwrap()),
        "post-disconnect serving diverged from the uninterrupted sequence"
    );
    drop(server);
}

#[test]
fn flaky_source_fails_the_request_cleanly_and_recovers() {
    let archive_bytes = build_archive().to_bytes();
    let inner = Arc::new(InMemorySource::new(archive_bytes).unwrap());
    let (faulty, switch) = FaultySource::new(inner);
    let archive = Archive::from_fragment_source(faulty).unwrap();
    let (server, addr) = start_server(archive, ServerConfig::default());

    let mut client = connect(addr);
    client.open("ds").unwrap().expect_ok("open");

    // warm pass succeeds
    let warm = client
        .retrieve(&one_qoi("V", 1e-2), &[], false)
        .unwrap()
        .expect_ok("warm retrieve");
    assert!(warm.satisfied);

    // now every fetch fails: the request errors, the connection survives
    switch.set_failing(true);
    let err = client
        .retrieve(&one_qoi("V", 1e-5), &[], false)
        .unwrap_err();
    assert!(matches!(err, PqrError::CorruptStream(_)), "got {err:?}");

    // recovery on the same connection: the store was not poisoned
    switch.set_failing(false);
    let healed = client
        .retrieve(&one_qoi("V", 1e-5), &["V"], false)
        .unwrap()
        .expect_ok("post-recovery retrieve");
    assert!(healed.satisfied);
    let tol_abs = healed.targets[0].tol_abs;
    let worst = healed.values["V"]
        .iter()
        .zip(&truth_v())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        worst <= tol_abs,
        "actual error {worst} > certified bound {tol_abs}"
    );
    client.close().unwrap();

    // a fresh client is served normally too
    let mut fresh = connect(addr);
    fresh.open("ds").unwrap().expect_ok("open");
    let again = fresh
        .retrieve(&one_qoi("VxVy", 1e-3), &[], false)
        .unwrap()
        .expect_ok("fresh retrieve");
    assert!(again.satisfied);
    fresh.close().unwrap();

    assert!(switch.attempts() > 0);
    let snap = server.shutdown();
    assert!(snap.errors >= 1);
}

#[test]
fn byte_budgets_yield_partials_with_bounds_not_errors() {
    let path = save_archive("budget");

    // only meaningful when the unbounded run needs more than one round
    let unbounded_archive = Archive::open(&path).unwrap();
    let mut unbounded = unbounded_archive.session().unwrap();
    let free = unbounded.execute(&one_qoi("V", 1e-9)).unwrap();
    if free.iterations <= 1 {
        return;
    }

    // (a) server-enforced per-client budget
    let config = ServerConfig {
        client_byte_budget: Some(1),
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(Archive::open(&path).unwrap(), config);
    let mut client = connect(addr);
    client.open("ds").unwrap().expect_ok("open");
    let capped = client
        .retrieve(&one_qoi("V", 1e-9), &[], false)
        .unwrap()
        .expect_ok("capped retrieve");
    assert!(
        capped.budget_exhausted,
        "budget should have stopped refinement"
    );
    assert!(!capped.satisfied);
    assert!((capped.iterations as usize) < free.iterations);
    assert!(capped.targets[0].max_est_error.is_finite());
    assert!(capped.targets[0].max_est_error > 0.0);

    // the budget is cumulative per connection: a second retrieve still
    // answers with a bound instead of erroring
    let second = client
        .retrieve(&one_qoi("Vx2", 1e-9), &[], false)
        .unwrap()
        .expect_ok("second capped retrieve");
    assert!(second.budget_exhausted);
    assert!(second.targets[0].max_est_error.is_finite());
    client.close().unwrap();
    drop(server);

    // (b) request-level budget rides the wire untouched
    let (server, addr) = start_server(Archive::open(&path).unwrap(), ServerConfig::default());
    let mut client = connect(addr);
    client.open("ds").unwrap().expect_ok("open");
    let capped = client
        .retrieve(&one_qoi("V", 1e-9).byte_budget(1), &[], false)
        .unwrap()
        .expect_ok("request-budget retrieve");
    assert!(capped.budget_exhausted);
    assert!(!capped.satisfied);
    assert!(capped.targets[0].max_est_error.is_finite());
    client.close().unwrap();
    drop(server);
}

#[test]
fn saturated_decode_pool_sheds_busy_with_retry_after() {
    let archive_bytes = build_archive().to_bytes();
    let inner = Arc::new(InMemorySource::new(archive_bytes).unwrap());
    let (faulty, switch) = FaultySource::new(inner);
    let archive = Archive::from_fragment_source(faulty).unwrap();
    let config = ServerConfig {
        workers: 4,
        decode_permits: 1,
        busy_wait_ms: 50,
        retry_after_ms: 123,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(archive, config);

    // client A's retrieve holds the single decode permit for a long,
    // deterministic stretch (every fetch sleeps)
    let baseline = switch.attempts();
    switch.set_delay_ms(150);
    let holder = std::thread::spawn(move || {
        let mut a = connect(addr);
        a.open("ds").unwrap().expect_ok("open A");
        let r = a
            .retrieve(&one_qoi("V", 1e-4), &[], false)
            .unwrap()
            .expect_ok("retrieve A");
        a.close().unwrap();
        r
    });

    // once a delayed fetch has started, A provably holds the permit
    let wait_start = Instant::now();
    while switch.attempts() == baseline {
        assert!(
            wait_start.elapsed() < Duration::from_secs(30),
            "client A never started fetching"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut b = connect(addr);
    b.open("ds").unwrap().expect_ok("open B");
    let shed = b.retrieve(&one_qoi("VxVy", 1e-3), &[], false).unwrap();
    match &shed {
        Reply::Busy {
            retry_after_ms,
            reason,
        } => {
            assert_eq!(*retry_after_ms, 123);
            assert!(reason.contains("decode pool"), "reason: {reason}");
        }
        Reply::Ok(_) => panic!("expected a Busy shed while the permit was held"),
    }

    switch.set_delay_ms(0);
    assert!(holder.join().unwrap().satisfied);

    // B retries per the hint and is eventually served on the same socket
    let mut served = None;
    for _ in 0..200 {
        std::thread::sleep(Duration::from_millis(25));
        match b.retrieve(&one_qoi("VxVy", 1e-3), &[], false).unwrap() {
            Reply::Ok(report) => {
                served = Some(report);
                break;
            }
            Reply::Busy { .. } => continue,
        }
    }
    let served = served.expect("retry never succeeded");
    assert!(served.satisfied);
    b.close().unwrap();

    let snap = server.shutdown();
    assert!(snap.shed_busy >= 1, "shed_busy = {}", snap.shed_busy);
    assert!(snap.retrieves >= 2);
}

#[test]
fn full_admission_queue_sheds_at_accept() {
    let path = save_archive("admission");
    let config = ServerConfig {
        workers: 1,
        pending_queue: 0,
        retry_after_ms: 321,
        ..ServerConfig::default()
    };
    let (server, addr) = start_server(Archive::open(&path).unwrap(), config);

    // A occupies the only worker; B waits in the (zero-slack) queue
    let mut a = connect(addr);
    a.open("ds").unwrap().expect_ok("open A");
    let b = connect(addr);
    std::thread::sleep(Duration::from_millis(200));

    // C finds the queue full and is shed at the accept loop itself
    let mut c_raw = TcpStream::connect(addr).unwrap();
    c_raw
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let (kind, body, _) = pqr::transfer::wire::read_frame(&mut c_raw).unwrap();
    assert_eq!(kind, pqr::serve::wire::BUSY);
    let busy = pqr::serve::wire::BusyBody::from_bytes(&body).unwrap();
    assert_eq!(busy.retry_after_ms, 321);
    assert!(busy.reason.contains("admission"), "reason: {}", busy.reason);
    drop(c_raw);

    // releasing A promotes B out of the queue; B is served normally
    a.close().unwrap();
    let mut b = b;
    b.open("ds").unwrap().expect_ok("open B");
    let report = b
        .retrieve(&one_qoi("V", 1e-3), &[], false)
        .unwrap()
        .expect_ok("retrieve B");
    assert!(report.satisfied);
    let stats = b.stats().unwrap().expect_ok("stats");
    assert!(stats.shed_admission >= 1);
    b.close().unwrap();
    drop(server);
}

#[test]
fn resume_over_the_wire_continues_a_saved_trajectory() {
    let path = save_archive("resume");
    let (server, addr) = start_server(Archive::open(&path).unwrap(), ServerConfig::default());

    // first connection: retrieve loosely, carry the progress blob home
    let mut first = connect(addr);
    first.open("ds").unwrap().expect_ok("open");
    let leg1 = first
        .retrieve(&one_qoi("V", 1e-2), &[], true)
        .unwrap()
        .expect_ok("first retrieve");
    assert!(leg1.satisfied);
    let blob = leg1.progress.clone().expect("progress blob requested");
    first.close().unwrap();

    // second connection resumes the blob and tightens
    let mut second = connect(addr);
    let info = second.resume("ds", &blob).unwrap().expect_ok("resume");
    assert_eq!(info.qois.len(), 3);
    let leg2 = second
        .retrieve(&one_qoi("V", 1e-5), &["V"], false)
        .unwrap()
        .expect_ok("resumed retrieve");
    assert!(leg2.satisfied);
    second.close().unwrap();

    // the same blob resumed in-process produces byte-identical values
    let local = Archive::open(&path).unwrap();
    let mut resumed = local.resume_session(&blob).unwrap();
    let mirror = resumed.execute(&one_qoi("V", 1e-5)).unwrap();
    assert_eq!(leg2.satisfied, mirror.satisfied);
    assert_eq!(leg2.total_fetched, mirror.total_fetched as u64);
    assert_eq!(
        bits(&leg2.values["V"]),
        bits(&resumed.qoi_values("V").unwrap())
    );
    drop(server);
}
