//! The storage-layer acceptance test: partial retrieval must be partial in
//! *bytes actually read*, not just bytes counted, and every backend —
//! resident, serialized in-memory, file-backed, simulated-remote — must
//! drive the one `FragmentSource` code path to identical results.

use pqr::prelude::*;
use pqr::transfer::store::RemoteStore;

fn velocity_archive(n: usize) -> Archive {
    let vx: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.011).sin() * 30.0 + 50.0)
        .collect();
    let vy: Vec<f64> = (0..n).map(|i| (i as f64 * 0.017).cos() * 20.0).collect();
    let vz: Vec<f64> = (0..n).map(|i| (i as f64 * 0.007).sin() * 10.0).collect();
    ArchiveBuilder::new(&[n])
        .field("Vx", vx)
        .field("Vy", vy)
        .field("Vz", vz)
        .qoi("VTOT", velocity_magnitude(0, 3))
        .build()
        .unwrap()
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pqr_partial_retrieval_test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}_{}.pqrx", std::process::id()))
}

/// Acceptance criterion: a loose-tolerance QoI retrieval from a
/// file-backed archive reads demonstrably fewer fragment bytes than the
/// archive holds, asserted through the source's byte counters.
#[test]
fn loose_retrieval_reads_a_fraction_of_the_archive() {
    let archive = velocity_archive(20_000);
    let path = temp_path("loose");
    archive.save(&path).unwrap();
    let archive_size = std::fs::metadata(&path).unwrap().len();

    let lazy = Archive::open(&path).unwrap();
    let mut session = lazy.session().unwrap();
    let report = session.request("VTOT", 1e-2).unwrap();
    assert!(report.satisfied);

    let stats = lazy.source_stats();
    assert!(stats.fetches > 0, "retrieval must go through the source");
    assert!(
        stats.fetched_bytes * 4 < archive_size,
        "loose retrieval read {} B of a {} B archive — not partial",
        stats.fetched_bytes,
        archive_size
    );
    // the engine's logical accounting and the source's physical accounting
    // describe the same fragments
    assert_eq!(stats.fetched_bytes as usize, session.total_fetched());
    std::fs::remove_file(&path).ok();
}

/// Tightening the tolerance reads more disk bytes — the directory lets the
/// session fetch exactly the increment.
#[test]
fn tighter_tolerances_read_more_disk_bytes_incrementally() {
    let archive = velocity_archive(8_000);
    let path = temp_path("incremental");
    archive.save(&path).unwrap();
    let archive_size = std::fs::metadata(&path).unwrap().len();

    let lazy = Archive::open(&path).unwrap();
    let mut session = lazy.session().unwrap();
    let mut last = 0u64;
    for tol in [1e-1, 1e-2, 1e-3, 1e-4] {
        let report = session.request("VTOT", tol).unwrap();
        assert!(report.satisfied, "τ={tol}");
        let read = lazy.source_stats().fetched_bytes;
        assert!(read >= last, "disk reads must be cumulative");
        last = read;
    }
    assert!(last < archive_size, "even τ=1e-4 stays below full archive");
    std::fs::remove_file(&path).ok();
}

/// All four backends — resident dataset, in-memory container, file-backed
/// source, and the transfer crate's remote store — produce identical
/// retrievals through the single engine code path.
#[test]
fn all_backends_share_one_code_path() {
    let n = 6_000;
    let mut ds = Dataset::new(&[n]);
    ds.add_field(
        "u",
        (0..n)
            .map(|i| (i as f64 * 0.013).sin() * 7.0 + 9.0)
            .collect(),
    )
    .unwrap();
    ds.add_field(
        "w",
        (0..n).map(|i| (i as f64 * 0.019).cos() * 4.0).collect(),
    )
    .unwrap();
    let resident = ds
        .refactor_with_bounds(Scheme::PmgardHb, &[1e-1, 1e-3])
        .unwrap();
    let spec = QoiSpec::with_range(
        "uw",
        QoiExpr::var(0).mul(QoiExpr::var(1)),
        1e-4,
        ds.qoi_range(&QoiExpr::var(0).mul(QoiExpr::var(1))).unwrap(),
    );

    let run = |source: std::sync::Arc<dyn FragmentSource>| {
        let mut engine = RetrievalEngine::from_source(source, EngineConfig::default()).unwrap();
        let report = engine.retrieve(std::slice::from_ref(&spec)).unwrap();
        assert!(report.satisfied);
        (
            engine.reconstruction(0).to_vec(),
            engine.reconstruction(1).to_vec(),
            engine.total_fetched(),
        )
    };

    let bytes = resident.to_bytes();
    let path = temp_path("backends");
    std::fs::write(&path, &bytes).unwrap();

    let mem = InMemorySource::new(bytes).unwrap();
    let file = FileSource::open(&path).unwrap();
    let cached = CachedSource::new(
        FileSource::open(&path).unwrap(),
        std::sync::Arc::new(FragmentCache::new(1 << 20)),
    );
    let store = std::sync::Arc::new(RemoteStore::new(vec![resident.clone()]));
    let remote = store.block_source(0).unwrap();

    let base = run(std::sync::Arc::new(resident.clone()));
    for (label, got) in [
        ("in-memory", run(std::sync::Arc::new(mem))),
        ("file-backed", run(std::sync::Arc::new(file))),
        ("cached file", run(std::sync::Arc::new(cached))),
        ("remote store", run(std::sync::Arc::new(remote))),
    ] {
        assert!(
            base.0 == got.0 && base.1 == got.1,
            "{label}: reconstruction drifted"
        );
        assert_eq!(base.2, got.2, "{label}: byte accounting drifted");
    }
    // the remote store tallied real per-fragment traffic
    assert!(store.counters().requests > 0);
    std::fs::remove_file(&path).ok();
}
