//! Integration tests for the beyond-the-paper extensions working together:
//! the PZFP representation, the ln/exp basis operators, and the
//! interval-arithmetic estimator — all through the public facade.

use pqr::prelude::*;
use pqr::qoi::parse::parse;

fn flame(n: usize) -> (Vec<f64>, Vec<f64>) {
    let t = (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            900.0 + 1100.0 / (1.0 + (-40.0 * (x - 0.4)).exp()) + 30.0 * (x * 130.0).sin()
        })
        .collect();
    let c = (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            0.12 * (1.0 - 1.0 / (1.0 + (-40.0 * (x - 0.4)).exp())) + 0.01 * (x * 57.0).cos().abs()
        })
        .collect();
    (t, c)
}

#[test]
fn pzfp_archive_serves_extension_qois() {
    let n = 8000;
    let (t, c) = flame(n);
    let rate = parse("x1 * exp(0 - 2000 * radical(x0, 0))").unwrap();
    let archive = ArchiveBuilder::new(&[n])
        .field("T", t.clone())
        .field("c", c.clone())
        .qoi("rate", rate.clone())
        .scheme(Scheme::Pzfp)
        .build()
        .unwrap();

    let mut session = archive.session().unwrap();
    let report = session.request("rate", 1e-5).unwrap();
    assert!(report.satisfied);

    let truth: Vec<f64> = t
        .iter()
        .zip(&c)
        .map(|(&a, &b)| rate.eval(&[a, b]))
        .collect();
    let derived = session.qoi_values("rate").unwrap();
    let actual = stats::max_abs_diff(&truth, &derived);
    assert!(actual <= report.max_est_errors[0]);
}

#[test]
fn pzfp_archive_roundtrips_through_serialization() {
    let n = 5000;
    let (t, _) = flame(n);
    let archive = ArchiveBuilder::new(&[n])
        .field("T", t)
        .qoi("lnT", QoiExpr::var(0).ln())
        .scheme(Scheme::Pzfp)
        .build()
        .unwrap();
    let restored = Archive::from_bytes(&archive.to_bytes()).unwrap();
    // ln/exp expressions survive the registry serialization
    assert_eq!(
        restored.qoi_expr("lnT").unwrap(),
        archive.qoi_expr("lnT").unwrap()
    );
    let mut a = archive.session().unwrap();
    let mut b = restored.session().unwrap();
    let ra = a.request("lnT", 1e-6).unwrap();
    let rb = b.request("lnT", 1e-6).unwrap();
    assert!(ra.satisfied && rb.satisfied);
    assert_eq!(ra.total_fetched, rb.total_fetched);
    assert_eq!(a.qoi_values("lnT").unwrap(), b.qoi_values("lnT").unwrap());
}

#[test]
fn all_schemes_and_estimators_agree_on_the_guarantee() {
    // the full matrix: 5 representations × 3 estimators, one QoI
    let n = 3000;
    let (t, c) = flame(n);
    let qoi = parse("sqrt(x0 * x1 + 1)").unwrap();
    let truth: Vec<f64> = t.iter().zip(&c).map(|(&a, &b)| qoi.eval(&[a, b])).collect();
    let range = stats::value_range(&truth);

    for scheme in Scheme::extended() {
        for est in [Estimator::Theorems, Estimator::Interval] {
            let archive = ArchiveBuilder::new(&[n])
                .field("T", t.clone())
                .field("c", c.clone())
                .qoi("q", qoi.clone())
                .scheme(scheme)
                .engine_config(EngineConfig {
                    bound_config: BoundConfig {
                        estimator: est,
                        ..Default::default()
                    },
                    ..Default::default()
                })
                .build()
                .unwrap();
            let mut session = archive.session().unwrap();
            let report = session.request("q", 1e-4).unwrap();
            assert!(report.satisfied, "{:?}/{est:?}", scheme.name());
            let derived = session.qoi_values("q").unwrap();
            let actual = stats::max_abs_diff(&truth, &derived);
            assert!(
                actual <= report.max_est_errors[0] && report.max_est_errors[0] <= 1e-4 * range,
                "{}/{est:?}: actual {actual}, est {}, tol {}",
                scheme.name(),
                report.max_est_errors[0],
                1e-4 * range
            );
        }
    }
}

#[test]
fn pzfp_multidimensional_through_facade() {
    let dims = [40usize, 30, 20];
    let n: usize = dims.iter().product();
    let data: Vec<f64> = (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            (x * 17.0).sin() * 4.0 + (x * 3.0).cos()
        })
        .collect();
    let archive = ArchiveBuilder::new(&dims)
        .field("u", data.clone())
        .qoi("u2", QoiExpr::var(0).pow(2))
        .scheme(Scheme::Pzfp)
        .build()
        .unwrap();
    let mut session = archive.session().unwrap();
    let report = session.request("u2", 1e-6).unwrap();
    assert!(report.satisfied);
    let recon = session.reconstruction("u").unwrap();
    assert_eq!(recon.len(), n);
    let truth: Vec<f64> = data.iter().map(|v| v * v).collect();
    let derived = session.qoi_values("u2").unwrap();
    assert!(stats::max_abs_diff(&truth, &derived) <= report.max_est_errors[0]);
}

#[test]
fn interval_estimator_composes_with_the_mask() {
    // mask pins exact zeros; the interval estimator must honour them the
    // same way the theorem estimator does (ε = 0 at masked points)
    let n = 1500;
    let mk = |phase: f64| -> Vec<f64> {
        (0..n)
            .map(|i| {
                if i % 61 < 2 {
                    0.0
                } else {
                    ((i as f64) * 0.017 + phase).sin() * 12.0 + 15.0
                }
            })
            .collect()
    };
    let qoi = pqr::qoi::library::velocity_magnitude(0, 3);
    let archive = ArchiveBuilder::new(&[n])
        .field("Vx", mk(0.0))
        .field("Vy", mk(1.0))
        .field("Vz", mk(2.0))
        .qoi("VTOT", qoi.clone())
        .mask(&["Vx", "Vy", "Vz"])
        .engine_config(EngineConfig {
            bound_config: BoundConfig {
                estimator: Estimator::Interval,
                ..Default::default()
            },
            ..Default::default()
        })
        .build()
        .unwrap();
    let mut s = archive.session().unwrap();
    let r = s.request("VTOT", 1e-5).unwrap();
    assert!(r.satisfied);
    // masked points reconstruct to exactly zero VTOT
    let derived = s.qoi_values("VTOT").unwrap();
    for i in (0..n).filter(|i| i % 61 < 2) {
        assert_eq!(derived[i], 0.0, "masked point {i}");
    }
}

#[test]
fn interval_estimator_succeeds_where_paper_blows_up() {
    // VTOT over fields with exact-zero walls, *without* the mask: the
    // paper-mode √ bound is ∞ at the walls, interval mode stays finite
    let n = 2000;
    let mk = |phase: f64| -> Vec<f64> {
        (0..n)
            .map(|i| {
                if i % 97 < 3 {
                    0.0 // wall nodes
                } else {
                    ((i as f64) * 0.013 + phase).sin() * 25.0 + 30.0
                }
            })
            .collect()
    };
    let qoi = pqr::qoi::library::velocity_magnitude(0, 3);
    let build = |est: Estimator| {
        ArchiveBuilder::new(&[n])
            .field("Vx", mk(0.0))
            .field("Vy", mk(1.0))
            .field("Vz", mk(2.0))
            .qoi("VTOT", qoi.clone())
            .engine_config(EngineConfig {
                bound_config: BoundConfig {
                    estimator: est,
                    ..Default::default()
                },
                max_iterations: 8,
                ..Default::default()
            })
            .build()
            .unwrap()
    };

    let paper = build(Estimator::Theorems);
    let mut sp = paper.session().unwrap();
    let rp = sp.request("VTOT", 1e-3).unwrap();
    assert!(!rp.satisfied, "paper estimator must fail without the mask");

    let interval = build(Estimator::Interval);
    let mut si = interval.session().unwrap();
    let ri = si.request("VTOT", 1e-3).unwrap();
    assert!(ri.satisfied, "interval estimator must succeed");
    assert!(si.total_fetched() < sp.total_fetched());
}
