//! 3-D–specific integration coverage: the dimension-by-dimension multilevel
//! transform, 3-D SZ compression, and full QoI retrieval on volumetric
//! datasets (the Hurricane/NYX/S3D path of the paper, §VI).

use pqr::datagen::{hurricane, nyx};
use pqr::prelude::*;

#[test]
fn mgard_3d_bound_holds_on_anisotropic_volume() {
    // deliberately awkward extents (non powers of two, strong anisotropy)
    let dims = [7usize, 33, 12];
    let n: usize = dims.iter().product();
    let data: Vec<f64> = (0..n)
        .map(|i| {
            let k = i % dims[2];
            let j = (i / dims[2]) % dims[1];
            let l = i / (dims[1] * dims[2]);
            (l as f64 * 0.9).sin() + (j as f64 * 0.21).cos() * 2.0 + (k as f64 * 0.5).sin() * 0.3
        })
        .collect();
    for basis in [Basis::Hierarchical, Basis::Orthogonal] {
        let stream = MgardRefactorer::new(basis).refactor(&data, &dims).unwrap();
        let mut reader = stream.reader();
        for eb in [1e-2, 1e-5, 1e-9] {
            reader.refine_to(eb).unwrap();
            assert!(reader.guaranteed_bound() <= eb, "{basis:?} eb={eb}");
            let recon = reader.reconstruct();
            let real = stats::max_abs_diff(&data, &recon);
            assert!(
                real <= reader.guaranteed_bound(),
                "{basis:?} eb={eb}: {real} > {}",
                reader.guaranteed_bound()
            );
        }
    }
}

#[test]
fn sz_3d_volume_with_singleton_axes() {
    let comp = SzCompressor::default();
    for dims in [vec![1usize, 40, 40], vec![40, 1, 40], vec![40, 40, 1]] {
        let n: usize = dims.iter().product();
        let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.02).sin() * 7.0).collect();
        let blob = comp.compress(&data, &dims, 1e-5).unwrap();
        let (recon, rdims) = comp.decompress(&blob).unwrap();
        assert_eq!(rdims, dims);
        assert!(stats::max_abs_diff(&data, &recon) <= 1e-5, "{dims:?}");
    }
}

#[test]
fn hurricane_engine_guarantee_through_3d_pipeline() {
    let raw = hurricane::generate(&hurricane::HurricaneConfig {
        dims: [5, 40, 40],
        v_max: 70.0,
        eye_radius: 0.15,
        seed: 77,
    });
    let mut ds = Dataset::new(&raw.dims);
    for (name, data) in &raw.fields {
        ds.add_field(name, data.clone()).unwrap();
    }
    for scheme in [Scheme::PmgardHb, Scheme::Psz3Delta] {
        let archive = ds
            .refactor_with_bounds(
                scheme,
                &(1..=10).map(|i| 10f64.powi(-i)).collect::<Vec<_>>(),
            )
            .unwrap();
        let spec = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-4, &ds).unwrap();
        let mut engine = RetrievalEngine::new(&archive, EngineConfig::default()).unwrap();
        let report = engine.retrieve(std::slice::from_ref(&spec)).unwrap();
        assert!(report.satisfied, "{}", scheme.name());
        let truth = ds.qoi_values(&spec.expr);
        let derived = engine.qoi_values(&spec.expr);
        let actual = stats::max_abs_diff(&truth, &derived);
        assert!(actual <= report.max_est_errors[0]);
    }
}

#[test]
fn nyx_kinetic_energy_multifield_3d() {
    // a 4-variable QoI on a 3-D dataset: ½·ρ·(vx²+vy²+vz²) with a synthetic
    // density bolted on (NYX has baryon density in the real dataset)
    let raw = nyx::generate(&nyx::NyxConfig {
        n: 14,
        v_rms: 9.0e6,
        bulk: 2.0e6,
        seed: 9,
    });
    let mut ds = Dataset::new(&raw.dims);
    for (name, data) in &raw.fields {
        ds.add_field(name, data.clone()).unwrap();
    }
    let n = ds.num_elements();
    let rho: Vec<f64> = (0..n)
        .map(|i| 1.0 + 0.3 * ((i as f64) * 0.01).sin())
        .collect();
    ds.add_field("density", rho).unwrap();

    let ke = kinetic_energy(3, 0, 3);
    let archive = ds.refactor(Scheme::PmgardHb).unwrap();
    let spec = QoiSpec::relative("KE", ke.clone(), 1e-4, &ds).unwrap();
    let mut engine = RetrievalEngine::new(&archive, EngineConfig::default()).unwrap();
    let report = engine.retrieve(&[spec]).unwrap();
    assert!(report.satisfied);
    let truth = ds.qoi_values(&ke);
    let derived = engine.qoi_values(&ke);
    assert!(stats::max_abs_diff(&truth, &derived) <= report.max_est_errors[0]);
}

#[test]
fn progressive_3d_resolution_of_structure() {
    // coarse-to-fine: at loose tolerance the hurricane eye is already
    // localised correctly even though the field error is large — the use
    // case progressive retrieval exists for
    let raw = hurricane::generate(&hurricane::HurricaneConfig {
        dims: [3, 48, 48],
        v_max: 70.0,
        eye_radius: 0.15,
        seed: 5,
    });
    let mut ds = Dataset::new(&raw.dims);
    for (name, data) in &raw.fields {
        ds.add_field(name, data.clone()).unwrap();
    }
    let archive = ds.refactor(Scheme::PmgardHb).unwrap();
    let vtot = velocity_magnitude(0, 3);
    let truth = ds.qoi_values(&vtot);

    let argmax = |v: &[f64]| {
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0
    };
    let true_peak = argmax(&truth[..48 * 48]); // z = 0 slab

    let mut engine = RetrievalEngine::new(&archive, EngineConfig::default()).unwrap();
    let spec = QoiSpec::relative("VTOT", vtot.clone(), 3e-2, &ds).unwrap();
    let report = engine.retrieve(&[spec]).unwrap();
    assert!(report.satisfied);
    let approx = engine.qoi_values(&vtot);
    let approx_peak = argmax(&approx[..48 * 48]);
    // peak location within a couple of cells at 3% tolerance
    let (ty, tx) = (true_peak / 48, true_peak % 48);
    let (ay, ax) = (approx_peak / 48, approx_peak % 48);
    let dist = ((ty as f64 - ay as f64).powi(2) + (tx as f64 - ax as f64).powi(2)).sqrt();
    assert!(dist <= 4.0, "eyewall peak drifted {dist} cells at 3% tol");
}

#[test]
fn pzfp_3d_volume_through_the_engine() {
    // the block-transform representation on a NYX-like volume: QoI
    // retrieval must satisfy the same guarantee as the multilevel schemes
    let raw = nyx::generate(&nyx::NyxConfig {
        n: 20,
        ..nyx::NyxConfig::small()
    });
    let mut ds = Dataset::new(&raw.dims);
    for (name, data) in &raw.fields {
        ds.add_field(name, data.clone()).unwrap();
    }
    let archive = ds.refactor(Scheme::Pzfp).unwrap();
    let vtot = velocity_magnitude(0, 3);
    let range = ds.qoi_range(&vtot).unwrap();
    let truth = ds.qoi_values(&vtot);

    let mut engine = RetrievalEngine::new(&archive, EngineConfig::default()).unwrap();
    for tol in [1e-2, 1e-4, 1e-6] {
        let spec = QoiSpec::with_range("VTOT", vtot.clone(), tol, range);
        let report = engine.retrieve(&[spec]).unwrap();
        assert!(report.satisfied, "tol {tol}");
        let derived = engine.qoi_values(&vtot);
        let actual = stats::max_abs_diff(&truth, &derived);
        assert!(actual <= report.max_est_errors[0], "tol {tol}");
        assert!(report.max_est_errors[0] <= tol * range, "tol {tol}");
    }
}
