//! Integration test of the bounded-memory tiered progress store
//! (`pqr_progressive::pager` + the `Resident | Demoted` store rework).
//!
//! Headline property: **eviction is invisible**. Under a randomized
//! demotion schedule — forced demotions interleaved with requests, on top
//! of a budget of ⅛ of the measured working set — every reply a service
//! session produces is byte-identical to the unbounded store, across all
//! five schemes and both the in-memory and file backends. Decode-once
//! accounting degrades only by the explicitly-counted rehydration
//! decodes: `fragments_decoded` stays exactly equal, and the bounded
//! arm's extra source bytes equal `rehydration_bytes` to the byte.
//!
//! A second test interleaves a chaos-demotion thread with concurrent
//! mixed-tolerance sessions: every certified reply still meets its
//! tolerance against ground truth, and advance decodes never exceed the
//! archive's fragment count (decode-once survives the chaos).

use pqr::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn field_vx(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.013).sin() * 30.0 + 50.0)
        .collect()
}

fn field_vy(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.021).cos() * 15.0).collect()
}

fn build_archive(scheme: Scheme) -> Archive {
    let n = 2400;
    ArchiveBuilder::new(&[n])
        .field("Vx", field_vx(n))
        .field("Vy", field_vy(n))
        .qoi("V", velocity_magnitude(0, 2))
        .qoi("Vx2", QoiExpr::var(0).pow(2))
        .qoi("VxVy", species_product(0, 1))
        .scheme(scheme)
        .build()
        .unwrap()
}

/// Deterministic schedule driver (`Date`-free, seed-stable): a 64-bit LCG.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// The mixed-tolerance request series; per request, the fields its QoI
/// derives from (the only fields whose session state the request defines).
const SERIES: [(&str, f64, &[&str]); 5] = [
    ("V", 1e-2, &["Vx", "Vy"]),
    ("Vx2", 1e-3, &["Vx"]),
    ("V", 1e-5, &["Vx", "Vy"]),
    ("VxVy", 1e-3, &["Vx", "Vy"]),
    ("V", 1e-4, &["Vx", "Vy"]),
];

/// Everything a reply exposes, bit-exact.
#[derive(Debug, PartialEq)]
struct ReplyFingerprint {
    satisfied: bool,
    target: (bool, u64, u64, u64), // (satisfied, tol_abs, max_est_error, bytes)
    bytes_fetched: usize,
    total_fetched: usize,
    recons: Vec<Vec<u64>>,
    qoi_values: Vec<u64>,
    progress_blob: Vec<u8>,
}

fn run_series(
    service: &DatasetService,
    mut demote: impl FnMut(usize, &DatasetService),
) -> Vec<ReplyFingerprint> {
    SERIES
        .iter()
        .enumerate()
        .map(|(step, (name, tol, fields))| {
            demote(step, service);
            let mut session = service.session().unwrap();
            let report = session
                .execute(&RetrievalRequest::new().qoi(name, *tol))
                .unwrap();
            assert!(report.satisfied, "{name}@{tol}");
            let t = &report.targets[0];
            ReplyFingerprint {
                satisfied: report.satisfied,
                target: (
                    t.satisfied,
                    t.tol_abs.to_bits(),
                    t.max_est_error.to_bits(),
                    t.bytes as u64,
                ),
                bytes_fetched: report.bytes_fetched,
                total_fetched: session.total_fetched(),
                recons: fields
                    .iter()
                    .map(|f| {
                        session
                            .reconstruction(f)
                            .unwrap()
                            .iter()
                            .map(|x| x.to_bits())
                            .collect()
                    })
                    .collect(),
                qoi_values: session
                    .qoi_values(name)
                    .unwrap()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect(),
                progress_blob: session.save_progress(),
            }
        })
        .collect()
}

#[test]
fn randomized_evictions_are_invisible_across_schemes_and_backends() {
    let dir = std::env::temp_dir().join("pqr_store_pager_test");
    std::fs::create_dir_all(&dir).unwrap();
    for scheme in Scheme::extended() {
        let path = dir.join(format!("{}_{}.pqrx", scheme.name(), std::process::id()));
        build_archive(scheme).save(&path).unwrap();
        #[allow(clippy::type_complexity)] // two labelled archive factories
        let backends: [(&str, Box<dyn Fn() -> Archive>); 2] = [
            ("file", {
                let p = path.clone();
                Box::new(move || Archive::open(&p).unwrap())
            }),
            ("mem", {
                let bytes = std::fs::read(&path).unwrap();
                Box::new(move || Archive::from_bytes(&bytes).unwrap())
            }),
        ];
        for (backend, open) in &backends {
            let ctx = format!("{} / {backend}", scheme.name());

            // unbounded oracle: also measures the working set via the
            // budget's peak tracking (tracking is free, eviction is off)
            let free_archive = open();
            let free_budget = Arc::new(StoreBudget::unbounded());
            let free = free_archive
                .service_with_budget(Arc::clone(&free_budget))
                .unwrap();
            let oracle = run_series(&free, |_, _| {});
            let free_stats = free.store_stats();
            let free_bytes = free_archive.source_stats().fetched_bytes;
            let working_set = free_budget.peak_resident_bytes();
            assert!(working_set > 0, "{ctx}: peak tracking is broken");

            // bounded arm: ⅛ of the working set, plus a seeded schedule of
            // forced demotions injected between (and before) requests
            let tight_archive = open();
            let tight = tight_archive
                .service_with_budget(Arc::new(StoreBudget::with_limit((working_set / 8).max(1))))
                .unwrap();
            let mut lcg = Lcg(0x5eed ^ scheme.tag_for_tests());
            let replies = run_series(&tight, |_, svc| {
                for _ in 0..(lcg.next() % 3) {
                    let field = (lcg.next() % 2) as usize;
                    svc.store().demote(field);
                }
            });

            // every reply byte-identical to the unbounded store
            assert_eq!(replies, oracle, "{ctx}: replies diverged under eviction");

            let tight_stats = tight.store_stats();
            assert!(
                tight_stats.evictions > 0,
                "{ctx}: an eighth-budget run must evict"
            );
            assert!(tight_stats.rehydration_decodes > 0, "{ctx}");
            // decode-once degrades ONLY by the counted rehydration decodes:
            // the advance tally is exactly the unbounded one...
            assert_eq!(
                tight_stats.fragments_decoded, free_stats.fragments_decoded,
                "{ctx}: rehydration replays leaked into the advance tally"
            );
            // ...and the extra source traffic is exactly the counted
            // rehydration bytes (the resident backend doesn't meter
            // bytes, so the exact-accounting claim is checked on file)
            if *backend == "file" {
                assert_eq!(
                    tight_archive.source_stats().fetched_bytes,
                    free_bytes + tight_stats.rehydration_bytes,
                    "{ctx}: unaccounted source bytes"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

/// `Scheme` has no public stable integer id; derive one for seeding only.
trait SchemeSeed {
    fn tag_for_tests(&self) -> u64;
}

impl SchemeSeed for Scheme {
    fn tag_for_tests(&self) -> u64 {
        Scheme::extended().iter().position(|s| s == self).unwrap() as u64
    }
}

#[test]
fn chaos_demotions_under_concurrent_sessions_keep_every_guarantee() {
    let archive = build_archive(Scheme::PmgardHb);
    let truth_v: Vec<f64> = field_vx(2400)
        .iter()
        .zip(&field_vy(2400))
        .map(|(x, y)| (x * x + y * y).sqrt())
        .collect();
    // a budget small enough that natural eviction joins the forced chaos
    let service = archive
        .service_with_budget(Arc::new(StoreBudget::with_limit(64 << 10)))
        .unwrap();

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // chaos: demote pseudo-random fields as fast as the locks allow
        let chaos_service = service.clone();
        let stop_ref = &stop;
        s.spawn(move || {
            let mut lcg = Lcg(0xc4a05);
            while !stop_ref.load(Ordering::Relaxed) {
                chaos_service.store().demote((lcg.next() % 2) as usize);
                std::thread::yield_now();
            }
        });

        let tols = [1e-2, 1e-5, 1e-3, 1e-4];
        for (k, &tol) in tols.iter().enumerate().cycle().take(8) {
            let service = service.clone();
            let name = ["V", "Vx2", "VxVy"][k % 3];
            let truth_v = &truth_v;
            s.spawn(move || {
                let mut session = service.session().unwrap();
                let report = session
                    .execute(&RetrievalRequest::new().qoi(name, tol))
                    .unwrap();
                assert!(report.satisfied, "{name}@{tol}");
                let t = &report.targets[0];
                assert!(t.max_est_error <= t.tol_abs);
                // sessions never decode, chaos or not
                assert_eq!(session.fragments_decoded(), 0);
                // the certified estimate really bounds the actual error
                if name == "V" {
                    let worst = session
                        .qoi_values("V")
                        .unwrap()
                        .iter()
                        .zip(truth_v)
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0f64, f64::max);
                    assert!(
                        worst <= t.tol_abs,
                        "{name}@{tol}: actual error {worst} > certified {}",
                        t.tol_abs
                    );
                }
            });
        }
        // let the chaos loop race the sessions for a while, then stop it;
        // the scope join waits for every session to finish its tail
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });

    let stats = service.store_stats();
    assert!(stats.evictions > 0, "chaos never landed a demotion");
    assert!(stats.rehydration_decodes > 0);
    // decode-once under chaos: advance decodes never exceed the number of
    // distinct fragments in the archive (8 cold engines would have paid
    // a multiple of this)
    let total_fragments: u64 = service
        .manifest()
        .fields
        .iter()
        .map(|f| f.fragments.len() as u64)
        .sum();
    assert!(stats.fragments_decoded > 0);
    assert!(
        stats.fragments_decoded <= total_fragments,
        "advance decodes {} exceed the archive's {} fragments",
        stats.fragments_decoded,
        total_fragments
    );
    // pressure enforcement pins whichever field was hot last; an unpinned
    // pass at this quiesce point recovers the tier to its ceiling
    service.store().enforce();
    assert!(!service.store().budget().over_decoded_limit());
}
