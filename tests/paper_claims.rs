//! Integration tests pinning the paper's qualitative claims — the "shape"
//! results the figures report, asserted at test scale.

use pqr::datagen::ge;
use pqr::prelude::*;

fn ge_dataset(points_per_block: usize, blocks: usize) -> Dataset {
    let raw_blocks = ge::generate(&ge::GeConfig {
        blocks,
        mean_block_len: points_per_block,
        wall_fraction: 0.03,
        seed: 42,
    });
    let raw = ge::concat(&raw_blocks);
    let mut ds = Dataset::new(&raw.dims);
    for (name, data) in &raw.fields {
        ds.add_field(name, data.clone()).unwrap();
    }
    ds
}

/// §V-B / Fig. 2: under a progressive request series PSZ3 moves the most
/// bytes (snapshot redundancy); PSZ3-delta and PMGARD-HB are leaner.
#[test]
fn psz3_redundancy_ordering() {
    let ds = ge_dataset(1500, 6);
    let ladder: Vec<f64> = (1..=10).map(|i| 10f64.powi(-i)).collect();
    let mut totals = std::collections::BTreeMap::new();
    for scheme in [Scheme::Psz3, Scheme::Psz3Delta, Scheme::PmgardHb] {
        let archive = ds.refactor_with_bounds(scheme, &ladder).unwrap();
        let field = archive.field(3); // Pressure
        let mut reader = field.reader();
        for i in 1..=20 {
            let eb = 0.1 * (2.0f64).powi(-i) * field.value_range();
            reader.refine_to(eb).unwrap();
        }
        totals.insert(scheme.name(), reader.total_fetched());
    }
    assert!(
        totals["PSZ3"] > totals["PSZ3-delta"],
        "PSZ3 {} !> delta {}",
        totals["PSZ3"],
        totals["PSZ3-delta"]
    );
}

/// §V-B / Fig. 3: the OB estimator over-retrieves; HB estimates track the
/// real error far more closely, so HB fetches fewer bytes for the same
/// guaranteed bound.
#[test]
fn hb_beats_ob_fig3() {
    let ds = ge_dataset(2000, 4);
    let hb = ds.refactor(Scheme::PmgardHb).unwrap();
    let ob = ds.refactor(Scheme::PmgardOb).unwrap();
    for f in 0..5 {
        let range = hb.field(f).value_range();
        let mut rh = hb.field(f).reader();
        let mut ro = ob.field(f).reader();
        let eb = 1e-5 * range;
        rh.refine_to(eb).unwrap();
        ro.refine_to(eb).unwrap();
        assert!(
            rh.total_fetched() < ro.total_fetched(),
            "field {f}: HB {} !< OB {}",
            rh.total_fetched(),
            ro.total_fetched()
        );
        // and OB's real error sits far below its guarantee (over-retrieval)
        let orig = ds.field(f);
        let real_ob = stats::max_abs_diff(orig, ro.data());
        assert!(real_ob < ro.guaranteed_bound() / 3.0);
    }
}

/// §VI-B / Fig. 4: estimated errors upper-bound actual errors for every GE
/// QoI over a full progressive tolerance sweep.
#[test]
fn fig4_estimates_dominate_actuals_over_sweep() {
    let ds = ge_dataset(800, 4);
    let mut archive = ds.refactor(Scheme::PmgardHb).unwrap();
    archive.set_mask(ds.zero_mask(&[0, 1, 2])).unwrap();
    for (name, expr) in ge_qoi::all() {
        let truth = ds.qoi_values(&expr);
        let range = ds.qoi_range(&expr).unwrap();
        let mut engine = RetrievalEngine::new(&archive, EngineConfig::default()).unwrap();
        for i in 0..=6 {
            let tol = 0.1 * (4.0f64).powi(-i);
            let spec = QoiSpec::with_range(name, expr.clone(), tol, range);
            let report = engine.retrieve(&[spec]).unwrap();
            assert!(report.satisfied, "{name} τ=0.1·4^-{i}");
            let derived = engine.qoi_values(&expr);
            let actual = stats::max_abs_diff(&truth, &derived);
            assert!(
                actual <= report.max_est_errors[0],
                "{name} τ step {i}: actual {actual} > est {}",
                report.max_est_errors[0]
            );
        }
    }
}

/// §V-A: the mask eliminates the √-blow-up — with walls masked the VTOT
/// request is satisfiable, and the √ estimator ablation (exact supremum)
/// can bound it even without the mask.
#[test]
fn mask_vs_exact_sqrt_ablation() {
    let ds = ge_dataset(1200, 4); // contains exact-zero walls
    let archive = ds.refactor(Scheme::PmgardHb).unwrap();
    let spec = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-3, &ds).unwrap();

    // paper-mode √ without mask: unboundable
    let mut cfg = EngineConfig {
        max_iterations: 6,
        max_tightenings: 32,
        ..Default::default()
    };
    let mut engine = RetrievalEngine::new(&archive, cfg).unwrap();
    let r = engine.retrieve(std::slice::from_ref(&spec)).unwrap();
    assert!(!r.satisfied, "paper √ should fail on unmasked zeros");

    // exact-supremum √ (ablation): bounded even without the mask
    cfg.bound_config = BoundConfig {
        sqrt_mode: SqrtMode::Exact,
        ..Default::default()
    };
    cfg.max_iterations = 64;
    cfg.max_tightenings = 512;
    let mut engine2 = RetrievalEngine::new(&archive, cfg).unwrap();
    let r2 = engine2.retrieve(std::slice::from_ref(&spec)).unwrap();
    assert!(
        r2.satisfied,
        "exact √ estimator should succeed without mask"
    );
    let truth = ds.qoi_values(&spec.expr);
    let derived = engine2.qoi_values(&spec.expr);
    assert!(stats::max_abs_diff(&truth, &derived) <= r2.max_est_errors[0]);
}

/// Table IV shape: PMGARD-HB refactoring (one decomposition + bitplanes)
/// must not be drastically slower than the 18-snapshot PSZ3 ladder. (The
/// paper measures HB 3–4× *faster*; our SZ stand-in is quicker than the
/// real SZ3 so the two land close — strict ordering would be a flaky
/// timing assertion, the regression guard here is the 2× envelope.)
#[test]
fn refactor_time_ordering_table4() {
    let ds = ge_dataset(4000, 4);
    let ladder: Vec<f64> = (1..=18).map(|i| 10f64.powi(-i)).collect();
    let (_, t_hb) = pqr::util::timer::time_it(|| ds.refactor(Scheme::PmgardHb).unwrap());
    let (_, t_psz3) =
        pqr::util::timer::time_it(|| ds.refactor_with_bounds(Scheme::Psz3, &ladder).unwrap());
    assert!(
        t_hb < t_psz3 * 2.0,
        "PMGARD-HB refactor {t_hb}s vs PSZ3 {t_psz3}s — far outside envelope"
    );
}

/// Fig. 9's headline number at the wire level: pushing the τ=1e-5 retrieval
/// through the paper-calibrated Globus model instead of the raw fields is
/// ≥ 2× faster (the paper reports 2.02× end-to-end at paper scale, where
/// the wire dominates compute).
#[test]
fn fig9_wire_speedup_exceeds_two() {
    let ds = ge_dataset(20_000, 2);
    let mut vds = Dataset::new(ds.dims());
    for i in 0..3 {
        vds.add_field(ds.field_name(i), ds.field(i).to_vec())
            .unwrap();
    }
    let mut archive = vds.refactor(Scheme::PmgardHb).unwrap();
    archive.set_mask(vds.zero_mask(&[0, 1, 2])).unwrap();
    let spec = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-5, &vds).unwrap();
    let mut engine = RetrievalEngine::new(&archive, EngineConfig::default()).unwrap();
    let r = engine.retrieve(&[spec]).unwrap();
    assert!(r.satisfied);

    // The paper's 2.02× is a byte-fraction argument evaluated in the
    // wire-dominated regime (4.67 GB, where throughput dwarfs the session
    // latency). Project the *measured fraction* to the paper's transfer
    // size and run both sides through the calibrated model.
    let fraction = r.total_fetched as f64 / archive.raw_bytes() as f64;
    assert!(fraction < 0.5, "fetched fraction {fraction:.3} too large");
    let net = NetworkModel::globus_mcc_to_anvil();
    let paper_raw = 4_670_000_000usize; // §VI-D raw subset
    let t_raw = net.transfer_secs(paper_raw, 1);
    // progressive retrieval moves several fragments; charge one request per
    // field plus one for metadata — generous to the baseline
    let t_prog = net.transfer_secs((paper_raw as f64 * fraction) as usize, 4);
    assert!(
        t_raw / t_prog >= 2.0,
        "wire speedup {:.2}x below the paper's 2.02x envelope",
        t_raw / t_prog
    );
}

/// Fig. 9's byte argument at test scale: the τ=1e-5 QoI retrieval moves
/// under half of the raw involved-field bytes.
#[test]
fn fig9_bytes_win() {
    let ds = ge_dataset(20_000, 2);
    // velocity fields only (the paper's 3-variable transfer subset)
    let mut vds = Dataset::new(ds.dims());
    for i in 0..3 {
        vds.add_field(ds.field_name(i), ds.field(i).to_vec())
            .unwrap();
    }
    let mut archive = vds.refactor(Scheme::PmgardHb).unwrap();
    archive.set_mask(vds.zero_mask(&[0, 1, 2])).unwrap();
    let spec = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-5, &vds).unwrap();
    let mut engine = RetrievalEngine::new(&archive, EngineConfig::default()).unwrap();
    let r = engine.retrieve(&[spec]).unwrap();
    assert!(r.satisfied);
    let raw = archive.raw_bytes();
    assert!(
        r.total_fetched * 2 < raw,
        "{} B fetched vs raw {} B — less than 2x win",
        r.total_fetched,
        raw
    );
}
