//! Numerical validation of the §IV theory against brute-force search:
//! for each theorem's function family, compare the analytical bound to the
//! empirical supremum obtained by dense grid search over the admissible
//! box. The bound must dominate (soundness) and, where the paper's proof is
//! tight, be close (quality) — both matter for the retrieval size story.

use pqr::prelude::*;
use pqr::qoi::bounds;

/// Dense grid supremum of |f(x') − f(x)| over |x' − x| ≤ eps.
fn sup_1d(f: impl Fn(f64) -> f64, x: f64, eps: f64) -> f64 {
    let f0 = f(x);
    let mut worst = 0.0f64;
    let steps = 4000;
    for k in 0..=steps {
        let xp = (x - eps + 2.0 * eps * k as f64 / steps as f64).clamp(x - eps, x + eps);
        let v = (f(xp) - f0).abs();
        if v.is_finite() {
            worst = worst.max(v);
        }
    }
    worst
}

#[test]
fn theorem1_power_tightness() {
    // Δ(xⁿ) = (|x|+ε)ⁿ − |x|ⁿ is attained at x' = x ± ε (sign of x):
    // the bound should be within ~1.0001× of the empirical supremum when
    // x > 0 (the |x| relaxation only loses when signs mix).
    for &(n, x, eps) in &[(2u32, 1.5, 0.1), (3, 2.0, 0.05), (5, 0.9, 0.02)] {
        let b = bounds::power_bound(n, x, eps);
        let s = sup_1d(|v| v.powi(n as i32), x, eps);
        assert!(s <= b * (1.0 + 1e-12), "soundness n={n}");
        assert!(b <= s * 1.001, "tightness n={n}: bound {b} vs sup {s}");
    }
}

#[test]
fn theorem2_sqrt_exact_when_x_ge_eps() {
    for &(x, eps) in &[(1.0, 0.5), (4.0, 3.9), (100.0, 1.0)] {
        let b = bounds::sqrt_bound(SqrtMode::Paper, x, eps);
        let s = sup_1d(|v| v.max(0.0).sqrt(), x, eps);
        assert!(s <= b * (1.0 + 1e-12));
        assert!(b <= s * 1.0001, "paper √ bound should be exact here");
    }
}

#[test]
fn theorem2_exact_mode_tight_below_eps() {
    // in the x < ε regime the paper's formula is loose (∞ at x = 0 exactly,
    // finite-but-overestimating for 0 < x < ε) while the exact supremum
    // stays tight — the quantified version of the Fig. 4 near-zero gap
    for &(x, eps) in &[(0.0, 0.01), (0.005, 0.01), (0.0099, 0.01)] {
        let exact = bounds::sqrt_bound(SqrtMode::Exact, x, eps);
        let s = sup_1d(|v| v.max(0.0).sqrt(), x, eps);
        assert!(s <= exact * (1.0 + 1e-12));
        assert!(exact <= s * 1.001, "exact √: bound {exact} vs sup {s}");
        let paper = bounds::sqrt_bound(SqrtMode::Paper, x, eps);
        assert!(
            paper >= exact * (1.0 - 1e-12),
            "paper bound {paper} below exact {exact}"
        );
        if x == 0.0 {
            assert!(paper.is_infinite());
        }
    }
}

#[test]
fn theorem3_radical_tightness() {
    for &(c, x, eps) in &[(110.4, 300.0, 10.0), (0.0, 5.0, 1.0), (-2.0, 10.0, 3.0)] {
        let b = bounds::radical_bound(c, x, eps);
        let s = sup_1d(|v| 1.0 / (v + c), x, eps);
        assert!(s <= b * (1.0 + 1e-12));
        assert!(b <= s * 1.0001, "radical: bound {b} vs sup {s}");
    }
}

#[test]
fn theorem5_product_2d_grid() {
    let (x1, e1, x2, e2) = (3.0, 0.3, -2.0, 0.2);
    let b = bounds::product_bound(x1, e1, x2, e2);
    let mut s = 0.0f64;
    for i in 0..=200 {
        for j in 0..=200 {
            let a = x1 - e1 + 2.0 * e1 * i as f64 / 200.0;
            let c = x2 - e2 + 2.0 * e2 * j as f64 / 200.0;
            s = s.max((a * c - x1 * x2).abs());
        }
    }
    assert!(s <= b * (1.0 + 1e-12));
    // product bound is attained at a corner: near-tight
    assert!(b <= s * 1.01, "product: bound {b} vs sup {s}");
}

#[test]
fn theorem6_quotient_2d_grid() {
    let (x1, e1, x2, e2) = (5.0, 0.4, 3.0, 0.5);
    let b = bounds::quotient_bound(x1, e1, x2, e2);
    let mut s = 0.0f64;
    for i in 0..=200 {
        for j in 0..=200 {
            let a = x1 - e1 + 2.0 * e1 * i as f64 / 200.0;
            let c = x2 - e2 + 2.0 * e2 * j as f64 / 200.0;
            s = s.max((a / c - x1 / x2).abs());
        }
    }
    assert!(s <= b * (1.0 + 1e-12));
    assert!(b <= s * 1.35, "quotient bound slack too large: {b} vs {s}");
}

#[test]
fn ge_qois_bound_vs_monte_carlo_supremum() {
    // For each GE QoI at a realistic state, the analytical bound must
    // dominate a 100k-sample Monte-Carlo search and stay within a
    // documented slack budget (the retrieval-size cost of the composition).
    let x = [30.0f64, 40.0, 5.0, 101_325.0, 1.204];
    let eps = [0.01, 0.01, 0.01, 5.0, 1e-4];
    let cfg = BoundConfig::default();
    // (name, max admitted bound/sup slack): deeper compositions get more
    let slack = [
        ("VTOT", 2.0),
        ("T", 1.5),
        ("C", 2.0),
        ("Mach", 4.0),
        ("PT", 8.0),
        ("mu", 8.0),
    ];
    let mut rng = 0x8badf00du64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        (rng as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    for ((name, q), (sname, max_slack)) in pqr::qoi::ge::all().into_iter().zip(slack) {
        assert_eq!(name, sname);
        let out = q.eval_bounded(&x, &eps, &cfg);
        let f0 = q.eval(&x);
        let mut sup = 0.0f64;
        for _ in 0..100_000 {
            let xp: Vec<f64> = (0..5).map(|i| x[i] + eps[i] * next()).collect();
            sup = sup.max((q.eval(&xp) - f0).abs());
        }
        assert!(sup <= out.bound, "{name}: sup {sup} > bound {}", out.bound);
        assert!(
            out.bound <= sup * max_slack,
            "{name}: bound {} vs sup {sup} exceeds {max_slack}x slack budget",
            out.bound
        );
    }
}

#[test]
fn composition_lemma_nesting_depth() {
    // Lemma 1/2 chains: bound a deeply nested expression and verify
    // domination — exercised at depth ~12 (beyond anything in the paper).
    let mut expr = QoiExpr::var(0);
    for _ in 0..6 {
        expr = expr.pow(2).poly(&[0.5, 0.25]).sqrt().add(QoiExpr::var(1));
    }
    let x = [1.2, 0.7];
    let eps = [1e-6, 1e-6];
    let out = expr.eval_bounded(&x, &eps, &BoundConfig::default());
    assert!(out.bound.is_finite());
    let f0 = expr.eval(&x);
    for corner in 0..4 {
        let xp = [
            x[0] + if corner & 1 == 1 { 1e-6 } else { -1e-6 },
            x[1] + if corner & 2 == 2 { 1e-6 } else { -1e-6 },
        ];
        assert!((expr.eval(&xp) - f0).abs() <= out.bound);
    }
}

#[test]
fn mask_points_contribute_zero_error_budget() {
    // a dataset that is all walls: every point masked ⇒ any tolerance is
    // satisfiable with zero fragment bytes beyond metadata
    let n = 256;
    let mut ds = Dataset::new(&[n]);
    for name in ["Vx", "Vy", "Vz"] {
        ds.add_field(name, vec![0.0; n]).unwrap();
    }
    let mut archive = ds.refactor(Scheme::PmgardHb).unwrap();
    archive.set_mask(ds.zero_mask(&[0, 1, 2])).unwrap();
    let spec = QoiSpec::with_range("VTOT", velocity_magnitude(0, 3), 1e-12, 1.0);
    let mut engine = RetrievalEngine::new(&archive, EngineConfig::default()).unwrap();
    let report = engine.retrieve(&[spec]).unwrap();
    assert!(report.satisfied);
    assert_eq!(report.max_est_errors[0], 0.0);
}
