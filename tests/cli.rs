//! End-to-end CLI test: refactor → info → retrieve through the `pqr`
//! binary, with byte-exact file I/O verification of the guarantee.

use std::path::PathBuf;
use std::process::Command;

fn write_f64(path: &PathBuf, data: &[f64]) {
    let mut bytes = Vec::with_capacity(data.len() * 8);
    for v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    std::fs::write(path, bytes).unwrap();
}

fn read_f64(path: &PathBuf) -> Vec<f64> {
    std::fs::read(path)
        .unwrap()
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn pqr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pqr"))
}

#[test]
fn refactor_info_retrieve_roundtrip() {
    let dir = std::env::temp_dir().join(format!("pqr-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let n = 4000;
    let vx: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.01).sin() * 30.0 + 50.0)
        .collect();
    let vy: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.013).cos() * 20.0 + 40.0)
        .collect();
    write_f64(&dir.join("vx.f64"), &vx);
    write_f64(&dir.join("vy.f64"), &vy);

    // refactor
    let archive = dir.join("data.pqr");
    let out = pqr()
        .args([
            "refactor",
            "--out",
            archive.to_str().unwrap(),
            "--scheme",
            "psz3-delta",
            "--field",
            &format!("Vx:{}", dir.join("vx.f64").display()),
            "--field",
            &format!("Vy:{}", dir.join("vy.f64").display()),
            "--qoi",
            "V2=x0^2 + x1^2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(archive.exists());

    // info
    let out = pqr()
        .args(["info", archive.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Vx"), "info output: {text}");
    assert!(text.contains("V2"), "info output: {text}");
    assert!(text.contains("PSZ3-delta"), "info output: {text}");

    // retrieve
    let derived = dir.join("v2.f64");
    let recon = dir.join("vx_recon.f64");
    let out = pqr()
        .args([
            "retrieve",
            archive.to_str().unwrap(),
            "--qoi",
            "V2",
            "--tol",
            "1e-6",
            "--out",
            derived.to_str().unwrap(),
            "--field",
            "Vx",
            "--out-field",
            recon.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // verify the guarantee on the written files
    let got = read_f64(&derived);
    assert_eq!(got.len(), n);
    let truth: Vec<f64> = vx.iter().zip(&vy).map(|(a, b)| a * a + b * b).collect();
    let range = truth.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - truth.iter().cloned().fold(f64::INFINITY, f64::min);
    let worst = truth
        .iter()
        .zip(&got)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        worst <= 1e-6 * range,
        "QoI error {worst} > {}",
        1e-6 * range
    );

    let vx_recon = read_f64(&recon);
    assert_eq!(vx_recon.len(), n);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pzfp_scheme_and_estimator_flags() {
    let dir = std::env::temp_dir().join(format!("pqr-cli-pzfp-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let n = 3000;
    let t: Vec<f64> = (0..n)
        .map(|i| 280.0 + 30.0 * (i as f64 * 0.004).sin())
        .collect();
    write_f64(&dir.join("t.f64"), &t);

    let archive = dir.join("t.pqr");
    let out = pqr()
        .args([
            "refactor",
            "--out",
            archive.to_str().unwrap(),
            "--scheme",
            "pzfp",
            "--field",
            &format!("T:{}", dir.join("t.f64").display()),
            "--qoi",
            "lnT=ln(x0)",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let info = pqr()
        .args(["info", archive.to_str().unwrap()])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&info.stdout);
    assert!(text.contains("PZFP"), "info output: {text}");
    assert!(text.contains("lnT"), "info output: {text}");

    // retrieve with each estimator; all must satisfy the same tolerance
    for est in ["paper", "exact-sqrt", "interval"] {
        let derived = dir.join(format!("lnT-{est}.f64"));
        let out = pqr()
            .args([
                "retrieve",
                archive.to_str().unwrap(),
                "--qoi",
                "lnT",
                "--tol",
                "1e-6",
                "--estimator",
                est,
                "--out",
                derived.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "estimator {est}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let got = read_f64(&derived);
        let truth: Vec<f64> = t.iter().map(|v| v.ln()).collect();
        let range = truth.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - truth.iter().cloned().fold(f64::INFINITY, f64::min);
        let worst = truth
            .iter()
            .zip(&got)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst <= 1e-6 * range, "estimator {est}: error {worst}");
    }

    // unknown estimator is a clean failure
    let out = pqr()
        .args([
            "retrieve",
            archive.to_str().unwrap(),
            "--qoi",
            "lnT",
            "--tol",
            "1e-3",
            "--estimator",
            "oracle",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retrieval_resumes_across_invocations() {
    let dir = std::env::temp_dir().join(format!("pqr-cli-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let n = 6000;
    let u: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.006).sin() * 40.0 + 5.0)
        .collect();
    write_f64(&dir.join("u.f64"), &u);
    let archive = dir.join("u.pqr");
    let out = pqr()
        .args([
            "refactor",
            "--out",
            archive.to_str().unwrap(),
            "--field",
            &format!("u:{}", dir.join("u.f64").display()),
            "--qoi",
            "u2=x0^2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // invocation 1: loose tolerance, save progress
    let progress = dir.join("u.progress");
    let out = pqr()
        .args([
            "retrieve",
            archive.to_str().unwrap(),
            "--qoi",
            "u2",
            "--tol",
            "1e-2",
            "--save-progress",
            progress.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(progress.exists());

    // invocation 2: resume, tighter tolerance — only the increment is new
    let out = pqr()
        .args([
            "retrieve",
            archive.to_str().unwrap(),
            "--qoi",
            "u2",
            "--tol",
            "1e-6",
            "--resume",
            progress.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = String::from_utf8_lossy(&out.stderr);
    assert!(log.contains("new)"), "log: {log}");

    // resuming with a corrupt progress file fails cleanly
    std::fs::write(&progress, b"garbage").unwrap();
    let out = pqr()
        .args([
            "retrieve",
            archive.to_str().unwrap(),
            "--qoi",
            "u2",
            "--tol",
            "1e-3",
            "--resume",
            progress.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn f32_files_read_and_write_by_extension() {
    let dir = std::env::temp_dir().join(format!("pqr-cli-f32-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let n = 2000;
    let data: Vec<f64> = (0..n)
        .map(|i| f64::from((i as f32 * 0.01).sin() * 12.5 + 20.0))
        .collect();
    // write as f32
    let mut bytes = Vec::with_capacity(n * 4);
    for v in &data {
        bytes.extend_from_slice(&(*v as f32).to_le_bytes());
    }
    std::fs::write(dir.join("u.f32"), bytes).unwrap();

    let archive = dir.join("u.pqr");
    let out = pqr()
        .args([
            "refactor",
            "--out",
            archive.to_str().unwrap(),
            "--field",
            &format!("u:{}", dir.join("u.f32").display()),
            "--qoi",
            "u2=x0^2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // retrieve back out as f32
    let derived = dir.join("u2.f32");
    let out = pqr()
        .args([
            "retrieve",
            archive.to_str().unwrap(),
            "--qoi",
            "u2",
            "--tol",
            "1e-5",
            "--out",
            derived.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let got: Vec<f64> = std::fs::read(&derived)
        .unwrap()
        .chunks_exact(4)
        .map(|c| f64::from(f32::from_le_bytes(c.try_into().unwrap())))
        .collect();
    assert_eq!(got.len(), n);
    let truth: Vec<f64> = data.iter().map(|v| v * v).collect();
    let range = truth.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - truth.iter().cloned().fold(f64::INFINITY, f64::min);
    let worst = truth
        .iter()
        .zip(&got)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    // tolerance + the f32 narrowing of the *output* file
    assert!(worst <= 1e-5 * range + range * 1e-6, "error {worst}");

    // mis-sized f32 file is a clean error
    std::fs::write(dir.join("bad.f32"), [1u8, 2, 3]).unwrap();
    let out = pqr()
        .args([
            "refactor",
            "--out",
            dir.join("bad.pqr").to_str().unwrap(),
            "--field",
            &format!("b:{}", dir.join("bad.f32").display()),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_nonsense() {
    // unknown command
    let out = pqr().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    // refactor without fields
    let out = pqr()
        .args(["refactor", "--out", "/tmp/x.pqr"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // retrieve from a missing archive
    let out = pqr()
        .args([
            "retrieve",
            "/nonexistent.pqr",
            "--qoi",
            "x",
            "--tol",
            "1e-3",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // bad QoI expression
    let out = pqr()
        .args([
            "refactor",
            "--out",
            "/tmp/bad.pqr",
            "--field",
            "f:/dev/null",
            "--qoi",
            "bad=x0^3.5",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("sqrt"), "fractional-power hint missing: {err}");
}

#[test]
fn help_prints_usage() {
    let out = pqr().args(["help"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("refactor"));
    assert!(text.contains("retrieve"));
}

#[test]
fn multi_qoi_retrieve_prints_per_target_table_and_savings() {
    let dir = std::env::temp_dir().join(format!("pqr-cli-multi-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let n = 3000;
    let vx: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.012).sin() * 25.0 + 40.0)
        .collect();
    let vy: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.019).cos() * 12.0 + 30.0)
        .collect();
    write_f64(&dir.join("vx.f64"), &vx);
    write_f64(&dir.join("vy.f64"), &vy);

    let archive = dir.join("multi.pqr");
    let out = pqr()
        .args([
            "refactor",
            "--out",
            archive.to_str().unwrap(),
            "--field",
            &format!("Vx:{}", dir.join("vx.f64").display()),
            "--field",
            &format!("Vy:{}", dir.join("vy.f64").display()),
            "--qoi",
            "V=sqrt(x0^2 + x1^2)",
            "--qoi",
            "KE=0.5 * (x0^2 + x1^2)",
            "--qoi",
            "Vx2=x0^2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // batched multi-QoI retrieval over QoIs sharing both fields
    let out = pqr()
        .args([
            "retrieve",
            archive.to_str().unwrap(),
            "--qoi",
            "V=1e-4",
            "--qoi",
            "KE=1e-4",
            "--qoi",
            "Vx2=1e-3",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8_lossy(&out.stdout);
    for name in ["target", "V", "KE", "Vx2", "shared fragments saved"] {
        assert!(table.contains(name), "missing '{name}' in:\n{table}");
    }
    // every target line certifies
    assert!(!table.contains(" NO "), "unsatisfied target in:\n{table}");
    let diag = String::from_utf8_lossy(&out.stderr);
    assert!(diag.contains("read ops"), "missing read-op line: {diag}");

    // mixing the two --qoi forms is rejected
    let out = pqr()
        .args([
            "retrieve",
            archive.to_str().unwrap(),
            "--qoi",
            "V=1e-4",
            "--qoi",
            "KE",
            "--tol",
            "1e-4",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // --out is ambiguous across targets and rejected loudly (not dropped)
    let out = pqr()
        .args([
            "retrieve",
            archive.to_str().unwrap(),
            "--qoi",
            "V=1e-4",
            "--qoi",
            "KE=1e-4",
            "--out",
            dir.join("v.f64").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out-field"));

    // reconstructions are unambiguous (the field is named) and supported
    let recon = dir.join("vx_recon.f64");
    let out = pqr()
        .args([
            "retrieve",
            archive.to_str().unwrap(),
            "--qoi",
            "V=1e-4",
            "--qoi",
            "KE=1e-4",
            "--field",
            "Vx",
            "--out-field",
            recon.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(read_f64(&recon).len(), n);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn workers_and_overlap_flags_change_nothing_but_are_validated() {
    let dir = std::env::temp_dir().join(format!("pqr-cli-workers-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let n = 4000;
    let u: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.009).sin() * 18.0 + 4.0)
        .collect();
    write_f64(&dir.join("u.f64"), &u);
    let archive = dir.join("u.pqr");
    let out = pqr()
        .args([
            "refactor",
            "--out",
            archive.to_str().unwrap(),
            "--field",
            &format!("u:{}", dir.join("u.f64").display()),
            "--qoi",
            "u2=x0^2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // the decode-parallelism knobs are now CLI flags (no PQR_THREADS env
    // needed); results must be identical across the worker/overlap matrix
    let run = |extra: &[&str]| {
        let mut args = vec![
            "retrieve",
            archive.to_str().unwrap(),
            "--qoi",
            "u2",
            "--tol",
            "1e-5",
        ];
        args.extend_from_slice(extra);
        let out = pqr().args(&args).output().unwrap();
        assert!(
            out.status.success(),
            "{extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let log = String::from_utf8_lossy(&out.stderr).to_string();
        // the "satisfied ... fetched ... est err" line is deterministic
        log.lines()
            .find(|l| l.starts_with("satisfied"))
            .unwrap()
            .to_string()
    };
    let baseline = run(&[]);
    assert_eq!(baseline, run(&["--workers", "1", "--overlap-io", "off"]));
    assert_eq!(baseline, run(&["--workers", "4", "--overlap-io", "on"]));
    // multi-target form accepts them too
    let out = pqr()
        .args([
            "retrieve",
            archive.to_str().unwrap(),
            "--qoi",
            "u2=1e-4",
            "--workers",
            "2",
            "--overlap-io",
            "true",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // bad values fail loudly
    for bad in [["--workers", "many"], ["--overlap-io", "maybe"]] {
        let out = pqr()
            .args([
                "retrieve",
                archive.to_str().unwrap(),
                "--qoi",
                "u2",
                "--tol",
                "1e-3",
                bad[0],
                bad[1],
            ])
            .output()
            .unwrap();
        assert!(!out.status.success(), "{bad:?} should be rejected");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn refactor_workers_and_overlap_flags_stream_identical_archives() {
    let dir = std::env::temp_dir().join(format!("pqr-cli-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let n = 4000;
    let vx: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.011).sin() * 22.0 + 35.0)
        .collect();
    let vy: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.017).cos() * 14.0 + 25.0)
        .collect();
    write_f64(&dir.join("vx.f64"), &vx);
    write_f64(&dir.join("vy.f64"), &vy);

    // the encode knobs may only change wall-clock: every (workers,
    // overlap) schedule must write byte-identical archives, and each run
    // must report its encode throughput
    let run = |tag: &str, extra: &[&str]| -> (Vec<u8>, String) {
        let archive = dir.join(format!("{tag}.pqr"));
        let mut args = vec![
            "refactor".to_string(),
            "--out".into(),
            archive.to_str().unwrap().into(),
            "--field".into(),
            format!("Vx:{}", dir.join("vx.f64").display()),
            "--field".into(),
            format!("Vy:{}", dir.join("vy.f64").display()),
            "--qoi".into(),
            "V2=x0^2 + x1^2".into(),
            "--mask".into(),
            "Vx,Vy".into(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        let out = pqr().args(&args).output().unwrap();
        assert!(
            out.status.success(),
            "{extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            std::fs::read(&archive).unwrap(),
            String::from_utf8_lossy(&out.stderr).to_string(),
        )
    };
    let (baseline, log) = run("w1off", &["--workers", "1", "--overlap-io", "off"]);
    assert!(
        log.lines()
            .any(|l| l.starts_with("encode:") && l.contains("fields/s")),
        "missing encode-throughput line: {log}"
    );
    for (tag, extra) in [
        ("w1on", ["--workers", "1", "--overlap-io", "on"]),
        ("w4off", ["--workers", "4", "--overlap-io", "off"]),
        ("w4on", ["--workers", "4", "--overlap-io", "on"]),
    ] {
        let (bytes, log) = run(tag, &extra);
        assert_eq!(baseline, bytes, "{extra:?} changed archive bytes");
        assert!(log.contains("encode:"), "{extra:?} log: {log}");
    }

    // the streamed archive retrieves with the guarantee intact
    let derived = dir.join("v2.f64");
    let out = pqr()
        .args([
            "retrieve",
            dir.join("w4on.pqr").to_str().unwrap(),
            "--qoi",
            "V2",
            "--tol",
            "1e-6",
            "--out",
            derived.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let got = read_f64(&derived);
    let truth: Vec<f64> = vx.iter().zip(&vy).map(|(a, b)| a * a + b * b).collect();
    let range = truth.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - truth.iter().cloned().fold(f64::INFINITY, f64::min);
    let worst = truth
        .iter()
        .zip(&got)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(worst <= 1e-6 * range, "QoI error {worst}");

    // bad values fail loudly, with no archive left behind
    for bad in [["--workers", "many"], ["--overlap-io", "maybe"]] {
        let target = dir.join("bad.pqr");
        let out = pqr()
            .args([
                "refactor",
                "--out",
                target.to_str().unwrap(),
                "--field",
                &format!("Vx:{}", dir.join("vx.f64").display()),
                bad[0],
                bad[1],
            ])
            .output()
            .unwrap();
        assert!(!out.status.success(), "{bad:?} should be rejected");
        assert!(!target.exists(), "{bad:?} left a partial archive");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_bench_reports_shared_vs_cold() {
    let dir = std::env::temp_dir().join(format!("pqr-cli-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let n = 6000;
    let vx: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.012).sin() * 25.0 + 40.0)
        .collect();
    let vy: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.019).cos() * 12.0 + 30.0)
        .collect();
    write_f64(&dir.join("vx.f64"), &vx);
    write_f64(&dir.join("vy.f64"), &vy);
    let archive = dir.join("serve.pqr");
    let out = pqr()
        .args([
            "refactor",
            "--out",
            archive.to_str().unwrap(),
            "--field",
            &format!("Vx:{}", dir.join("vx.f64").display()),
            "--field",
            &format!("Vy:{}", dir.join("vy.f64").display()),
            "--qoi",
            "V=sqrt(x0^2 + x1^2)",
            "--qoi",
            "Vx2=x0^2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    let report = dir.join("serve.json");
    let out = pqr()
        .args([
            "serve-bench",
            archive.to_str().unwrap(),
            "--qoi",
            "V=1e-5",
            "--qoi",
            "Vx2=1e-2",
            "--sessions",
            "4",
            "--out",
            report.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&report).unwrap();
    for key in [
        "pqr-bench-serve/1",
        "decode_reuse_ratio",
        "bytes_read_ratio",
        "\"satisfied\": 4",
    ] {
        assert!(json.contains(key), "missing '{key}' in:\n{json}");
    }
    // decode-once in numbers: the shared arm must decode strictly fewer
    // fragments and read strictly fewer source bytes than the cold arm
    let field = |arm: &str, key: &str| -> f64 {
        let arm_json = json.split(&format!("\"{arm}\": {{")).nth(1).unwrap();
        arm_json
            .split(&format!("\"{key}\": "))
            .nth(1)
            .unwrap()
            .split([',', '}'])
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap()
    };
    assert!(field("shared", "fragments_decoded") < field("cold", "fragments_decoded"));
    assert!(field("shared", "source_bytes") < field("cold", "source_bytes"));

    // targets are mandatory
    let out = pqr()
        .args(["serve-bench", archive.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}
