//! End-to-end integration: archive → progressive retrieval → guarantee,
//! across all five representations and three generated datasets.

use pqr::datagen::{ge, hurricane, nyx, s3d};
use pqr::prelude::*;

/// Builds a Dataset from a RawDataset (all fields).
fn to_dataset(raw: &pqr::datagen::RawDataset) -> Dataset {
    let mut ds = Dataset::new(&raw.dims);
    for (name, data) in &raw.fields {
        ds.add_field(name, data.clone()).unwrap();
    }
    ds
}

/// Asserts the paper's central guarantee for one QoI on one archive:
/// actual ≤ estimated ≤ tolerance.
fn assert_guarantee(ds: &Dataset, archive: &RefactoredDataset, spec: &QoiSpec) {
    let mut engine = RetrievalEngine::new(archive, EngineConfig::default()).unwrap();
    let report = engine.retrieve(std::slice::from_ref(spec)).unwrap();
    assert!(report.satisfied, "{} not satisfied", spec.name);
    let truth = ds.qoi_values(&spec.expr);
    let derived = engine.qoi_values(&spec.expr);
    let actual = stats::max_abs_diff(&truth, &derived);
    assert!(
        actual <= report.max_est_errors[0],
        "{}: actual {actual} > estimated {}",
        spec.name,
        report.max_est_errors[0]
    );
    assert!(
        report.max_est_errors[0] <= spec.tol_abs(),
        "{}: estimated {} > tolerance {}",
        spec.name,
        report.max_est_errors[0],
        spec.tol_abs()
    );
}

#[test]
fn ge_all_qois_all_schemes() {
    let blocks = ge::generate(&ge::GeConfig {
        blocks: 12,
        mean_block_len: 400,
        wall_fraction: 0.03,
        seed: 7,
    });
    let raw = ge::concat(&blocks);
    let ds = to_dataset(&raw);
    let ladder: Vec<f64> = (1..=10).map(|i| 10f64.powi(-i)).collect();
    for scheme in Scheme::extended() {
        let mut archive = ds.refactor_with_bounds(scheme, &ladder).unwrap();
        archive.set_mask(ds.zero_mask(&[0, 1, 2])).unwrap();
        for (name, expr) in ge_qoi::all() {
            let spec = QoiSpec::relative(name, expr, 1e-4, &ds).unwrap();
            assert_guarantee(&ds, &archive, &spec);
        }
    }
}

#[test]
fn hurricane_vtot() {
    let raw = hurricane::generate(&hurricane::HurricaneConfig {
        dims: [6, 32, 32],
        v_max: 70.0,
        eye_radius: 0.15,
        seed: 3,
    });
    let ds = to_dataset(&raw);
    let archive = ds.refactor(Scheme::PmgardHb).unwrap();
    let spec = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-5, &ds).unwrap();
    assert_guarantee(&ds, &archive, &spec);
}

#[test]
fn nyx_vtot() {
    let raw = nyx::generate(&nyx::NyxConfig {
        n: 20,
        v_rms: 9.0e6,
        bulk: 2.0e6,
        seed: 5,
    });
    let ds = to_dataset(&raw);
    let archive = ds.refactor(Scheme::Psz3Delta).unwrap();
    let spec = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-5, &ds).unwrap();
    assert_guarantee(&ds, &archive, &spec);
}

#[test]
fn s3d_products() {
    let raw = s3d::generate(&s3d::S3dConfig {
        dims: [40, 12, 8],
        front_thickness: 0.05,
        seed: 11,
    });
    let ds = to_dataset(&raw);
    let archive = ds.refactor(Scheme::PmgardHb).unwrap();
    for (a, b) in s3d::PRODUCT_PAIRS {
        let spec =
            QoiSpec::relative(&format!("x{a}x{b}"), species_product(a, b), 1e-6, &ds).unwrap();
        assert_guarantee(&ds, &archive, &spec);
    }
}

#[test]
fn facade_roundtrip_through_serialization() {
    // archive → bytes → archive → session must behave identically
    let n = 400;
    let field: Vec<f64> = (0..n).map(|i| (i as f64 * 0.03).sin() * 5.0).collect();
    let mut ds = Dataset::new(&[n]);
    ds.add_field("f", field).unwrap();
    let archive = ds.refactor(Scheme::PmgardHb).unwrap();
    let restored = RefactoredDataset::from_bytes(&archive.to_bytes()).unwrap();

    let spec = QoiSpec::relative("f2", QoiExpr::var(0).pow(2), 1e-5, &ds).unwrap();
    let mut e1 = RetrievalEngine::new(&archive, EngineConfig::default()).unwrap();
    let mut e2 = RetrievalEngine::new(&restored, EngineConfig::default()).unwrap();
    let r1 = e1.retrieve(std::slice::from_ref(&spec)).unwrap();
    let r2 = e2.retrieve(std::slice::from_ref(&spec)).unwrap();
    assert_eq!(r1.total_fetched, r2.total_fetched);
    assert_eq!(e1.reconstruction(0), e2.reconstruction(0));
}

#[test]
fn progressive_series_monotone_bitrate_vs_tolerance() {
    // the retrieval-efficiency backbone of Figs. 4/7: tighter τ ⇒ more bits
    let blocks = ge::generate(&ge::GeConfig {
        blocks: 6,
        mean_block_len: 500,
        wall_fraction: 0.02,
        seed: 21,
    });
    let raw = ge::concat(&blocks);
    let ds = to_dataset(&raw);
    let mut archive = ds.refactor(Scheme::PmgardHb).unwrap();
    archive.set_mask(ds.zero_mask(&[0, 1, 2])).unwrap();
    let base = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1.0, &ds).unwrap();
    let mut engine = RetrievalEngine::new(&archive, EngineConfig::default()).unwrap();
    let mut last = 0usize;
    for i in 1..=8 {
        let spec = base.at_tolerance(0.1 * (2.0f64).powi(-i));
        let report = engine.retrieve(&[spec]).unwrap();
        assert!(report.satisfied, "τ step {i}");
        assert!(report.total_fetched >= last);
        last = report.total_fetched;
    }
}
