//! Offline stand-in for the `criterion` crate (0.5-era API).
//!
//! The build environment has no crates-io access, so this shim implements a
//! minimal wall-clock harness behind the `criterion` surface the workspace's
//! benches use: `benchmark_group`, `bench_function`, `bench_with_input`,
//! `iter`, `iter_batched`, `Throughput`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark is warmed up,
//! then timed over enough iterations to fill a short measurement window;
//! mean wall time (and derived throughput) is printed to stdout.
//!
//! It understands `--bench` / `--test` / filter args enough to be driven by
//! `cargo bench` and by `cargo test --benches` without falling over.

use std::fmt;
use std::time::{Duration, Instant};

/// Returns `x` opaquely to the optimiser, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for reporting throughput alongside wall time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost; the shim times per-input anyway.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: large batches in real criterion.
    SmallInput,
    /// Large inputs: batch size 1 in real criterion.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A `function/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Labels a benchmark `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Labels a benchmark by its parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark label.
pub trait IntoBenchmarkId {
    /// Converts to the printable label.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the routine being measured; collects iteration timings.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup cost excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

#[derive(Debug, Clone)]
struct Settings {
    /// Substring filter from the CLI (e.g. `cargo bench huffman`).
    filter: Option<String>,
    /// Smoke-test mode (`--test`): run each routine once, skip measurement.
    test_mode: bool,
    measurement: Duration,
}

/// Top-level handle handed to each `criterion_group!` target.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--benches" | "--profile-time" | "--noplot" | "--quiet" | "-q" => {}
                "--test" => test_mode = true,
                "--measurement-time" | "--warm-up-time" | "--sample-size" => {
                    let _ = args.next();
                }
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Self {
            settings: Settings {
                filter,
                test_mode,
                measurement: Duration::from_millis(400),
            },
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            settings: &self.settings,
        }
    }

    /// Benchmarks a single standalone function.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let settings = self.settings.clone();
        run_one(&settings, None, &id.into_id(), f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    settings: &'a Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(self.settings, self.throughput, &label, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report flushing in real criterion; a no-op here).
    pub fn finish(self) {}
}

fn run_one(
    settings: &Settings,
    throughput: Option<Throughput>,
    label: &str,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(filter) = &settings.filter {
        if !label.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // One untimed pass: warm-up, and the whole story in `--test` mode.
    f(&mut b);
    if settings.test_mode {
        println!("{label}: test ok");
        return;
    }
    // Scale the iteration count until one measured pass fills the window.
    let mut iters: u64 = 1;
    loop {
        b.iters = iters;
        b.elapsed = Duration::ZERO;
        f(&mut b);
        if b.elapsed >= settings.measurement || iters >= 1 << 24 {
            break;
        }
        let per_iter = b.elapsed.as_secs_f64() / iters as f64;
        let want = (settings.measurement.as_secs_f64() / per_iter.max(1e-9)).ceil();
        iters = (want as u64).clamp(iters + 1, iters.saturating_mul(32));
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.3} Melem/s", n as f64 / per_iter / 1e6),
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.3} MiB/s", n as f64 / per_iter / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!(
        "{label:<48} {:>12} ns/iter{rate}   ({} iters)",
        format_ns(per_iter * 1e9),
        b.iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3e}", ns)
    } else if ns >= 100.0 {
        format!("{:.0}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

/// Declares a group of benchmark functions, like `criterion::criterion_group`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, like `criterion::criterion_main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion {
            settings: Settings {
                filter: None,
                test_mode: false,
                measurement: Duration::from_millis(5),
            },
        };
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        let mut ran = false;
        g.bench_function(BenchmarkId::new("sum", 100), |b| {
            ran = true;
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut b = Bencher {
            iters: 8,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.iters, 8);
    }
}
