//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no crates-io access, so this shim wraps the
//! std primitives behind `parking_lot`'s poison-free API: `lock()` returns
//! the guard directly, recovering the data if a holder panicked.

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s poison-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in a previous holder does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s poison-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_holder_panic() {
        let m = Mutex::new(7usize);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("poison attempt");
        }));
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
