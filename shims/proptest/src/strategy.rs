//! The [`Strategy`] trait and the shim's combinators: `prop_map`,
//! `prop_recursive`, boxing, unions, ranges, tuples, and [`Just`].

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of values for property tests.
///
/// The shim's strategies are pure samplers — no shrink tree. `sample` must be
/// deterministic given the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds recursive values: `self` generates leaves and `recurse` wraps a
    /// strategy for depth `d` into one for depth `d + 1`. Sampling picks a
    /// depth in `0..=depth` uniformly, so both shallow and deep values occur.
    /// `_desired_size` and `_expected_branch` are accepted for parity with
    /// real proptest but unused by the shim.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> Union<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut levels = vec![self.boxed()];
        for _ in 0..depth {
            let prev = levels.last().expect("at least the leaf level").clone();
            levels.push(recurse(prev).boxed());
        }
        Union::new(levels)
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always generates a clone of the given value, like `proptest::prelude::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies; what `prop_oneof!` builds.
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.next_index(self.arms.len());
        self.arms[i].sample(rng)
    }
}

// Integer ranges sample uniformly, with a small bias towards the endpoints —
// boundary values find off-by-one bugs far more often than chance would.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let roll = rng.next_u64();
                let off = match roll % 32 {
                    0 => 0,
                    1 => span - 1,
                    _ => u128::from(rng.next_u64()) % span,
                };
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let roll = rng.next_u64();
                let off = match roll % 32 {
                    0 => 0,
                    1 => span - 1,
                    _ => u128::from(rng.next_u64()) % span,
                };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::unnecessary_cast)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::unnecessary_cast)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn ranges_respect_bounds_and_hit_endpoints() {
        let mut r = rng();
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let x = (3u32..7).sample(&mut r);
            assert!((3..7).contains(&x));
            saw_lo |= x == 3;
            saw_hi |= x == 6;
        }
        assert!(saw_lo && saw_hi);
        for _ in 0..200 {
            let y = (-2.5..2.5f64).sample(&mut r);
            assert!((-2.5..2.5).contains(&y));
            let z = (1u32..=4).sample(&mut r);
            assert!((1..=4).contains(&z));
        }
    }

    #[test]
    fn map_union_and_recursion_compose() {
        let mut r = rng();
        let doubled = (1u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(doubled.sample(&mut r) % 2, 0);
        }
        let u = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(u.sample(&mut r));
        }
        assert_eq!(seen.len(), 2);

        // Depth-bounded recursion: nested vectors of bounded depth.
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u32),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u32..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut max_seen = 0;
        for _ in 0..200 {
            max_seen = max_seen.max(depth(&strat.sample(&mut r)));
        }
        assert!(max_seen > 0 && max_seen <= 3, "depth {max_seen}");
    }
}
