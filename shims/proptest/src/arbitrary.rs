//! `any::<T>()` and the [`Arbitrary`] trait for full-domain sampling.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`]; uniform over the type's domain.
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Any<T> {
    /// A new `Any` strategy (const so module-level `ANY` constants work).
    pub const fn new() -> Self {
        Self(PhantomData)
    }
}

impl<T> Default for Any<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

/// The canonical strategy for `T`, like `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any::new()
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::unnecessary_cast)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias towards 0 / MAX occasionally: boundary values matter.
                match rng.next_u64() % 32 {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values of mixed sign and magnitude; the workspace's suites
        // never rely on NaN/Inf from `any::<f64>()`.
        let mag = 10f64.powi((rng.next_u64() % 25) as i32 - 12);
        (rng.next_f64() * 2.0 - 1.0) * mag
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32((rng.next_u64() % 0xd800) as u32).unwrap_or('\u{fffd}')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_hits_integer_boundaries() {
        let mut r = TestRng::from_seed(5);
        let mut saw_zero = false;
        let mut saw_max = false;
        for _ in 0..2000 {
            let v: u8 = any::<u8>().sample(&mut r);
            saw_zero |= v == 0;
            saw_max |= v == u8::MAX;
        }
        assert!(saw_zero && saw_max);
    }

    #[test]
    fn any_f64_is_finite() {
        let mut r = TestRng::from_seed(6);
        for _ in 0..2000 {
            assert!(any::<f64>().sample(&mut r).is_finite());
        }
    }
}
