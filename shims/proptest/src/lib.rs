//! Offline stand-in for the `proptest` crate (1.x-era API).
//!
//! The build environment has no crates-io access, so this shim implements the
//! slice of proptest the workspace's property suites use: the `proptest!`
//! macro (with `#![proptest_config]`), `Strategy` with `prop_map` /
//! `prop_recursive` / `boxed`, range and tuple strategies, `Just`,
//! `prop_oneof!`, `any::<T>()`, `collection::vec`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs baked
//!   into the assertion message instead of a minimised counterexample.
//! * **Deterministic seeding.** Each test's RNG is seeded from the test name
//!   (override with `PROPTEST_SEED=<u64>`), so CI failures reproduce locally.
//! * **Rejection handling.** `prop_assume!(false)` skips the case; a test
//!   gives up quietly after `20 * cases` rejections like the real crate's
//!   `max_global_rejects` would, rather than failing the run.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Strategies over `bool`, mirroring `proptest::bool`.
pub mod bool {
    use crate::arbitrary::Any;

    /// Uniformly random booleans.
    pub const ANY: Any<bool> = Any::new();
}

/// Strategies over numeric types, mirroring `proptest::num`.
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::arbitrary::Any;

        /// Finite `f64` values (the shim's `any::<f64>()` is already finite).
        pub const ANY: Any<f64> = Any::new();
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests; supports an optional leading
/// `#![proptest_config(...)]` like the real macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __rejected: u32 = 0;
                let __max_rejects = __cfg.cases.saturating_mul(20).max(1000);
                while __accepted < __cfg.cases && __rejected < __max_rejects {
                    let __outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                        (|| {
                            $(
                                let $pat =
                                    $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        Ok(()) => __accepted += 1,
                        Err(_) => __rejected += 1,
                    }
                }
                if ::std::env::var_os("PROPTEST_VERBOSE").is_some() {
                    eprintln!(
                        "proptest {}: {__accepted} accepted, {__rejected} rejected",
                        stringify!($name)
                    );
                }
            }
        )*
    };
}

/// Skips the current case when `cond` is false, like `proptest::prop_assume`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Asserts `cond`; without shrinking this is a plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality; without shrinking this is a plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality; without shrinking this is a plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies with a common value type, like
/// `proptest::prop_oneof`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
