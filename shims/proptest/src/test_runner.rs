//! The shim's runner pieces: deterministic RNG, config, and case rejection.

/// Marker returned (via `Err`) when `prop_assume!` rejects a case.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// Per-suite configuration; only `cases` is meaningful in the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases, like the real `with_cases`.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic splitmix64 generator driving all strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a raw 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds from the test name (FNV-1a), so every test draws a distinct but
    /// reproducible stream. `PROPTEST_SEED=<u64>` perturbs all tests at once.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.trim().parse::<u64>() {
                h = h.wrapping_add(extra.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            }
        }
        Self::from_seed(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, bound)`; `bound` must be nonzero.
    pub fn next_index(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_test_streams_are_reproducible_and_distinct() {
        let mut a1 = TestRng::for_test("alpha");
        let mut a2 = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("beta");
        let sa1: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let sa2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(sa1, sa2);
        assert_ne!(sa1, sb);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = TestRng::from_seed(3);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
