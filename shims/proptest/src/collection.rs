//! Collection strategies, mirroring `proptest::collection`.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length lies in `size` and whose elements come from
/// `element`, like `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo + 1;
        // Bias towards the extremes: empty/minimal and full-length vectors
        // exercise the paths simple midsize samples never reach.
        let len = match rng.next_u64() % 16 {
            0 => self.size.lo,
            1 => self.size.hi,
            _ => self.size.lo + rng.next_index(span),
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_cover_the_size_range() {
        let mut r = TestRng::from_seed(11);
        let strat = vec(0u32..100, 0..10);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..500 {
            let v = strat.sample(&mut r);
            assert!(v.len() < 10);
            lens.insert(v.len());
        }
        assert!(lens.contains(&0) && lens.contains(&9));
    }

    #[test]
    fn exact_size_is_exact() {
        let mut r = TestRng::from_seed(12);
        let strat = vec(0.0..1.0f64, 16usize);
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut r).len(), 16);
        }
    }
}
