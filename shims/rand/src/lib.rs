//! Offline stand-in for the `rand` crate (0.8-era API).
//!
//! The build environment has no crates-io access, so this shim provides the
//! slice of `rand` the workspace actually uses: `StdRng::seed_from_u64`,
//! `Rng::gen`, and `Rng::gen_range` over integer and float ranges. The
//! generator is xoshiro256++ seeded via splitmix64 — deterministic for a
//! given seed, which is what the synthetic dataset generators rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its full "standard" distribution
    /// (uniform over all values for integers, uniform in `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a "standard" sampling distribution, for [`Rng::gen`].
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            Self {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0..3.0f64);
            assert!((-3.0..3.0).contains(&x));
            let y = rng.gen_range(-1.0..=1.0f64);
            assert!((-1.0..=1.0).contains(&y));
            let n = rng.gen_range(10u32..20);
            assert!((10..20).contains(&n));
            let m = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }
}
