//! GE CFD workflow: all six Eq. (1)–(6) QoIs with per-QoI tolerances.
//!
//! Mirrors the paper's motivating scenario (§III-A): a turbomachinery CFD
//! dataset with five fields is archived once; different post-hoc analyses
//! later request different QoIs at different fidelities, and each request
//! moves only the bytes its tolerance requires.
//!
//! ```sh
//! cargo run --release --example ge_cfd_qoi
//! ```

use pqr::datagen::ge::{self, GeConfig};
use pqr::prelude::*;

fn main() -> Result<()> {
    // Synthetic GE-small stand-in (see pqr-datagen docs for what's preserved).
    let blocks = ge::generate(&GeConfig::small().with_block_len(600));
    let data = ge::concat(&blocks);
    println!(
        "GE-small stand-in: {} blocks, {} points/field, 5 fields",
        blocks.len(),
        data.num_elements()
    );

    let mut builder = ArchiveBuilder::new(&data.dims);
    for (name, field) in &data.fields {
        builder = builder.field(name, field.clone());
    }
    // register all six paper QoIs; mask the zero-velocity wall nodes
    for (name, expr) in ge_qoi::all() {
        builder = builder.qoi(name, expr);
    }
    let archive = builder
        .mask(&["VelocityX", "VelocityY", "VelocityZ"])
        .scheme(Scheme::PmgardHb)
        .build()?;

    // Analysis 1: a visual inspection only needs Mach to 1e-3.
    let mut session = archive.session()?;
    let r = session.request("Mach", 1e-3)?;
    println!(
        "\nMach @ 1e-3   → {:>9} B fetched (bitrate {:.2}), estimated err {:.2e}",
        r.total_fetched, r.bitrate, r.max_est_errors[0]
    );

    // Analysis 2: the solver-validation pass wants total pressure tight.
    let r = session.request("PT", 1e-5)?;
    println!(
        "PT   @ 1e-5   → {:>9} B fetched (bitrate {:.2}), estimated err {:.2e}",
        r.total_fetched, r.bitrate, r.max_est_errors[0]
    );

    // Analysis 3: everything at once, production fidelity.
    let all: Vec<(&str, f64)> = vec![
        ("VTOT", 1e-5),
        ("T", 1e-5),
        ("C", 1e-5),
        ("Mach", 1e-5),
        ("PT", 1e-4),
        ("mu", 1e-5),
    ];
    let r = session.request_many(&all)?;
    println!(
        "all 6 QoIs    → {:>9} B fetched (bitrate {:.2}), satisfied: {}",
        r.total_fetched, r.bitrate, r.satisfied
    );

    // Verify the guarantee against ground truth for every QoI.
    println!(
        "\n{:>6} {:>14} {:>14} {:>12}",
        "QoI", "actual rel", "estimated rel", "tolerance"
    );
    for (i, (name, _)) in all.iter().enumerate() {
        let expr = archive.qoi_expr(name).unwrap();
        let range = archive.qoi_range(name).unwrap();
        let mut truth = Vec::new();
        {
            let mut x = vec![0.0; 5];
            for j in 0..data.num_elements() {
                for (f, (_, fd)) in data.fields.iter().enumerate() {
                    x[f] = fd[j];
                }
                truth.push(expr.eval(&x));
            }
        }
        let derived = session.qoi_values(name)?;
        let actual = stats::max_abs_diff(&truth, &derived) / range;
        let est = r.max_est_errors[i] / range;
        println!(
            "{:>6} {:>14.3e} {:>14.3e} {:>12.0e}",
            name, actual, est, all[i].1
        );
        assert!(actual <= est + 1e-15, "{name}: guarantee violated");
    }
    println!("\nall QoI errors within their guarantees ✓");
    Ok(())
}
