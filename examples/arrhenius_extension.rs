//! Extension operators (ln/exp) and the interval-arithmetic estimator.
//!
//! The paper's §IV-D argues the derivable-QoI theory "can extend to new
//! operators with derivable error control"; this example exercises that
//! extensibility end to end on a combustion-flavoured workload: an
//! Arrhenius-style reaction rate `c · e^{−Ea/T}` (exp ∘ radical — *not*
//! expressible with Table II alone) and a log-concentration `ln(1 + c)`,
//! both written as plain text the way an analysis config would carry them.
//! The same requests are then served by the generic interval-arithmetic
//! estimator to show the two machineries honour the same guarantee.
//!
//! ```sh
//! cargo run --release --example arrhenius_extension
//! ```

use pqr::prelude::*;
use pqr::qoi::parse::parse;

fn main() -> Result<()> {
    // Synthetic flame-front fields: temperature (x0) and a species
    // concentration (x1).
    let n = 60_000;
    let temperature: Vec<f64> = (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            // a front at x = 0.4: cold reactants → hot products
            900.0 + 1100.0 / (1.0 + (-40.0 * (x - 0.4)).exp()) + 30.0 * (x * 130.0).sin()
        })
        .collect();
    let concentration: Vec<f64> = (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            // reactant consumed across the front
            0.12 * (1.0 - 1.0 / (1.0 + (-40.0 * (x - 0.4)).exp())) + 0.01 * (x * 57.0).cos().abs()
        })
        .collect();

    // radical(x0, 0) is 1/T (Theorem 3), so the Arrhenius exponent −Ea/T
    // composes as exp(0 − Ea·(1/T)) with Ea = 2000 K.
    let rate = parse("x1 * exp(0 - 2000 * radical(x0, 0))")?;
    let log_c = parse("ln(poly(x1, 1, 1))")?; // ln(1 + c)
    println!("parsed rate  = {rate}");
    println!("parsed log_c = {log_c}");

    let build = |engine: EngineConfig| -> Result<Archive> {
        ArchiveBuilder::new(&[n])
            .field("T", temperature.clone())
            .field("c", concentration.clone())
            .qoi("rate", rate.clone())
            .qoi("log_c", log_c.clone())
            .engine_config(engine)
            .build()
    };

    let estimators = [
        ("theorem (§IV + ln/exp)", EngineConfig::default()),
        (
            "interval arithmetic",
            EngineConfig {
                bound_config: BoundConfig {
                    estimator: pqr::qoi::bounds::Estimator::Interval,
                    ..Default::default()
                },
                ..Default::default()
            },
        ),
    ];

    for (label, cfg) in estimators {
        let archive = build(cfg)?;
        let mut session = archive.session()?;
        let report = session.request_many(&[("rate", 1e-5), ("log_c", 1e-5)])?;
        println!(
            "\n{label}: satisfied={} bitrate={:.3} ({} B fetched)",
            report.satisfied, report.bitrate, report.total_fetched
        );
        assert!(report.satisfied);

        // Verify the guarantee against ground truth for both QoIs.
        for (name, expr) in [("rate", &rate), ("log_c", &log_c)] {
            let truth: Vec<f64> = temperature
                .iter()
                .zip(&concentration)
                .map(|(&t, &c)| expr.eval(&[t, c]))
                .collect();
            let derived = session.qoi_values(name)?;
            let actual = stats::max_abs_diff(&truth, &derived);
            let range = stats::value_range(&truth);
            println!(
                "  {name}: actual relative error {:.3e} ≤ 1e-5",
                actual / range
            );
            assert!(actual / range <= 1e-5);
        }
    }

    println!("\nboth estimators honour the guarantee on operators beyond Table II");
    Ok(())
}
