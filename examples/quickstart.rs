//! Quickstart: archive a field, retrieve it under a QoI tolerance.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pqr::prelude::*;

fn main() -> Result<()> {
    // A smooth synthetic field standing in for simulation output.
    let n = 100_000;
    let temperature: Vec<f64> = (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            300.0 + 25.0 * (x * 9.0).sin() + 4.0 * (x * 71.0).cos()
        })
        .collect();

    // Archive side: refactor once, register the QoI the analysis derives.
    // Here the analysis consumes 1/T (a radical QoI, Theorem 3).
    let archive = ArchiveBuilder::new(&[n])
        .field("T", temperature.clone())
        .qoi("invT", QoiExpr::var(0).radical(0.0))
        .scheme(Scheme::PmgardHb)
        .build()?;

    println!(
        "archived {} points: {} B (raw {} B)",
        n,
        archive.refactored().total_bytes(),
        archive.refactored().raw_bytes()
    );

    // Retrieval side: progressively tighter requests reuse earlier bytes.
    let mut session = archive.session()?;
    println!(
        "\n{:>10} {:>12} {:>14} {:>12}",
        "tol(rel)", "satisfied", "bytes so far", "bitrate"
    );
    for tol in [1e-2, 1e-4, 1e-6] {
        let report = session.request("invT", tol)?;
        println!(
            "{:>10.0e} {:>12} {:>14} {:>12.3}",
            tol, report.satisfied, report.total_fetched, report.bitrate
        );
    }

    // The guarantee: actual QoI error ≤ estimated ≤ tolerance.
    let truth: Vec<f64> = temperature.iter().map(|t| 1.0 / t).collect();
    let derived = session.qoi_values("invT")?;
    let actual = stats::max_abs_diff(&truth, &derived);
    let range = stats::value_range(&truth);
    println!(
        "\nactual relative QoI error: {:.3e} (tolerance was 1e-6)",
        actual / range
    );
    assert!(actual / range <= 1e-6);

    // And we moved far fewer bytes than the raw field.
    let saved =
        100.0 * (1.0 - session.total_fetched() as f64 / archive.refactored().raw_bytes() as f64);
    println!(
        "moved {} B — {:.1}% less than raw",
        session.total_fetched(),
        saved
    );

    // Several QoIs deriving from the same field? Batch them in one
    // request: T is fetched once for both targets, each certified
    // separately in the per-target report.
    let archive = ArchiveBuilder::new(&[n])
        .field("T", temperature)
        .qoi("invT", QoiExpr::var(0).radical(0.0))
        .qoi("lnT", QoiExpr::var(0).ln())
        .scheme(Scheme::PmgardHb)
        .build()?;
    let mut session = archive.session()?;
    let report = session.execute(&RetrievalRequest::new().qoi("invT", 1e-5).qoi("lnT", 1e-4))?;
    println!("\nbatched multi-QoI request (invT @ 1e-5, lnT @ 1e-4):");
    for t in &report.targets {
        println!(
            "  {:<6} satisfied={} est err {:.3e} (tol {:.3e})",
            t.name, t.satisfied, t.max_est_error, t.tol_abs
        );
    }
    println!(
        "  shared-fragment savings: {} B (T scheduled once for both targets)",
        report.shared_bytes_saved
    );
    assert!(report.satisfied);
    Ok(())
}
