//! Custom QoIs from text: the expression grammar in action.
//!
//! Analyses rarely want to write Rust to describe a quantity of interest;
//! this example archives a 2-field dataset and retrieves three QoIs parsed
//! from strings, including the paper's decomposition trick for fractional
//! powers (`u^1.5 = sqrt(u^3)`).
//!
//! ```sh
//! cargo run --release --example custom_qoi
//! ```

use pqr::prelude::*;
use pqr::qoi::parse::parse;

fn main() -> Result<()> {
    let n = 50_000;
    // density and temperature fields
    let rho: Vec<f64> = (0..n)
        .map(|i| 1.2 + 0.1 * (i as f64 * 0.003).sin())
        .collect();
    let temp: Vec<f64> = (0..n)
        .map(|i| 300.0 + 20.0 * (i as f64 * 0.001).cos())
        .collect();

    // QoIs straight from text — x0 = rho, x1 = T
    let qois = [
        ("ideal_gas_p", "287.1 * x0 * x1"),
        (
            "sutherland",
            "1.716e-5 * sqrt((x1 / 273.15)^3) * 383.55 / (x1 + 110.4)",
        ),
        ("buoyancy", "9.81 * (1.2 - x0) / 1.2"),
    ];

    let mut builder = ArchiveBuilder::new(&[n])
        .field("rho", rho.clone())
        .field("T", temp.clone());
    for (name, text) in qois {
        let expr = parse(text)?;
        println!("{name}: {expr}");
        builder = builder.qoi(name, expr);
    }
    let archive = builder.scheme(Scheme::PmgardHb).build()?;

    let mut session = archive.session()?;
    println!(
        "\n{:>12} {:>10} {:>12} {:>12}",
        "qoi", "tol", "bytes", "est err"
    );
    for (name, _) in qois {
        let r = session.request(name, 1e-5)?;
        assert!(r.satisfied);
        println!(
            "{:>12} {:>10.0e} {:>12} {:>12.2e}",
            name, 1e-5, r.total_fetched, r.max_est_errors[0]
        );
    }

    // verify one against ground truth computed directly
    let truth: Vec<f64> = rho.iter().zip(&temp).map(|(r, t)| 287.1 * r * t).collect();
    let derived = session.qoi_values("ideal_gas_p")?;
    let rel = stats::rel_linf(&truth, &derived);
    println!("\nideal_gas_p actual relative error: {rel:.2e} (≤ 1e-5 guaranteed)");
    assert!(rel <= 1e-5);
    Ok(())
}
