//! S3D combustion: molar-concentration product QoIs on flame-front data.
//!
//! The paper's S3D experiment (§VI-A) preserves products `xᵢ·xⱼ` of species
//! concentrations — the intermediates of reaction rates of progress, e.g.
//! `x₁x₃` for `H + O₂ ⇌ O + OH`. This example archives the 8-species
//! stand-in and retrieves all four Fig. 6 products at tight tolerances.
//!
//! ```sh
//! cargo run --release --example s3d_combustion
//! ```

use pqr::datagen::s3d::{self, S3dConfig, FIELD_NAMES, PRODUCT_PAIRS};
use pqr::prelude::*;

fn main() -> Result<()> {
    let cfg = S3dConfig::small();
    let data = s3d::generate(&cfg);
    println!(
        "S3D stand-in: {:?} grid, {} species",
        data.dims,
        data.fields.len()
    );

    let mut builder = ArchiveBuilder::new(&data.dims).scheme(Scheme::Psz3Delta);
    for (name, field) in &data.fields {
        builder = builder.field(name, field.clone());
    }
    let mut names = Vec::new();
    for (a, b) in PRODUCT_PAIRS {
        let name = format!("{}*{}", FIELD_NAMES[a], FIELD_NAMES[b]);
        builder = builder.qoi(&name, species_product(a, b));
        names.push(name);
    }
    let archive = builder.build()?;

    let mut session = archive.session()?;
    println!(
        "\n{:>12} {:>10} {:>12} {:>10}",
        "product", "tol", "bytes", "est err"
    );
    for tol in [1e-3, 1e-6] {
        for name in &names {
            let r = session.request(name, tol)?;
            assert!(r.satisfied);
            println!(
                "{:>12} {:>10.0e} {:>12} {:>10.2e}",
                name, tol, r.total_fetched, r.max_est_errors[0]
            );
        }
    }

    // Spot-verify one product against ground truth.
    let (a, b) = PRODUCT_PAIRS[0];
    let truth: Vec<f64> = data.fields[a]
        .1
        .iter()
        .zip(&data.fields[b].1)
        .map(|(x, y)| x * y)
        .collect();
    let derived = session.qoi_values(&names[0])?;
    let rel = stats::rel_linf(&truth, &derived);
    println!(
        "\n{}: actual relative error {:.2e} (≤ 1e-6 guaranteed)",
        names[0], rel
    );
    assert!(rel <= 1e-6);

    // Beyond the products: the full rate of progress `k_f·x₁x₃ − k_r·x₄x₅`
    // for H + O₂ ⇌ O + OH, with Arrhenius rate constants over a temperature
    // field — the quantity the paper's intermediates feed into, expressible
    // here thanks to the exp extension operator (§IV-D).
    let n: usize = data.dims.iter().product();
    let h2 = &data.fields[0].1;
    let h2_max = h2.iter().cloned().fold(f64::MIN, f64::max);
    let temperature: Vec<f64> = h2
        .iter()
        .map(|&c| 800.0 + 1400.0 * (1.0 - c / h2_max)) // reactant-depleted ⇒ hot
        .collect();

    let mut rb = ArchiveBuilder::new(&data.dims).scheme(Scheme::PmgardHb);
    rb = rb.field("T", temperature.clone());
    for (name, field) in &data.fields {
        rb = rb.field(name, field.clone());
    }
    // vars: 0 = T, then the 8 species shifted by one. FIELD_NAMES has
    // H at 3 and O2 at 1 (reactants), O at 4 and OH at 5 (products).
    let rop = rate_of_progress(
        0,
        &[1 + 3, 1 + 1],
        &[1 + 4, 1 + 5],
        3.5e3,
        8000.0,
        1.2e3,
        4000.0,
    );
    let rop_archive = rb.qoi("rop", rop.clone()).build()?;
    let mut rop_session = rop_archive.session()?;
    let r = rop_session.request("rop", 1e-5)?;
    assert!(r.satisfied);

    let mut inputs = vec![temperature];
    for (_, f) in &data.fields {
        inputs.push(f.clone());
    }
    let truth: Vec<f64> = (0..n)
        .map(|i| {
            let point: Vec<f64> = inputs.iter().map(|f| f[i]).collect();
            rop.eval(&point)
        })
        .collect();
    let derived = rop_session.qoi_values("rop")?;
    let rel = stats::rel_linf(&truth, &derived);
    println!(
        "rate of progress (H + O2 <=> O + OH): bitrate {:.3}, actual rel err {:.2e} (≤ 1e-5)",
        r.bitrate, rel
    );
    assert!(rel <= 1e-5);

    // Species concentrations span decades — the natural fit for point-wise
    // *relative* bounds (the log-transformation of the paper's ref. [33]):
    // one ρ protects every decade, where an absolute bound must cater to
    // the smallest magnitude and overpay on the largest.
    let species = &data.fields[3].1; // H: small radical concentrations
    let comp = SzCompressor::default();
    let rho = 1e-4;
    let pw = comp.compress_pw_rel(species, &data.dims, rho)?;
    let smallest = species
        .iter()
        .filter(|v| **v != 0.0)
        .map(|v| v.abs())
        .fold(f64::INFINITY, f64::min);
    let abs = comp.compress(species, &data.dims, rho * smallest)?;
    println!(
        "\nH species, pw-rel ρ=1e-4: {} B vs equivalent absolute bound: {} B ({:.1}x)",
        pw.len(),
        abs.len(),
        abs.len() as f64 / pw.len() as f64
    );
    let (rec, _, _) = comp.decompress_pw_rel(&pw)?;
    let worst = species
        .iter()
        .zip(&rec)
        .filter(|(o, _)| **o != 0.0)
        .map(|(o, r)| (o - r).abs() / o.abs())
        .fold(0.0f64, f64::max);
    println!("worst point-wise relative error: {worst:.2e} (≤ {rho:.0e} guaranteed)");
    assert!(worst <= rho);
    Ok(())
}
