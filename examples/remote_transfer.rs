//! Remote retrieval: the §VI-D Globus experiment in miniature.
//!
//! 96 blocks of GE-large-like data rest in a remote store; 96 workers run
//! QoI-preserving retrieval (VTOT at a chosen tolerance) and the fetched
//! bytes ride a simulated MCC→Anvil pipe. Compare against shipping the raw
//! fields.
//!
//! ```sh
//! cargo run --release --example remote_transfer
//! ```

use pqr::datagen::ge::{self, GeConfig};
use pqr::prelude::*;
use pqr::transfer::pipeline::baseline_transfer_secs;

fn main() -> Result<()> {
    // scaled-down GE-large: 96 blocks (full scale via GeConfig::large_paper())
    let cfg = GeConfig::large().with_block_len(10_000);
    let raw_blocks = ge::generate(&cfg);
    println!("GE-large stand-in: {} blocks", raw_blocks.len());
    // The dataset is ~200× smaller than the paper's 4.67 GB, so the pipe's
    // *fixed* costs (session latency, per-request overhead) are scaled by
    // the same factor — otherwise latency would swamp the bandwidth term
    // and hide the bytes-moved comparison the experiment is about.
    let scale = (96.0 * 10_000.0 * 3.0 * 8.0) / 4.67e9;
    let network = {
        let mut n = NetworkModel::globus_mcc_to_anvil();
        n.latency_s *= scale;
        n.per_request_overhead_s *= scale;
        n
    };

    // archive the three velocity fields per block (the paper's 3-variable,
    // 4.67 GB transfer subset), with the wall mask
    let vel = ["VelocityX", "VelocityY", "VelocityZ"];
    let mut ranges = Vec::new();
    let refactored: Vec<RefactoredDataset> = raw_blocks
        .iter()
        .map(|b| {
            let mut ds = Dataset::new(&b.dims);
            for name in vel {
                ds.add_field(name, b.field(name).unwrap().to_vec()).unwrap();
            }
            ranges.push(ds.qoi_range(&velocity_magnitude(0, 3)).unwrap());
            let mut rd = ds.refactor(Scheme::PmgardHb).unwrap();
            rd.set_mask(ds.zero_mask(&[0, 1, 2])).unwrap();
            rd
        })
        .collect();
    let store = RemoteStore::new(refactored);

    let cfg = PipelineConfig {
        workers: 96,
        network,
        ..Default::default()
    };
    let baseline = baseline_transfer_secs(&store, &cfg, 3);
    println!(
        "baseline (raw {} MB): {:.2} s\n",
        store.raw_bytes() / 1_000_000,
        baseline
    );

    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "tol", "bytes", "retrieval s", "transfer s", "wire speedup"
    );
    for i in 1..=5 {
        let tol = 10f64.powi(-i);
        store.reset_counters();
        let result = run_pipeline(&store, &cfg, |b| {
            vec![QoiSpec::with_range(
                "VTOT",
                velocity_magnitude(0, 3),
                tol,
                ranges[b],
            )]
        })?;
        assert!(result.all_satisfied());
        println!(
            "{:>10.0e} {:>12} {:>12.3} {:>12.3} {:>11.2}x",
            tol,
            result.total_bytes,
            result.retrieval_secs,
            result.transfer_secs,
            baseline / result.transfer_secs
        );
    }
    println!(
        "\n(wire speedup = simulated transfer vs the raw baseline; the paper's\n 2.02× at τ=1e-5 includes retrieval compute at 4.67 GB scale — run the\n fig9 bench for the full Fig. 9 reproduction)"
    );
    Ok(())
}
