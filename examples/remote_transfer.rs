//! Remote retrieval: the §VI-D Globus experiment in miniature.
//!
//! 96 blocks of GE-large-like data rest in a remote store; 96 workers run
//! QoI-preserving retrieval (VTOT at a chosen tolerance) and the fetched
//! bytes ride a simulated MCC→Anvil pipe. Compare against shipping the raw
//! fields.
//!
//! ```sh
//! cargo run --release --example remote_transfer
//! ```

use pqr::datagen::ge::{self, GeConfig};
use pqr::prelude::*;
use pqr::transfer::pipeline::baseline_transfer_secs;

fn main() -> Result<()> {
    // scaled-down GE-large: 96 blocks (full scale via GeConfig::large_paper())
    let cfg = GeConfig::large().with_block_len(10_000);
    let raw_blocks = ge::generate(&cfg);
    println!("GE-large stand-in: {} blocks", raw_blocks.len());
    // The dataset is ~200× smaller than the paper's 4.67 GB, so the pipe's
    // *fixed* costs (session latency, per-request overhead) are scaled by
    // the same factor — otherwise latency would swamp the bandwidth term
    // and hide the bytes-moved comparison the experiment is about.
    let scale = (96.0 * 10_000.0 * 3.0 * 8.0) / 4.67e9;
    let network = {
        let mut n = NetworkModel::globus_mcc_to_anvil();
        n.latency_s *= scale;
        n.per_request_overhead_s *= scale;
        n
    };

    // archive the three velocity fields per block (the paper's 3-variable,
    // 4.67 GB transfer subset), with the wall mask
    let vel = ["VelocityX", "VelocityY", "VelocityZ"];
    let mut ranges = Vec::new();
    let refactored: Vec<RefactoredDataset> = raw_blocks
        .iter()
        .map(|b| {
            let mut ds = Dataset::new(&b.dims);
            for name in vel {
                ds.add_field(name, b.field(name).unwrap().to_vec()).unwrap();
            }
            ranges.push(ds.qoi_range(&velocity_magnitude(0, 3)).unwrap());
            let mut rd = ds.refactor(Scheme::PmgardHb).unwrap();
            rd.set_mask(ds.zero_mask(&[0, 1, 2])).unwrap();
            rd
        })
        .collect();
    // retrieval-side fragment cache: progressive request series re-touch
    // the fragments earlier tolerances already moved
    let store = std::sync::Arc::new(RemoteStore::new(refactored).with_cache(256 << 20));

    let cfg = PipelineConfig {
        workers: 96,
        network,
        ..Default::default()
    };
    let baseline = baseline_transfer_secs(&store, &cfg, 3);
    println!(
        "baseline (raw {} MB): {:.2} s\n",
        store.raw_bytes() / 1_000_000,
        baseline
    );

    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "tol", "bytes", "retrieval s", "transfer s", "wire speedup", "hits", "misses"
    );
    let mut prev_hits = 0usize;
    for i in 1..=5 {
        let tol = 10f64.powi(-i);
        store.reset_counters();
        let result = run_pipeline(&store, &cfg, |b| {
            vec![QoiSpec::with_range(
                "VTOT",
                velocity_magnitude(0, 3),
                tol,
                ranges[b],
            )]
        })?;
        assert!(result.all_satisfied());
        let c = store.counters();
        // every fresh engine re-walks the fragments earlier tolerances
        // already moved; past the first arm the warm cache must serve them
        if i == 1 {
            assert_eq!(c.hits(), 0, "cold cache cannot hit");
        } else {
            assert!(
                c.hits() > prev_hits / 2,
                "warm cache should absorb refetches (hits {}, misses {})",
                c.hits(),
                c.misses()
            );
        }
        assert!(c.misses() > 0, "tighter arms always move new fragments");
        prev_hits = c.hits().max(prev_hits);
        println!(
            "{:>10.0e} {:>12} {:>12.3} {:>12.3} {:>11.2}x {:>8} {:>8}",
            tol,
            result.total_bytes,
            result.retrieval_secs,
            result.transfer_secs,
            baseline / result.transfer_secs,
            c.hits(),
            c.misses()
        );
    }
    println!(
        "\n(wire speedup = simulated transfer vs the raw baseline; hits are\n fragment fetches the LRU cache kept off the wire; the paper's 2.02×\n at τ=1e-5 includes retrieval compute at 4.67 GB scale — run the fig9\n bench for the full Fig. 9 reproduction)"
    );

    // --- batched vs per-fragment wire round-trips ------------------------
    // Same block, same tolerance, cold uncached store each arm:
    // per-fragment execution pays one round-trip per fragment, while
    // batched execution ships each refinement round's whole schedule in
    // one `read_many` round-trip.
    let probe = std::sync::Arc::new(RemoteStore::new(vec![store.block(0)?.clone()]));
    let probe_spec = vec![QoiSpec::with_range(
        "VTOT",
        velocity_magnitude(0, 3),
        1e-4,
        ranges[0],
    )];
    let run_arm = |batch_io: bool| -> Result<FetchCounters> {
        probe.reset_counters();
        let src = probe.block_source(0)?;
        let mut engine = RetrievalEngine::from_source(
            std::sync::Arc::new(src),
            EngineConfig {
                batch_io,
                parallel_scan: false,
                ..Default::default()
            },
        )?;
        let report = engine.retrieve(&probe_spec)?;
        assert!(report.satisfied);
        Ok(probe.counters())
    };
    let per_fragment = run_arm(false)?;
    let batched = run_arm(true)?;
    // identical fragments and bytes move either way...
    assert_eq!(batched.bytes, per_fragment.bytes);
    assert_eq!(batched.misses(), per_fragment.misses());
    // ...but the batched arm needs strictly fewer round-trips
    assert!(
        batched.round_trips() < per_fragment.round_trips(),
        "batched {} round-trips !< per-fragment {}",
        batched.round_trips(),
        per_fragment.round_trips()
    );
    println!(
        "\nround-trips for one block at τ=1e-4: per-fragment {} vs batched {} \
         ({} fragments, {} B either way)",
        per_fragment.round_trips(),
        batched.round_trips(),
        batched.misses(),
        batched.bytes
    );
    Ok(())
}
