//! Progressive analysis of hurricane structure: how little data does each
//! question need?
//!
//! Three analyses of increasing demand run against the same archive; each
//! pays only its own bytes (the motivating scenario of §I — one archive,
//! many fidelities):
//!
//! 1. "Where is the eye?"             — coarse VTOT, τ = 5%
//! 2. "How strong is the eyewall?"    — peak wind within 0.5%
//! 3. "Full wind field for a model"   — VTOT within 1e-5
//!
//! ```sh
//! cargo run --release --example hurricane_eye
//! ```

use pqr::datagen::hurricane::{self, HurricaneConfig};
use pqr::prelude::*;

fn main() -> Result<()> {
    let cfg = HurricaneConfig {
        dims: [10, 96, 96],
        ..HurricaneConfig::small()
    };
    let raw = hurricane::generate(&cfg);
    let [nz, ny, nx] = cfg.dims;
    println!("Hurricane stand-in: {nz}×{ny}×{nx}, 3 wind components");

    let mut builder = ArchiveBuilder::new(&raw.dims).scheme(Scheme::PmgardHb);
    for (name, data) in &raw.fields {
        builder = builder.field(name, data.clone());
    }
    let archive = builder.qoi("VTOT", velocity_magnitude(0, 3)).build()?;
    let raw_bytes = archive.refactored().raw_bytes();

    let truth = {
        let u = raw.field("U").unwrap();
        let v = raw.field("V").unwrap();
        let w = raw.field("W").unwrap();
        (0..u.len())
            .map(|j| (u[j] * u[j] + v[j] * v[j] + w[j] * w[j]).sqrt())
            .collect::<Vec<_>>()
    };
    let surface = &truth[..ny * nx]; // z = 0 slab
    let true_peak = argmax(surface);
    println!(
        "ground truth: eyewall peak {:.1} m/s at (y={}, x={})\n",
        surface[true_peak],
        true_peak / nx,
        true_peak % nx
    );

    let mut session = archive.session()?;

    // 1. locate the eye at 5% tolerance
    let r = session.request("VTOT", 5e-2)?;
    let approx = session.qoi_values("VTOT")?;
    let peak = argmax(&approx[..ny * nx]);
    println!(
        "Q1 locate eyewall   @ τ=5e-2 : {:>9} B ({:>5.1}% of raw) → peak at (y={}, x={})",
        r.total_fetched,
        100.0 * r.total_fetched as f64 / raw_bytes as f64,
        peak / nx,
        peak % nx
    );

    // 2. quantify the peak at 0.5%
    let r = session.request("VTOT", 5e-3)?;
    let approx = session.qoi_values("VTOT")?;
    let peak_v = approx[argmax(&approx[..ny * nx])];
    println!(
        "Q2 peak intensity   @ τ=5e-3 : {:>9} B ({:>5.1}% of raw) → peak {:.1} m/s (true {:.1})",
        r.total_fetched,
        100.0 * r.total_fetched as f64 / raw_bytes as f64,
        peak_v,
        surface[true_peak]
    );

    // 3. model-grade field at 1e-5
    let r = session.request("VTOT", 1e-5)?;
    let approx = session.qoi_values("VTOT")?;
    let worst = stats::max_abs_diff(&truth, &approx);
    println!(
        "Q3 model-grade field@ τ=1e-5 : {:>9} B ({:>5.1}% of raw) → max err {:.2e} (≤ {:.2e} guaranteed)",
        r.total_fetched,
        100.0 * r.total_fetched as f64 / raw_bytes as f64,
        worst,
        r.max_est_errors[0]
    );
    assert!(worst <= r.max_est_errors[0]);
    println!("\neach question paid only its increment — the archive was refactored once.");

    // 4. Region-of-interest follow-up: once the eye is located, a zoomed
    // analysis only needs the surrounding window. The PZFP representation
    // offers block-level random access: only the 4³ blocks under the window
    // are decoded, composing with whatever precision has been fetched.
    let u = raw.field("U").unwrap();
    let stream = ZfpRefactorer::new().refactor(u, &raw.dims)?;
    let mut zr = stream.reader();
    zr.refine_to(1e-3 * stats::value_range(u))?;
    let (py, px) = (true_peak / nx, true_peak % nx);
    let lo = [0, py.saturating_sub(8), px.saturating_sub(8)];
    let hi = [nz.min(4), (py + 8).min(ny), (px + 8).min(nx)];
    let window = zr.reconstruct_region(&lo, &hi)?;
    println!(
        "Q4 eye close-up (PZFP region {lo:?}..{hi:?}): {} samples decoded from {} fetched B, bound {:.2e}",
        window.len(),
        zr.total_fetched(),
        zr.guaranteed_bound()
    );
    // spot-check the window against the raw data under the global bound
    let mut worst = 0.0f64;
    let wdims: Vec<usize> = (0..3).map(|a| hi[a] - lo[a]).collect();
    for (k, &v) in window.iter().enumerate() {
        let c2 = k % wdims[2];
        let c1 = (k / wdims[2]) % wdims[1];
        let c0 = k / (wdims[1] * wdims[2]);
        let idx = (lo[0] + c0) * ny * nx + (lo[1] + c1) * nx + (lo[2] + c2);
        worst = worst.max((v - u[idx]).abs());
    }
    assert!(worst <= zr.guaranteed_bound());
    Ok(())
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}
