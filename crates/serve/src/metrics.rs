//! Server-side metrics: lock-free counters updated on every frame, plus
//! the snapshot type the `stats` frame ships to clients.
//!
//! The per-request layer already reports queue wait and store decode/reuse
//! deltas on each [`PlanReport`](pqr_progressive::plan::PlanReport); this
//! module aggregates the server view — admission sheds, decode-pool sheds,
//! wire traffic, mid-request disconnects — and folds in the per-dataset
//! [`StoreStats`]/[`SourceStats`] so one `stats` round-trip shows both the
//! contention picture and the decode-sharing picture.

use pqr_progressive::fragstore::SourceStats;
use pqr_progressive::store::StoreStats;
use pqr_util::byteio::{ByteReader, ByteWriter};
use pqr_util::error::Result;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free server counters (one instance per [`Server`](crate::Server),
/// shared by the accept loop and every worker).
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Connections accepted into the worker pool.
    pub connections: AtomicU64,
    /// Frames processed (any kind).
    pub requests: AtomicU64,
    /// Retrieve frames executed (admitted past the decode gate).
    pub retrieves: AtomicU64,
    /// Error frames sent.
    pub errors: AtomicU64,
    /// Connections shed at accept because the pending queue was full.
    pub shed_admission: AtomicU64,
    /// Retrieves shed because the decode pool stayed saturated past the
    /// configured wait.
    pub shed_busy: AtomicU64,
    /// Request bytes read off the wire (headers included).
    pub bytes_in: AtomicU64,
    /// Response bytes written to the wire (headers included).
    pub bytes_out: AtomicU64,
    /// Total milliseconds retrieves waited for a decode permit.
    pub queue_wait_ms_total: AtomicU64,
    /// Worst single decode-permit wait observed, in milliseconds.
    pub queue_wait_ms_max: AtomicU64,
    /// Connections that died mid-request (the peer vanished between a
    /// request frame and its reply).
    pub disconnects_mid_request: AtomicU64,
    /// Coalesced rounds executed: batches of ≥ 2 overlapping retrieves
    /// whose union plan ran once through the shared store.
    pub coalesced_rounds: AtomicU64,
    /// Retrieves served as members of a coalesced round (the union ran on
    /// their behalf; their own execution was a permit-free reply
    /// projection from the shared epoch state).
    pub coalesced_requests: AtomicU64,
    /// Coalesced rounds that fell back to individual gated execution
    /// (union error or no decode permit within the wait).
    pub coalesce_fallbacks: AtomicU64,
    /// Total milliseconds retrieves spent executing (permit grant →
    /// reply built) — `service_ms_total / retrieves_completed` is the
    /// observed per-request service time the dynamic `Busy` retry-after
    /// hint derives from.
    pub service_ms_total: AtomicU64,
    /// Retrieves that completed execution (the denominator of the
    /// observed service time). Not serialized — server-local.
    pub retrieves_completed: AtomicU64,
    /// Retrieves currently waiting for (or holding) a decode permit — the
    /// live queue-depth gauge behind the dynamic retry-after hint. Not
    /// serialized — server-local.
    pub decode_inflight: AtomicU64,
}

impl ServeStats {
    /// Bumps a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds to a counter.
    pub fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    /// Records one decode-permit wait.
    pub fn record_queue_wait(&self, ms: u64) {
        self.queue_wait_ms_total.fetch_add(ms, Ordering::Relaxed);
        self.queue_wait_ms_max.fetch_max(ms, Ordering::Relaxed);
    }

    /// Records one completed retrieve's service time.
    pub fn record_service(&self, ms: u64) {
        self.service_ms_total.fetch_add(ms, Ordering::Relaxed);
        self.retrieves_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// The retry-after hint for a `Busy` reply right now: queue depth ×
    /// observed per-request service time over the pool width (see
    /// [`busy_hint`]), falling back to `fallback` until a service time has
    /// been observed.
    pub fn busy_hint_now(&self, extra_waiting: u64, permits: u64, fallback: u64) -> u64 {
        busy_hint(
            self.decode_inflight.load(Ordering::Relaxed) + extra_waiting,
            self.service_ms_total.load(Ordering::Relaxed),
            self.retrieves_completed.load(Ordering::Relaxed),
            permits,
            fallback,
        )
    }

    /// A point-in-time copy of the counters (dataset rows added by the
    /// server, which owns the registry).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            retrieves: self.retrieves.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed_admission: self.shed_admission.load(Ordering::Relaxed),
            shed_busy: self.shed_busy.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            queue_wait_ms_total: self.queue_wait_ms_total.load(Ordering::Relaxed),
            queue_wait_ms_max: self.queue_wait_ms_max.load(Ordering::Relaxed),
            disconnects_mid_request: self.disconnects_mid_request.load(Ordering::Relaxed),
            coalesced_rounds: self.coalesced_rounds.load(Ordering::Relaxed),
            coalesced_requests: self.coalesced_requests.load(Ordering::Relaxed),
            coalesce_fallbacks: self.coalesce_fallbacks.load(Ordering::Relaxed),
            service_ms_total: self.service_ms_total.load(Ordering::Relaxed),
            datasets: Vec::new(),
        }
    }
}

/// The dynamic retry-after hint for a `Busy` reply: how long the queue in
/// front of the caller should take to drain, given the observed per-request
/// service time.
///
/// `waiting` is the number of retrieves ahead (in flight plus queued),
/// `service_ms_total / served` the observed mean service time, and
/// `permits` the decode-pool width draining them. Until the server has
/// observed at least one completed retrieve (or when the pool width is
/// zero), there is nothing to derive from and the configured `fallback`
/// is returned verbatim.
pub fn busy_hint(
    waiting: u64,
    service_ms_total: u64,
    served: u64,
    permits: u64,
    fallback: u64,
) -> u64 {
    if served == 0 || service_ms_total == 0 || permits == 0 {
        return fallback;
    }
    let mean_ms = service_ms_total.div_ceil(served);
    // ceil(waiting / permits) rounds of mean service time, at least one —
    // the caller always waits out the request currently holding a permit.
    let rounds = waiting.div_ceil(permits).max(1);
    rounds.saturating_mul(mean_ms).max(1)
}

/// Per-dataset row of a [`StatsSnapshot`]: the decode-sharing and source
/// counters of one registered [`DatasetService`](pqr_core::archive::DatasetService).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStats {
    /// Registry name.
    pub name: String,
    /// Shared-store tallies (decode-once proof).
    pub store: StoreStats,
    /// Fragment-source tallies (across all sessions of the service).
    pub source: SourceStats,
}

/// What a `stats` frame returns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Frames processed.
    pub requests: u64,
    /// Retrieves executed.
    pub retrieves: u64,
    /// Error replies sent.
    pub errors: u64,
    /// Connections shed at admission.
    pub shed_admission: u64,
    /// Retrieves shed at the decode gate.
    pub shed_busy: u64,
    /// Wire bytes in.
    pub bytes_in: u64,
    /// Wire bytes out.
    pub bytes_out: u64,
    /// Total decode-permit wait.
    pub queue_wait_ms_total: u64,
    /// Worst decode-permit wait.
    pub queue_wait_ms_max: u64,
    /// Peers that vanished mid-request.
    pub disconnects_mid_request: u64,
    /// Coalesced union rounds executed.
    pub coalesced_rounds: u64,
    /// Retrieves served via a coalesced round.
    pub coalesced_requests: u64,
    /// Coalesced rounds that fell back to individual execution.
    pub coalesce_fallbacks: u64,
    /// Total retrieve execution time (permit grant → reply built).
    pub service_ms_total: u64,
    /// Per-dataset store/source rows.
    pub datasets: Vec<DatasetStats>,
}

impl StatsSnapshot {
    /// Serialises the snapshot for the `stats` reply frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        for v in [
            self.connections,
            self.requests,
            self.retrieves,
            self.errors,
            self.shed_admission,
            self.shed_busy,
            self.bytes_in,
            self.bytes_out,
            self.queue_wait_ms_total,
            self.queue_wait_ms_max,
            self.disconnects_mid_request,
            self.coalesced_rounds,
            self.coalesced_requests,
            self.coalesce_fallbacks,
            self.service_ms_total,
        ] {
            w.put_u64(v);
        }
        w.put_u64(self.datasets.len() as u64);
        for d in &self.datasets {
            w.put_bytes(d.name.as_bytes());
            for v in [
                d.store.fragments_decoded,
                d.store.refine_advances,
                d.store.refine_reuses,
                d.store.adoptions,
                d.store.evictions,
                d.store.rehydration_decodes,
                d.store.rehydration_bytes,
                d.store.snapshot_publishes,
                d.store.epoch_short_circuits,
                d.store.plan_front_hits,
                d.store.plan_front_misses,
                d.store.resident_bytes,
                d.store.budget_bytes,
                d.store.recompose_passes,
                d.store.recon_cache_hits,
                d.store.reconstruct_nanos,
                d.source.fetches,
                d.source.fetched_bytes,
                d.source.cache_hits,
                d.source.cache_misses,
                d.source.read_ops,
                d.source.overlap_saved_ms,
            ] {
                w.put_u64(v);
            }
        }
        w.finish()
    }

    /// Parses a snapshot (count-checked before allocation).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let mut scalars = [0u64; 15];
        for s in &mut scalars {
            *s = r.get_u64()?;
        }
        let raw = r.get_u64()? as usize;
        // each dataset row costs at least a name prefix + 22 counters
        let n = r.check_count(raw, 8 + 176)?;
        let mut datasets = Vec::with_capacity(n);
        for _ in 0..n {
            let name = crate::wire::get_name(&mut r)?;
            let mut c = [0u64; 22];
            for v in &mut c {
                *v = r.get_u64()?;
            }
            datasets.push(DatasetStats {
                name,
                store: StoreStats {
                    fragments_decoded: c[0],
                    refine_advances: c[1],
                    refine_reuses: c[2],
                    adoptions: c[3],
                    evictions: c[4],
                    rehydration_decodes: c[5],
                    rehydration_bytes: c[6],
                    snapshot_publishes: c[7],
                    epoch_short_circuits: c[8],
                    plan_front_hits: c[9],
                    plan_front_misses: c[10],
                    resident_bytes: c[11],
                    budget_bytes: c[12],
                    recompose_passes: c[13],
                    recon_cache_hits: c[14],
                    reconstruct_nanos: c[15],
                },
                source: SourceStats {
                    fetches: c[16],
                    fetched_bytes: c[17],
                    cache_hits: c[18],
                    cache_misses: c[19],
                    read_ops: c[20],
                    overlap_saved_ms: c[21],
                },
            });
        }
        Ok(Self {
            connections: scalars[0],
            requests: scalars[1],
            retrieves: scalars[2],
            errors: scalars[3],
            shed_admission: scalars[4],
            shed_busy: scalars[5],
            bytes_in: scalars[6],
            bytes_out: scalars[7],
            queue_wait_ms_total: scalars[8],
            queue_wait_ms_max: scalars[9],
            disconnects_mid_request: scalars[10],
            coalesced_rounds: scalars[11],
            coalesced_requests: scalars[12],
            coalesce_fallbacks: scalars[13],
            service_ms_total: scalars[14],
            datasets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrips_with_dataset_rows() {
        let snap = StatsSnapshot {
            connections: 3,
            requests: 17,
            retrieves: 9,
            errors: 1,
            shed_admission: 2,
            shed_busy: 4,
            bytes_in: 1234,
            bytes_out: 56789,
            queue_wait_ms_total: 88,
            queue_wait_ms_max: 40,
            disconnects_mid_request: 1,
            coalesced_rounds: 5,
            coalesced_requests: 14,
            coalesce_fallbacks: 1,
            service_ms_total: 260,
            datasets: vec![DatasetStats {
                name: "ge".into(),
                store: StoreStats {
                    fragments_decoded: 10,
                    refine_advances: 5,
                    refine_reuses: 20,
                    adoptions: 7,
                    evictions: 2,
                    rehydration_decodes: 6,
                    rehydration_bytes: 2048,
                    snapshot_publishes: 11,
                    epoch_short_circuits: 42,
                    plan_front_hits: 9,
                    plan_front_misses: 3,
                    resident_bytes: 1 << 20,
                    budget_bytes: 4 << 20,
                    recompose_passes: 64,
                    recon_cache_hits: 13,
                    reconstruct_nanos: 1_500_000,
                },
                source: SourceStats {
                    fetches: 100,
                    fetched_bytes: 4096,
                    cache_hits: 1,
                    cache_misses: 99,
                    read_ops: 12,
                    overlap_saved_ms: 3,
                },
            }],
        };
        assert_eq!(StatsSnapshot::from_bytes(&snap.to_bytes()).unwrap(), snap);
    }

    #[test]
    fn counters_accumulate_and_max_tracks() {
        let s = ServeStats::default();
        ServeStats::inc(&s.retrieves);
        ServeStats::add(&s.bytes_out, 100);
        s.record_queue_wait(10);
        s.record_queue_wait(30);
        s.record_queue_wait(20);
        let snap = s.snapshot();
        assert_eq!(snap.retrieves, 1);
        assert_eq!(snap.bytes_out, 100);
        assert_eq!(snap.queue_wait_ms_total, 60);
        assert_eq!(snap.queue_wait_ms_max, 30);
    }

    #[test]
    fn busy_hint_falls_back_without_observations() {
        // no completed retrieve yet: the configured fallback must come back
        // verbatim, whatever the queue depth looks like
        assert_eq!(busy_hint(10, 0, 0, 4, 123), 123);
        assert_eq!(busy_hint(0, 0, 0, 4, 321), 321);
        // degenerate pool width also falls back
        assert_eq!(busy_hint(10, 500, 5, 0, 200), 200);
    }

    #[test]
    fn busy_hint_shrinks_as_load_drains() {
        // mean service time 50 ms, pool of 2 permits; the hint must shrink
        // monotonically as the queue in front of the caller drains
        let at = |waiting| busy_hint(waiting, 500, 10, 2, 200);
        let deep = at(8); // 4 rounds -> 200 ms
        let mid = at(4); // 2 rounds -> 100 ms
        let low = at(1); // 1 round  ->  50 ms
        assert_eq!((deep, mid, low), (200, 100, 50));
        assert!(deep > mid && mid > low);
        // never zero: a caller always waits out the current permit holder
        assert_eq!(busy_hint(0, 500, 10, 2, 200), 50);
    }

    #[test]
    fn busy_hint_now_tracks_recorded_service() {
        let s = ServeStats::default();
        // nothing observed -> exact fallback
        assert_eq!(s.busy_hint_now(3, 4, 123), 123);
        s.record_service(40);
        s.record_service(60);
        s.decode_inflight.store(8, Ordering::Relaxed);
        // mean 50 ms, 8 in flight + 2 extra waiting over 4 permits
        assert_eq!(s.busy_hint_now(2, 4, 123), 150);
        s.decode_inflight.store(0, Ordering::Relaxed);
        assert_eq!(s.busy_hint_now(0, 4, 123), 50);
    }

    #[test]
    fn truncated_snapshot_is_an_error() {
        let snap = StatsSnapshot::default();
        let bytes = snap.to_bytes();
        assert!(StatsSnapshot::from_bytes(&bytes[..bytes.len() - 4]).is_err());
    }
}
