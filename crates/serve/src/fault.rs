//! Fault injection for the serving stack: a byte-stream wrapper that
//! truncates, delays, shortens or severs traffic, and a fragment-source
//! wrapper that fails or slows fetches on demand.
//!
//! The server's robustness claims — truncated frames produce clean error
//! replies, a client dying mid-retrieve leaves the shared
//! [`ProgressStore`](pqr_progressive::store::ProgressStore) serving
//! subsequent clients byte-identically, a saturated decode pool sheds
//! instead of queueing unboundedly — are only claims until traffic
//! actually misbehaves. These wrappers make the misbehaviour
//! deterministic, so the integration suite asserts the claims instead of
//! hoping.

use pqr_progressive::fragstore::{FragmentId, FragmentSource, Manifest, SourceStats};
use pqr_util::error::{PqrError, Result};
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A `Read + Write` wrapper that injects transport faults.
///
/// All knobs default to "healthy"; enable the ones a test needs. The
/// wrapper is deliberately transport-agnostic — production framing code
/// ([`pqr_transfer::wire`]) runs over it unchanged, which is the point.
pub struct FaultyStream<S> {
    inner: S,
    /// Total write bytes allowed through; anything beyond is silently
    /// swallowed (reported as written), so the peer sees a *truncated*
    /// frame followed by whatever the test does next (usually a drop).
    write_budget: Option<usize>,
    /// Read calls allowed before the stream reports a hard disconnect.
    reads_before_disconnect: Option<u64>,
    /// Cap on bytes returned per read call (exercises `read_exact` loops).
    max_read_chunk: Option<usize>,
    /// Sleep before every write (slow-writer simulation).
    write_delay: Option<Duration>,
    reads_done: u64,
    truncated: bool,
}

impl<S> FaultyStream<S> {
    /// Wraps a healthy stream; configure faults with the builder methods.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            write_budget: None,
            reads_before_disconnect: None,
            max_read_chunk: None,
            write_delay: None,
            reads_done: 0,
            truncated: false,
        }
    }

    /// Lets `n` write bytes through, then swallows the rest — the peer
    /// sees a truncated stream.
    pub fn truncate_writes_after(mut self, n: usize) -> Self {
        self.write_budget = Some(n);
        self
    }

    /// Reports a connection reset after `n` read calls.
    pub fn disconnect_after_reads(mut self, n: u64) -> Self {
        self.reads_before_disconnect = Some(n);
        self
    }

    /// Returns at most `n` bytes per read call.
    pub fn short_reads(mut self, n: usize) -> Self {
        self.max_read_chunk = Some(n.max(1));
        self
    }

    /// Sleeps before every write.
    pub fn delay_writes(mut self, d: Duration) -> Self {
        self.write_delay = Some(d);
        self
    }

    /// True once the write budget has swallowed at least one byte.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// The wrapped stream.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(limit) = self.reads_before_disconnect {
            if self.reads_done >= limit {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "injected disconnect",
                ));
            }
        }
        self.reads_done += 1;
        let cap = self.max_read_chunk.unwrap_or(buf.len()).min(buf.len());
        self.inner.read(&mut buf[..cap])
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(d) = self.write_delay {
            std::thread::sleep(d);
        }
        match &mut self.write_budget {
            None => self.inner.write(buf),
            Some(budget) => {
                if *budget == 0 {
                    // swallow: the caller believes the frame went out
                    self.truncated = true;
                    return Ok(buf.len());
                }
                let allowed = (*budget).min(buf.len());
                let wrote = self.inner.write(&buf[..allowed])?;
                *budget -= wrote;
                if wrote < buf.len() {
                    self.truncated = true;
                    // claim full success so the writer keeps going and the
                    // peer is left holding a half-frame
                    return Ok(buf.len());
                }
                Ok(wrote)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A [`FragmentSource`] wrapper that fails or delays fetches **on
/// command**.
///
/// [`FaultySource::new`] returns the source together with a
/// [`FaultSwitch`] the test keeps; the source moves into an `Archive` /
/// server registry while the switch flips failure and delay modes from
/// outside, at exact points in the scenario — warm the store up, *then*
/// fail the next fetch, *then* recover. That makes "failure mid-deepening
/// neither poisons the shared store nor corrupts later retrievals"
/// deterministically assertable.
pub struct FaultySource {
    inner: Arc<dyn FragmentSource>,
    state: Arc<FaultState>,
}

/// The remote control of a [`FaultySource`]. Cloneable; all clones steer
/// the same source.
#[derive(Clone)]
pub struct FaultSwitch {
    state: Arc<FaultState>,
}

#[derive(Default)]
struct FaultState {
    failing: std::sync::atomic::AtomicBool,
    delay_ms: AtomicU64,
    attempts: AtomicU64,
}

impl FaultSwitch {
    /// Makes every subsequent fetch fail with `CorruptStream` (`true`) or
    /// succeed again (`false`).
    pub fn set_failing(&self, failing: bool) {
        self.state.failing.store(failing, Ordering::Release);
    }

    /// Adds a fixed per-fetch delay (0 = none). Used to hold decode
    /// permits for a deterministic stretch in saturation tests.
    pub fn set_delay_ms(&self, ms: u64) {
        self.state.delay_ms.store(ms, Ordering::Release);
    }

    /// Fetches attempted so far (including failed ones), across all
    /// sessions of the wrapped source.
    pub fn attempts(&self) -> u64 {
        self.state.attempts.load(Ordering::Relaxed)
    }
}

impl FaultySource {
    /// Wraps a healthy source, returning it with its control switch.
    pub fn new(inner: Arc<dyn FragmentSource>) -> (Self, FaultSwitch) {
        let state = Arc::new(FaultState::default());
        (
            Self {
                inner,
                state: Arc::clone(&state),
            },
            FaultSwitch { state },
        )
    }
}

impl FragmentSource for FaultySource {
    fn manifest(&self) -> Result<Manifest> {
        self.inner.manifest()
    }

    fn fetch(&self, id: FragmentId) -> Result<Arc<Vec<u8>>> {
        let ordinal = self.state.attempts.fetch_add(1, Ordering::Relaxed);
        let delay = self.state.delay_ms.load(Ordering::Acquire);
        if delay > 0 {
            std::thread::sleep(Duration::from_millis(delay));
        }
        if self.state.failing.load(Ordering::Acquire) {
            return Err(PqrError::CorruptStream(format!(
                "injected fetch failure (attempt {ordinal})"
            )));
        }
        self.inner.fetch(id)
    }

    // read_many is left at the default per-fragment loop on purpose: every
    // fragment passes through the counted, fallible `fetch` above.

    fn stats(&self) -> SourceStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_budget_truncates_then_swallows() {
        let mut sink = Vec::new();
        {
            let mut s = FaultyStream::new(&mut sink).truncate_writes_after(5);
            s.write_all(b"0123456789").unwrap(); // claims success
            s.write_all(b"abc").unwrap();
            assert!(s.truncated());
        }
        assert_eq!(sink, b"01234");
    }

    #[test]
    fn disconnect_fires_after_the_budgeted_reads() {
        let data = [7u8; 100];
        let mut s = FaultyStream::new(&data[..]).disconnect_after_reads(2);
        let mut buf = [0u8; 10];
        assert!(s.read(&mut buf).is_ok());
        assert!(s.read(&mut buf).is_ok());
        let err = s.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn short_reads_still_deliver_everything_via_read_exact() {
        let data: Vec<u8> = (0..64).collect();
        let mut s = FaultyStream::new(&data[..]).short_reads(3);
        let mut buf = [0u8; 64];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf[..], &data[..]);
    }

    #[test]
    fn framing_survives_short_reads() {
        let mut wire_bytes = Vec::new();
        pqr_transfer::wire::write_frame(&mut wire_bytes, 42, b"payload").unwrap();
        let mut s = FaultyStream::new(&wire_bytes[..]).short_reads(2);
        let (kind, body, _) = pqr_transfer::wire::read_frame(&mut s).unwrap();
        assert_eq!(kind, 42);
        assert_eq!(body, b"payload");
    }

    #[test]
    fn fault_switch_flips_fail_and_recover() {
        use pqr_progressive::fragstore::InMemorySource;
        // a minimal real container to wrap
        let n = 64;
        let archive = pqr_core::archive::ArchiveBuilder::new(&[n])
            .field("u", (0..n).map(|i| i as f64).collect())
            .qoi("u2", pqr_qoi::QoiExpr::var(0).pow(2))
            .build()
            .unwrap();
        let src = Arc::new(InMemorySource::new(archive.to_bytes()).unwrap());
        let (faulty, switch) = FaultySource::new(src);
        let id = FragmentId { field: 0, index: 0 };
        assert!(faulty.fetch(id).is_ok());
        switch.set_failing(true);
        assert!(matches!(faulty.fetch(id), Err(PqrError::CorruptStream(_))));
        switch.set_failing(false);
        assert!(faulty.fetch(id).is_ok());
        assert_eq!(switch.attempts(), 3);
    }
}
