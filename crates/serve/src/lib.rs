//! # pqr-serve — a multi-tenant network serving layer over [`DatasetService`]
//!
//! The paper frames progressive retrieval as a client/server workflow:
//! requesters fetch *just enough* fragments over a real link, and the
//! storage side answers from refactored state (Fig. 1). Since PR 5 the
//! repo's sessions are owned, `Send`, and decode-shared through a
//! [`ProgressStore`](pqr_progressive::store::ProgressStore) — this crate
//! puts a socket in front of them:
//!
//! * a thread-pooled request server on [`std::net::TcpListener`]
//!   ([`server`]) speaking a hand-rolled length-prefixed binary protocol
//!   ([`wire`], framing from [`pqr_transfer::wire`]) — versioned frames
//!   for `open`/`retrieve`/`resume`/`stats`/`close`;
//! * a multi-dataset **registry** of [`DatasetService`] handles, so one
//!   server multiplexes archives and all clients of one dataset share its
//!   decode-once store;
//! * **admission control + load shedding**: a bounded accept queue and a
//!   decode-permit gate, both of which answer `Busy` (with a retry-after
//!   hint) instead of queueing unboundedly;
//! * **per-client byte/time budgets** riding the existing
//!   [`RetrievalRequest`] budget field — an exceeded byte budget returns a
//!   partial result *with its certified bound*, never an error;
//! * structured **metrics** ([`metrics`]): every request reports queue
//!   wait, store decode/reuse deltas and wire bytes, and the server
//!   aggregates shed counts and traffic for the `stats` frame;
//! * a **fault-injection harness** ([`fault`]) used by the test suite to
//!   prove that truncated frames, mid-retrieve disconnects and flaky
//!   sources produce clean error responses and never poison shared state.
//!
//! Protocol round-trips map onto the paper's algorithms: one `retrieve`
//! frame triggers one full Algorithm 1–4 refine→estimate→tighten run on
//! the server; the *client* never sees fragments, only certified QoI
//! values and bounds. See `DIVERGENCES.md` for the mapping.
//!
//! [`DatasetService`]: pqr_core::archive::DatasetService
//! [`RetrievalRequest`]: pqr_core::request::RetrievalRequest

pub mod client;
pub mod fault;
pub mod metrics;
pub mod server;
pub mod wire;

pub use client::{RemoteReport, RemoteTarget, Reply, ServeClient};
pub use fault::{FaultSwitch, FaultySource, FaultyStream};
pub use metrics::{ServeStats, StatsSnapshot};
pub use server::{Registry, Server, ServerConfig};
