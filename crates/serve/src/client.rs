//! The client side of the serve protocol: a blocking [`ServeClient`] over
//! one `TcpStream`, plus the [`RemoteReport`] a retrieve returns.
//!
//! Every call returns [`Reply`] — load sheds surface as
//! [`Reply::Busy`] with a retry-after hint rather than an error, because a
//! shed is the *protocol working as designed* under saturation; actual
//! failures (unknown dataset, malformed request, server-side retrieval
//! errors) come back as `Err` with the same [`PqrError`] variant a local
//! call would produce.

use crate::wire::{self, BusyBody, OpenInfo, ResumeBody, RetrieveBody};
use pqr_core::request::RetrievalRequest;
use pqr_transfer::wire::{io_err, read_frame, write_frame};
use pqr_util::byteio::{ByteReader, ByteWriter};
use pqr_util::error::{PqrError, Result};
use std::collections::BTreeMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A server reply that may be a load shed instead of a result.
#[derive(Debug, Clone)]
pub enum Reply<T> {
    /// The request was served.
    Ok(T),
    /// The server shed the request; retry after the hinted delay.
    Busy {
        /// Suggested back-off in milliseconds.
        retry_after_ms: u64,
        /// What saturated.
        reason: String,
    },
}

impl<T> Reply<T> {
    /// Unwraps the served value; panics on a shed (test convenience).
    pub fn expect_ok(self, ctx: &str) -> T {
        match self {
            Reply::Ok(v) => v,
            Reply::Busy { reason, .. } => panic!("{ctx}: unexpectedly shed ({reason})"),
        }
    }

    /// True when the reply is a shed.
    pub fn is_busy(&self) -> bool {
        matches!(self, Reply::Busy { .. })
    }
}

/// One target row of a [`RemoteReport`] (the wire projection of
/// [`TargetReport`](pqr_progressive::plan::TargetReport)).
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteTarget {
    /// Target QoI name.
    pub name: String,
    /// Whether its tolerance certified.
    pub satisfied: bool,
    /// The absolute tolerance demanded.
    pub tol_abs: f64,
    /// The certified (or best-achieved) error bound.
    pub max_est_error: f64,
    /// Newly fetched payload bytes attributed to this target.
    pub bytes: u64,
}

/// What a remote retrieve returns: the plan report's outcome plus the
/// serving-layer observability fields and any requested value payloads.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RemoteReport {
    /// Whether every target certified.
    pub satisfied: bool,
    /// True when the byte budget stopped refinement early — the reply
    /// still carries the *achieved* bound per target (partial-with-bound,
    /// not an error).
    pub budget_exhausted: bool,
    /// Refine→estimate→tighten rounds used.
    pub iterations: u64,
    /// Bytes this execution newly fetched from the dataset's source.
    pub bytes_fetched: u64,
    /// The session's cumulative fetched bytes.
    pub total_fetched: u64,
    /// Bytes batched execution saved across targets sharing fields.
    pub shared_bytes_saved: u64,
    /// Milliseconds this request waited for a decode permit.
    pub queue_wait_ms: u64,
    /// Store-level fragments decoded during this execution.
    pub store_fragments_decoded: u64,
    /// Store-level refinements served from already-decoded state.
    pub store_refine_reuses: u64,
    /// Full-field recompose/interp passes run while rebuilding
    /// reconstructions for this execution.
    pub recompose_passes: u64,
    /// Zero-decode rounds answered from a memoized reconstruction.
    pub recon_cache_hits: u64,
    /// Milliseconds spent rebuilding reconstructions.
    pub reconstruct_ms: u64,
    /// Per-target outcomes, in request order.
    pub targets: Vec<RemoteTarget>,
    /// Derived QoI values for each name the request asked for.
    pub values: BTreeMap<String, Vec<f64>>,
    /// A resume blob, when the request asked for one.
    pub progress: Option<Vec<u8>>,
}

impl RemoteReport {
    /// Serialises the report for the `retrieve` reply frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(self.satisfied as u8);
        w.put_u8(self.budget_exhausted as u8);
        for v in [
            self.iterations,
            self.bytes_fetched,
            self.total_fetched,
            self.shared_bytes_saved,
            self.queue_wait_ms,
            self.store_fragments_decoded,
            self.store_refine_reuses,
            self.recompose_passes,
            self.recon_cache_hits,
            self.reconstruct_ms,
        ] {
            w.put_u64(v);
        }
        w.put_u64(self.targets.len() as u64);
        for t in &self.targets {
            w.put_bytes(t.name.as_bytes());
            w.put_u8(t.satisfied as u8);
            w.put_f64(t.tol_abs);
            w.put_f64(t.max_est_error);
            w.put_u64(t.bytes);
        }
        w.put_u64(self.values.len() as u64);
        for (name, vals) in &self.values {
            w.put_bytes(name.as_bytes());
            w.put_f64_slice(vals);
        }
        match &self.progress {
            Some(p) => {
                w.put_u8(1);
                w.put_bytes(p);
            }
            None => w.put_u8(0),
        }
        w.finish()
    }

    /// Parses a report (counts checked before allocation).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let satisfied = r.get_u8()? != 0;
        let budget_exhausted = r.get_u8()? != 0;
        let mut scalars = [0u64; 10];
        for s in &mut scalars {
            *s = r.get_u64()?;
        }
        let raw = r.get_u64()? as usize;
        // name prefix + flag + two f64 + bytes
        let nt = r.check_count(raw, 8 + 1 + 16 + 8)?;
        let mut targets = Vec::with_capacity(nt);
        for _ in 0..nt {
            targets.push(RemoteTarget {
                name: wire::get_name(&mut r)?,
                satisfied: r.get_u8()? != 0,
                tol_abs: r.get_f64()?,
                max_est_error: r.get_f64()?,
                bytes: r.get_u64()?,
            });
        }
        let raw = r.get_u64()? as usize;
        let nv = r.check_count(raw, 16)?;
        let mut values = BTreeMap::new();
        for _ in 0..nv {
            let name = wire::get_name(&mut r)?;
            values.insert(name, r.get_f64_vec()?);
        }
        let progress = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_bytes()?.to_vec()),
            tag => {
                return Err(PqrError::CorruptStream(format!(
                    "unknown progress tag {tag}"
                )))
            }
        };
        Ok(Self {
            satisfied,
            budget_exhausted,
            iterations: scalars[0],
            bytes_fetched: scalars[1],
            total_fetched: scalars[2],
            shared_bytes_saved: scalars[3],
            queue_wait_ms: scalars[4],
            store_fragments_decoded: scalars[5],
            store_refine_reuses: scalars[6],
            recompose_passes: scalars[7],
            recon_cache_hits: scalars[8],
            reconstruct_ms: scalars[9],
            targets,
            values,
            progress,
        })
    }
}

/// A blocking protocol client over one connection. One session lives per
/// connection: [`ServeClient::open`] (or [`ServeClient::resume`]) binds
/// it, and subsequent retrieves accumulate progressively — exactly like a
/// local [`Session`](pqr_core::archive::Session), with the wire in
/// between.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to a serve endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).ok();
        Ok(Self { stream })
    }

    /// Sets read/write timeouts on the underlying socket (`None` = block
    /// forever).
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(timeout).map_err(io_err)?;
        self.stream.set_write_timeout(timeout).map_err(io_err)
    }

    fn call(&mut self, kind: u16, body: &[u8]) -> Result<(u16, Vec<u8>)> {
        write_frame(&mut self.stream, kind, body)?;
        let (k, b, _) = read_frame(&mut self.stream)?;
        if k == wire::ERROR {
            return Err(wire::decode_error(&b));
        }
        Ok((k, b))
    }

    fn expect<T>(
        &mut self,
        kind: u16,
        body: &[u8],
        want: u16,
        parse: impl FnOnce(&[u8]) -> Result<T>,
    ) -> Result<Reply<T>> {
        let (k, b) = self.call(kind, body)?;
        if k == wire::BUSY {
            let busy = BusyBody::from_bytes(&b)?;
            return Ok(Reply::Busy {
                retry_after_ms: busy.retry_after_ms,
                reason: busy.reason,
            });
        }
        if k != want {
            return Err(PqrError::CorruptStream(format!(
                "unexpected reply kind {k} (want {want})"
            )));
        }
        Ok(Reply::Ok(parse(&b)?))
    }

    /// Opens a session on a registered dataset.
    pub fn open(&mut self, dataset: &str) -> Result<Reply<OpenInfo>> {
        let mut w = ByteWriter::new();
        w.put_bytes(dataset.as_bytes());
        self.expect(wire::OPEN, &w.finish(), wire::OPEN_OK, OpenInfo::from_bytes)
    }

    /// Recreates a session from a progress blob saved by an earlier
    /// retrieve with `save_progress` — the remote analogue of
    /// [`Archive::resume_session`](pqr_core::archive::Archive::resume_session).
    pub fn resume(&mut self, dataset: &str, progress: &[u8]) -> Result<Reply<OpenInfo>> {
        let body = ResumeBody {
            dataset: dataset.to_string(),
            progress: progress.to_vec(),
        };
        self.expect(
            wire::RESUME,
            &body.to_bytes(),
            wire::OPEN_OK,
            OpenInfo::from_bytes,
        )
    }

    /// Executes a retrieval request on the open session, optionally asking
    /// for derived QoI values and a resume blob.
    pub fn retrieve(
        &mut self,
        request: &RetrievalRequest,
        want_values: &[&str],
        save_progress: bool,
    ) -> Result<Reply<RemoteReport>> {
        let body = RetrieveBody {
            request: request.clone(),
            want_values: want_values.iter().map(|s| s.to_string()).collect(),
            save_progress,
        };
        self.expect(
            wire::RETRIEVE,
            &body.to_bytes(),
            wire::RETRIEVE_OK,
            RemoteReport::from_bytes,
        )
    }

    /// Fetches the server's metrics snapshot.
    pub fn stats(&mut self) -> Result<Reply<crate::metrics::StatsSnapshot>> {
        self.expect(
            wire::STATS,
            &[],
            wire::STATS_OK,
            crate::metrics::StatsSnapshot::from_bytes,
        )
    }

    /// Closes the connection cleanly (waits for the server's `bye`).
    pub fn close(mut self) -> Result<()> {
        let (k, _) = self.call(wire::CLOSE, &[])?;
        if k != wire::BYE {
            return Err(PqrError::CorruptStream(format!(
                "unexpected close reply kind {k}"
            )));
        }
        Ok(())
    }

    /// Asks the server to shut down (drain workers and exit the accept
    /// loop), then closes this connection.
    pub fn shutdown_server(mut self) -> Result<()> {
        let (k, _) = self.call(wire::SHUTDOWN, &[])?;
        if k != wire::BYE {
            return Err(PqrError::CorruptStream(format!(
                "unexpected shutdown reply kind {k}"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_report_roundtrips() {
        let report = RemoteReport {
            satisfied: true,
            budget_exhausted: false,
            iterations: 3,
            bytes_fetched: 4096,
            total_fetched: 8192,
            shared_bytes_saved: 512,
            queue_wait_ms: 7,
            store_fragments_decoded: 11,
            store_refine_reuses: 2,
            recompose_passes: 24,
            recon_cache_hits: 3,
            reconstruct_ms: 5,
            targets: vec![RemoteTarget {
                name: "V".into(),
                satisfied: true,
                tol_abs: 1e-3,
                max_est_error: 4.2e-4,
                bytes: 4096,
            }],
            values: BTreeMap::from([("V".to_string(), vec![1.0, 2.5, -3.0])]),
            progress: Some(vec![9, 9, 9]),
        };
        assert_eq!(
            RemoteReport::from_bytes(&report.to_bytes()).unwrap(),
            report
        );
    }

    #[test]
    fn empty_report_roundtrips() {
        let report = RemoteReport::default();
        assert_eq!(
            RemoteReport::from_bytes(&report.to_bytes()).unwrap(),
            report
        );
    }

    #[test]
    fn hostile_target_count_fails_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u8(0);
        for _ in 0..10 {
            w.put_u64(0);
        }
        w.put_u64(u64::MAX / 8); // absurd target count
        assert!(RemoteReport::from_bytes(&w.finish()).is_err());
    }
}
