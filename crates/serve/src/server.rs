//! The thread-pooled TCP request server.
//!
//! One [`Server`] owns a [`Registry`] of datasets, a
//! [`TcpListener`] accept loop, and a fixed worker pool. The load path is
//! guarded twice:
//!
//! 1. **Admission**: accepted connections enter a *bounded* queue. When
//!    it is full the accept loop answers a `Busy` frame immediately and
//!    drops the connection — the server never buffers unbounded work.
//! 2. **Decode gate**: retrieve frames must take one of
//!    [`ServerConfig::decode_permits`] permits before executing. A
//!    request that cannot get a permit within
//!    [`ServerConfig::busy_wait_ms`] is answered `Busy` with a
//!    retry-after hint instead of piling onto the pool. The measured
//!    wait rides back on the report as `queue_wait_ms`.
//!
//! Sessions are per-connection: `open` binds one, subsequent `retrieve`s
//! accumulate progressively on it (the wire analogue of a local
//! [`Session`]), and all sessions of one
//! dataset share that dataset's [`DatasetService`] decode store — the
//! decode-once property crosses the socket untouched.
//!
//! **Round coalescing**: when [`ServerConfig::coalesce`] is on, eligible
//! retrieves (store-backed session, no byte budget in play, no progress
//! save) that arrive within one [`ServerConfig::coalesce_window_ms`]
//! gathering window form a *round*. One leader merges the batch with
//! [`merge_requests`], executes the union through the shared store under a
//! **single** decode permit, and every participant (leader included) then
//! *projects* its reply straight from the round's per-target reports and
//! the shared round session — no decode gate, no per-client re-execution.
//! Projection is exact for the certified quantities: the union contains
//! every member target at its own tolerance (deduplicated by wire
//! identity), so each member's `satisfied`/`tol_abs`/`max_est_error` are
//! the union execution's own numbers for that target, and requested value
//! arrays read the identical reconstruction any member execution would
//! have adopted. The *accounting* fields of a coalesced reply
//! (`iterations`, `bytes_fetched`, `total_fetched`, store deltas) are
//! round-level: they describe the one union execution that served the
//! whole round, not a per-client share. A round that cannot get a permit,
//! whose union fails, or whose reply cannot be projected (defensive
//! fallback) degrades to individual gated execution.
//!
//! Failure policy: malformed frames and failed requests get an `Error`
//! frame (the connection survives request-level errors, dies on framing
//! desync); a peer that vanishes mid-request is counted and forgotten.
//! Worker and store state never poisons — every lock user recovers the
//! inner value.

use crate::metrics::{DatasetStats, ServeStats, StatsSnapshot};
use crate::wire::{self, BusyBody, OpenInfo, ResumeBody, RetrieveBody};
use pqr_core::archive::{Archive, DatasetService, Session};
use pqr_core::prelude::PlanReport;
use pqr_core::prelude::StoreBudget;
use pqr_core::request::{merge_requests, RequestTarget, RetrievalRequest, ToleranceMode};
use pqr_transfer::wire::{decode_header, io_err, write_frame, HEADER_LEN};
use pqr_util::error::{PqrError, Result};
use std::collections::{BTreeMap, VecDeque};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded accepted-connection queue length. `0` means a connection
    /// is only admitted when a worker is free to take it immediately.
    pub pending_queue: usize,
    /// Concurrent retrieves allowed to execute (the decode pool width).
    pub decode_permits: usize,
    /// How long a retrieve may wait for a decode permit before the server
    /// sheds it with `Busy`.
    pub busy_wait_ms: u64,
    /// The retry-after hint carried by `Busy` replies.
    pub retry_after_ms: u64,
    /// Socket read/write timeout. Reads between frames poll at this
    /// period (checking for shutdown); a timeout *mid-frame* is a dead or
    /// stalled peer and drops the connection.
    pub io_timeout_ms: u64,
    /// Drop a connection after this long without a complete frame.
    pub idle_timeout_ms: u64,
    /// Per-connection cap on newly fetched source bytes, across all of
    /// the connection's retrieves. The cap rides the existing
    /// [`RetrievalRequest`] budget
    /// field, so an exceeded budget returns a partial result with its
    /// certified bound — never an error.
    pub client_byte_budget: Option<usize>,
    /// Per-connection wall-clock budget. Retrieves arriving after it has
    /// elapsed are refused with an `InvalidRequest` error frame.
    pub client_time_budget_ms: Option<u64>,
    /// Coalesce concurrently arriving retrieves of one dataset into union
    /// rounds (see the module docs). Budgeted requests, budgeted
    /// connections, and resumed sessions always bypass coalescing.
    pub coalesce: bool,
    /// How long a round leader holds its gathering window open for more
    /// arrivals before executing.
    pub coalesce_window_ms: u64,
    /// Close the gathering window early once this many requests have
    /// joined the round (clamped to ≥ 2).
    pub coalesce_min_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            pending_queue: 16,
            decode_permits: 4,
            busy_wait_ms: 100,
            retry_after_ms: 200,
            io_timeout_ms: 30_000,
            idle_timeout_ms: 300_000,
            client_byte_budget: None,
            client_time_budget_ms: None,
            coalesce: true,
            coalesce_window_ms: 3,
            coalesce_min_batch: 2,
        }
    }
}

/// One registered dataset: the archive (for resume replay), its
/// shared-store service (for live sessions), and the coalescing state its
/// concurrent retrieves gather on.
struct RegEntry {
    archive: Archive,
    service: DatasetService,
    coalescer: Coalescer,
}

/// Cross-client round-coalescing state of one dataset (see the module
/// docs). A round's lifecycle: a leader opens a gathering window
/// (`gathering = true`), concurrent arrivals push their requests and wait,
/// the leader closes the window atomically (taking the whole batch),
/// executes the union once, records the round's outcome, and wakes the
/// members.
struct Coalescer {
    state: Mutex<CoState>,
    cv: Condvar,
    /// The session union rounds execute on, created lazily so datasets
    /// that never coalesce pay nothing. Holding its lock across the union
    /// also serialises rounds per dataset.
    round_session: Mutex<Option<Session>>,
}

struct CoState {
    /// Id of the round currently (or next) gathering.
    round: u64,
    /// True while a leader's gathering window is open.
    gathering: bool,
    /// Requests gathered for the current round, leader's own included.
    requests: Vec<RetrievalRequest>,
    /// `(round, union result)` of recently executed rounds — `None` marks
    /// a failed union. Bounded: a member that wakes late must still find
    /// its round's outcome here.
    outcomes: VecDeque<(u64, Option<Arc<RoundShare>>)>,
}

/// What a successful union round publishes to its members: the union
/// request (target identities, in execution order) and the union
/// execution's report (per-target outcomes aligned with those targets).
/// Members project their replies from this instead of re-executing.
struct RoundShare {
    union: RetrievalRequest,
    report: PlanReport,
    /// When the round's decode permit was granted. A member's reported
    /// `queue_wait_ms` runs from its own arrival to this instant — once
    /// the union executes, the member's work *is* being serviced, which
    /// mirrors uncoalesced semantics (permit wait, not execution).
    granted: Instant,
}

/// What role a retrieve played in coalescing, decided by [`join_round`].
enum CoRole {
    /// Opened and closed a gathering window with ≥ 2 requests: execute the
    /// union, then project its own reply from the result.
    Leader {
        round: u64,
        batch: Vec<RetrievalRequest>,
    },
    /// Rode a round whose union executed: project the reply.
    Shared(Arc<RoundShare>),
    /// No round formed (solo window, failed union, or vanished leader):
    /// execute individually through the decode gate.
    Solo,
}

impl Coalescer {
    fn new() -> Self {
        Self {
            state: Mutex::new(CoState {
                round: 0,
                gathering: false,
                requests: Vec::new(),
                outcomes: VecDeque::new(),
            }),
            cv: Condvar::new(),
            round_session: Mutex::new(None),
        }
    }

    /// Publishes a round's outcome and wakes every member waiting on it.
    fn record_outcome(&self, round: u64, share: Option<Arc<RoundShare>>) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.outcomes.len() >= 8 {
            st.outcomes.pop_front();
        }
        st.outcomes.push_back((round, share));
        drop(st);
        self.cv.notify_all();
    }
}

/// The server's dataset registry: name → [`DatasetService`] (plus the
/// archive behind it). All sessions a server opens on one name share that
/// dataset's decode store.
#[derive(Default)]
pub struct Registry {
    entries: BTreeMap<String, Arc<RegEntry>>,
    /// When set, every registered dataset's decode store charges against
    /// this one budget, so memory pressure (and eviction) is global across
    /// datasets rather than per-store.
    budget: Option<Arc<StoreBudget>>,
}

impl Registry {
    /// An empty registry. Each dataset resolves its own store budget
    /// (engine config, then `PQR_STORE_BUDGET`).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry whose datasets all share `budget` — the
    /// server-wide decoded-state ceiling behind `pqr serve
    /// --store-budget`.
    pub fn with_budget(budget: Arc<StoreBudget>) -> Self {
        Self {
            entries: BTreeMap::new(),
            budget: Some(budget),
        }
    }

    /// Registers an archive under `name`, building its shared-store
    /// service (one metadata pass per field). Replaces any previous entry
    /// with the same name.
    pub fn register(&mut self, name: &str, archive: Archive) -> Result<()> {
        let service = match &self.budget {
            Some(budget) => archive.service_with_budget(Arc::clone(budget))?,
            None => archive.service()?,
        };
        self.entries.insert(
            name.to_string(),
            Arc::new(RegEntry {
                archive,
                service,
                coalescer: Coalescer::new(),
            }),
        );
        Ok(())
    }

    /// Registered dataset names.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    fn get(&self, name: &str) -> Result<&Arc<RegEntry>> {
        self.entries.get(name).ok_or_else(|| {
            PqrError::InvalidRequest(format!(
                "unknown dataset '{name}' (registered: {:?})",
                self.entries.keys().collect::<Vec<_>>()
            ))
        })
    }
}

/// Hand-rolled counting semaphore (no crates-io): the decode-permit gate.
struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    fn new(n: usize) -> Self {
        Self {
            permits: Mutex::new(n),
            cv: Condvar::new(),
        }
    }

    /// Tries to take a permit, waiting at most `d`. Returns the wait time
    /// on success.
    fn acquire_timeout(&self, d: Duration) -> Option<Duration> {
        let start = Instant::now();
        let mut n = self.permits.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if *n > 0 {
                *n -= 1;
                return Some(start.elapsed());
            }
            let elapsed = start.elapsed();
            if elapsed >= d {
                return None;
            }
            let (guard, _timeout) = self
                .cv
                .wait_timeout(n, d - elapsed)
                .unwrap_or_else(|e| e.into_inner());
            n = guard;
        }
    }

    fn release(&self) {
        let mut n = self.permits.lock().unwrap_or_else(|e| e.into_inner());
        *n += 1;
        self.cv.notify_one();
    }
}

/// RAII permit: releases on every exit path, including panics and early
/// returns — a dying request can never leak decode capacity.
struct Permit<'a>(&'a Semaphore);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// Bounded queue of accepted connections awaiting a worker.
struct ConnQueue {
    q: Mutex<VecDeque<TcpStream>>,
    cv: Condvar,
    cap: usize,
    closed: AtomicBool,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        Self {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            cap,
            closed: AtomicBool::new(false),
        }
    }

    /// Admits the connection, or hands it back when the queue is full
    /// (the caller sheds it).
    fn push(&self, stream: TcpStream) -> std::result::Result<(), TcpStream> {
        let mut q = self.q.lock().unwrap_or_else(|e| e.into_inner());
        if q.len() > self.cap {
            return Err(stream);
        }
        q.push_back(stream);
        drop(q);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut q = self.q.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(s) = q.pop_front() {
                return Some(s);
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            q = self
                .cv
                .wait_timeout(q, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// Connections currently queued (the admission-shed hint's queue-depth
    /// input).
    fn len(&self) -> usize {
        self.q.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// Decrements a gauge on every exit path (the decode-inflight counterpart
/// of [`Permit`]).
struct GaugeGuard<'a>(&'a AtomicU64);

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// What a connection's `open`/`resume` frame bound: the session, its
/// dataset entry, and whether the session rides the dataset's shared
/// decode store (live `open`) or an independent replay engine (`resume`).
/// Only shared-store sessions are coalescing-eligible.
struct ConnSession {
    session: Session,
    entry: Arc<RegEntry>,
    shared_store: bool,
}

/// State shared by the accept loop and every worker.
struct Shared {
    registry: Registry,
    config: ServerConfig,
    stats: ServeStats,
    permits: Semaphore,
    queue: ConnQueue,
    shutdown: AtomicBool,
}

/// A running serve instance: accept loop + worker pool over a [`Registry`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop and worker pool.
    pub fn start(
        addr: impl ToSocketAddrs,
        registry: Registry,
        config: ServerConfig,
    ) -> Result<Self> {
        let listener = TcpListener::bind(addr).map_err(io_err)?;
        listener.set_nonblocking(true).map_err(io_err)?;
        let addr = listener.local_addr().map_err(io_err)?;
        let shared = Arc::new(Shared {
            permits: Semaphore::new(config.decode_permits.max(1)),
            queue: ConnQueue::new(config.pending_queue),
            registry,
            config: config.clone(),
            stats: ServeStats::default(),
            shutdown: AtomicBool::new(false),
        });

        let workers = (0..config.workers.max(1))
            .map(|k| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pqr-serve-worker-{k}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(io_err)
            })
            .collect::<Result<Vec<_>>>()?;

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pqr-serve-accept".into())
                .spawn(move || accept_loop(listener, &shared))
                .map_err(io_err)?
        };

        Ok(Self {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A metrics snapshot with per-dataset store/source rows.
    pub fn stats(&self) -> StatsSnapshot {
        full_snapshot(&self.shared.stats, &self.shared.registry)
    }

    /// True once a shutdown has been requested (locally or by a client's
    /// `shutdown` frame).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Requests shutdown and joins the accept loop and workers. In-flight
    /// connections finish their current frame; queued connections drain.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shared.shutdown.store(true, Ordering::Release);
        self.join_all()
    }

    /// Joins without initiating shutdown — returns when a client's
    /// `shutdown` frame (or a local [`Server::shutdown`] from another
    /// handle) stops the server.
    pub fn wait(mut self) -> StatsSnapshot {
        self.join_all()
    }

    fn join_all(&mut self) -> StatsSnapshot {
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
        // accept loop closed the queue on exit; workers drain and stop
        for h in self.workers.drain(..) {
            h.join().ok();
        }
        full_snapshot(&self.shared.stats, &self.shared.registry)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.join_all();
    }
}

fn full_snapshot(stats: &ServeStats, registry: &Registry) -> StatsSnapshot {
    let mut snap = stats.snapshot();
    for (name, e) in &registry.entries {
        snap.datasets.push(DatasetStats {
            name: name.clone(),
            store: e.service.store_stats(),
            source: e.service.source_stats(),
        });
    }
    snap
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                ServeStats::inc(&shared.stats.connections);
                match shared.queue.push(stream) {
                    Ok(()) => {}
                    Err(mut rejected) => {
                        // bounded queue full: shed at admission with an
                        // explicit Busy instead of queueing unboundedly
                        ServeStats::inc(&shared.stats.shed_admission);
                        rejected
                            .set_write_timeout(Some(Duration::from_millis(200)))
                            .ok();
                        let body = BusyBody {
                            retry_after_ms: shared.stats.busy_hint_now(
                                shared.queue.len() as u64,
                                shared.config.decode_permits.max(1) as u64,
                                shared.config.retry_after_ms,
                            ),
                            reason: "admission queue full".into(),
                        };
                        if let Ok(n) = write_frame(&mut rejected, wire::BUSY, &body.to_bytes()) {
                            ServeStats::add(&shared.stats.bytes_out, n as u64);
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    shared.queue.close();
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = shared.queue.pop() {
        handle_connection(stream, shared);
    }
}

/// Reads one frame, polling between frames so shutdown and idle timeouts
/// are honoured without desyncing mid-frame: the *first* header byte is
/// awaited in a timeout loop, after which the rest of the frame must
/// arrive within the io timeout or the peer is declared dead.
fn read_frame_polling(
    stream: &mut TcpStream,
    shared: &Shared,
) -> Result<Option<(u16, Vec<u8>, usize)>> {
    let io_timeout = Duration::from_millis(shared.config.io_timeout_ms.max(10));
    // poll for the first byte on a short quantum so shutdown is honoured
    // promptly no matter how generous the io timeout is
    stream
        .set_read_timeout(Some(io_timeout.min(Duration::from_millis(100))))
        .ok();
    let idle_start = Instant::now();
    let mut first = [0u8; 1];
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return Ok(None); // server is draining: drop the idle connection
        }
        if idle_start.elapsed() >= Duration::from_millis(shared.config.idle_timeout_ms) {
            return Ok(None);
        }
        match stream.read(&mut first) {
            Ok(0) => return Ok(None), // clean EOF between frames
            Ok(_) => break,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(io_err(e)),
        }
    }
    // frame started: the rest must arrive within the full io timeout
    stream.set_read_timeout(Some(io_timeout)).ok();
    let mut rest = [0u8; HEADER_LEN - 1];
    stream.read_exact(&mut rest).map_err(io_err)?;
    let mut h = [0u8; HEADER_LEN];
    h[0] = first[0];
    h[1..].copy_from_slice(&rest);
    let header = decode_header(&h)?;
    let mut body = vec![0u8; header.len as usize];
    stream.read_exact(&mut body).map_err(io_err)?;
    let wire_bytes = HEADER_LEN + body.len();
    Ok(Some((header.kind, body, wire_bytes)))
}

/// Per-connection handler: a session-scoped frame loop.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    stream.set_nodelay(true).ok();
    let io_timeout = Duration::from_millis(shared.config.io_timeout_ms.max(10));
    stream.set_read_timeout(Some(io_timeout)).ok();
    stream.set_write_timeout(Some(io_timeout)).ok();

    let opened_at = Instant::now();
    let mut session: Option<ConnSession> = None;
    let mut byte_budget_left = shared.config.client_byte_budget;

    loop {
        let (kind, body, wire_in) = match read_frame_polling(&mut stream, shared) {
            Ok(Some(f)) => f,
            Ok(None) => return, // clean EOF / idle / draining
            Err(e) => {
                // framing failure: answer with a clean error (best effort —
                // the peer may already be gone), then drop the connection,
                // because the stream can no longer be trusted to be in sync
                ServeStats::inc(&shared.stats.errors);
                send_error(&mut stream, shared, &e);
                return;
            }
        };
        ServeStats::add(&shared.stats.bytes_in, wire_in as u64);
        ServeStats::inc(&shared.stats.requests);

        match kind {
            wire::OPEN => {
                let reply = open_session(&body, shared).map(|(info, sess)| {
                    session = Some(sess);
                    info.to_bytes()
                });
                if !send_result(&mut stream, shared, wire::OPEN_OK, reply) {
                    return;
                }
            }
            wire::RESUME => {
                let reply = resume_session(&body, shared).map(|(info, sess)| {
                    session = Some(sess);
                    info.to_bytes()
                });
                if !send_result(&mut stream, shared, wire::OPEN_OK, reply) {
                    return;
                }
            }
            wire::RETRIEVE => {
                let outcome = run_retrieve(
                    &body,
                    shared,
                    &mut session,
                    &mut byte_budget_left,
                    opened_at,
                );
                let sent = match outcome {
                    RetrieveOutcome::Ok(report) => {
                        send_result(&mut stream, shared, wire::RETRIEVE_OK, Ok(report))
                    }
                    RetrieveOutcome::Busy(retry_after_ms) => {
                        ServeStats::inc(&shared.stats.shed_busy);
                        let body = BusyBody {
                            retry_after_ms,
                            reason: "decode pool saturated".into(),
                        };
                        send_frame(&mut stream, shared, wire::BUSY, &body.to_bytes())
                    }
                    RetrieveOutcome::Err(e) => {
                        send_result::<Vec<u8>>(&mut stream, shared, wire::RETRIEVE_OK, Err(e))
                    }
                };
                if !sent {
                    // the peer vanished between request and reply
                    ServeStats::inc(&shared.stats.disconnects_mid_request);
                    return;
                }
            }
            wire::STATS => {
                let snap = full_snapshot(&shared.stats, &shared.registry);
                if !send_frame(&mut stream, shared, wire::STATS_OK, &snap.to_bytes()) {
                    return;
                }
            }
            wire::CLOSE => {
                send_frame(&mut stream, shared, wire::BYE, &[]);
                return;
            }
            wire::SHUTDOWN => {
                shared.shutdown.store(true, Ordering::Release);
                send_frame(&mut stream, shared, wire::BYE, &[]);
                return;
            }
            k => {
                let e = PqrError::InvalidRequest(format!("unknown frame kind {k}"));
                ServeStats::inc(&shared.stats.errors);
                if !send_error(&mut stream, shared, &e) {
                    return;
                }
            }
        }
    }
}

fn open_session(body: &[u8], shared: &Shared) -> Result<(OpenInfo, ConnSession)> {
    let mut r = pqr_util::byteio::ByteReader::new(body);
    let name = wire::get_name(&mut r)?;
    let entry = shared.registry.get(&name)?;
    let session = entry.service.session()?;
    Ok((
        open_info(entry),
        ConnSession {
            session,
            entry: Arc::clone(entry),
            shared_store: true,
        },
    ))
}

fn resume_session(body: &[u8], shared: &Shared) -> Result<(OpenInfo, ConnSession)> {
    let req = ResumeBody::from_bytes(body)?;
    let entry = shared.registry.get(&req.dataset)?;
    // resumed sessions replay their saved trajectory on an independent
    // engine (deterministic byte accounting); they share the dataset's
    // fragment source but not its decode store — see DIVERGENCES.md
    let session = entry.archive.resume_session(&req.progress)?;
    Ok((
        open_info(entry),
        ConnSession {
            session,
            entry: Arc::clone(entry),
            shared_store: false,
        },
    ))
}

fn open_info(entry: &RegEntry) -> OpenInfo {
    let manifest = entry.service.manifest();
    OpenInfo {
        dims: manifest.dims.clone(),
        fields: manifest.fields.iter().map(|f| f.name.clone()).collect(),
        qois: entry
            .service
            .qoi_names()
            .into_iter()
            .map(String::from)
            .collect(),
    }
}

enum RetrieveOutcome {
    Ok(Vec<u8>),
    /// Shed at the decode gate; carries the retry-after hint.
    Busy(u64),
    Err(PqrError),
}

/// Joins (or opens) the dataset's current coalescing round. Blocks for at
/// most the gathering window as a leader, or until the round's outcome is
/// recorded as a member.
fn join_round(shared: &Shared, co: &Coalescer, request: &RetrievalRequest) -> CoRole {
    let window = Duration::from_millis(shared.config.coalesce_window_ms);
    let min_batch = shared.config.coalesce_min_batch.max(2);
    let mut st = co.state.lock().unwrap_or_else(|e| e.into_inner());
    if !st.gathering {
        // leader: open a gathering window, close it early on min_batch
        st.gathering = true;
        let round = st.round;
        st.requests.push(request.clone());
        let start = Instant::now();
        while st.requests.len() < min_batch {
            let elapsed = start.elapsed();
            if elapsed >= window {
                break;
            }
            st = co
                .cv
                .wait_timeout(st, window - elapsed)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        // close the round atomically: every request pushed so far belongs
        // to it, and nothing can join after this point
        st.gathering = false;
        st.round += 1;
        let batch = std::mem::take(&mut st.requests);
        drop(st);
        if batch.len() < 2 {
            CoRole::Solo
        } else {
            CoRole::Leader { round, batch }
        }
    } else {
        // member: ride the open round and wait for its outcome
        let round = st.round;
        st.requests.push(request.clone());
        co.cv.notify_all(); // the leader may be waiting for min_batch
        let cap = Duration::from_millis(shared.config.io_timeout_ms.max(1_000));
        let start = Instant::now();
        loop {
            if let Some((_, share)) = st.outcomes.iter().find(|(r, _)| *r == round) {
                return match share {
                    Some(s) => CoRole::Shared(Arc::clone(s)),
                    None => CoRole::Solo,
                };
            }
            let elapsed = start.elapsed();
            if elapsed >= cap {
                // the leader vanished (panicked mid-round): serve
                // individually rather than hang
                return CoRole::Solo;
            }
            st = co
                .cv
                .wait_timeout(st, cap - elapsed)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }
}

/// Executes a round's union request through the shared store under one
/// decode permit, records the outcome, and wakes the members. Returns the
/// round's share on success (members project their replies from it).
fn run_union(
    shared: &Shared,
    entry: &RegEntry,
    round: u64,
    batch: &[RetrievalRequest],
) -> Option<Arc<RoundShare>> {
    ServeStats::inc(&shared.stats.decode_inflight);
    let share = {
        let _gauge = GaugeGuard(&shared.stats.decode_inflight);
        let wait = Duration::from_millis(shared.config.busy_wait_ms);
        match shared.permits.acquire_timeout(wait) {
            None => None,
            Some(_queued) => {
                let _permit = Permit(&shared.permits);
                let granted = Instant::now();
                let union = merge_requests(batch);
                let mut guard = entry
                    .coalescer
                    .round_session
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                if guard.is_none() {
                    *guard = entry.service.session().ok();
                }
                let share = match guard.as_mut() {
                    Some(s) => s.execute(&union).ok().map(|report| {
                        Arc::new(RoundShare {
                            union,
                            report,
                            granted,
                        })
                    }),
                    None => None,
                };
                // the union execution is the round's real service work;
                // feed it to the dynamic Busy hint once per round
                if share.is_some() {
                    shared
                        .stats
                        .record_service(granted.elapsed().as_millis() as u64);
                }
                share
            }
        }
    };
    if share.is_some() {
        ServeStats::inc(&shared.stats.coalesced_rounds);
        ServeStats::add(&shared.stats.coalesced_requests, batch.len() as u64);
    } else {
        ServeStats::inc(&shared.stats.coalesce_fallbacks);
    }
    entry.coalescer.record_outcome(round, share.clone());
    share
}

/// Builds a member's reply from its round's [`RoundShare`] — the
/// "K cheap reply projections" side of coalescing. Every member target is
/// present in the union at its own tolerance (that is [`merge_requests`]'s
/// dedup key), so the union's per-target report *is* the member's report
/// for the certified quantities; requested value arrays read the shared
/// round session, whose reconstruction is exactly what a member execution
/// would have adopted. Returns `None` (caller degrades to individual
/// execution) if a target cannot be matched or the round session is gone.
fn project_reply(
    req: &RetrieveBody,
    share: &RoundShare,
    entry: &RegEntry,
) -> Option<crate::client::RemoteReport> {
    fn key(t: &RequestTarget) -> (&str, u64, bool, Option<(usize, usize)>) {
        (
            t.name.as_str(),
            t.tolerance.to_bits(),
            t.mode == ToleranceMode::Absolute,
            t.region,
        )
    }
    let mut targets = Vec::with_capacity(req.request.targets().len());
    for t in req.request.targets() {
        let idx = share
            .union
            .targets()
            .iter()
            .position(|u| key(u) == key(t))?;
        targets.push(&share.report.targets[idx]);
    }
    let mut values = BTreeMap::new();
    if !req.want_values.is_empty() {
        let guard = entry
            .coalescer
            .round_session
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let session = guard.as_ref()?;
        for name in &req.want_values {
            values.insert(name.clone(), session.qoi_values(name).ok()?);
        }
    }
    Some(crate::client::RemoteReport {
        satisfied: targets.iter().all(|t| t.satisfied),
        budget_exhausted: false, // budgeted requests never coalesce
        // round-level accounting: the one union execution that served
        // this round (see the module docs)
        iterations: share.report.iterations as u64,
        bytes_fetched: share.report.bytes_fetched as u64,
        total_fetched: share.report.total_fetched as u64,
        shared_bytes_saved: share.report.shared_bytes_saved as u64,
        queue_wait_ms: 0, // filled by the caller
        store_fragments_decoded: share.report.store_fragments_decoded,
        store_refine_reuses: share.report.store_refine_reuses,
        recompose_passes: share.report.recompose_passes,
        recon_cache_hits: share.report.recon_cache_hits,
        reconstruct_ms: share.report.reconstruct_ms,
        targets: targets
            .iter()
            .map(|t| crate::client::RemoteTarget {
                name: t.name.clone(),
                satisfied: t.satisfied,
                tol_abs: t.tol_abs,
                max_est_error: t.max_est_error,
                bytes: t.bytes as u64,
            })
            .collect(),
        values,
        progress: None, // progress saves never coalesce
    })
}

fn run_retrieve(
    body: &[u8],
    shared: &Shared,
    session: &mut Option<ConnSession>,
    byte_budget_left: &mut Option<usize>,
    opened_at: Instant,
) -> RetrieveOutcome {
    let req = match RetrieveBody::from_bytes(body) {
        Ok(r) => r,
        Err(e) => return RetrieveOutcome::Err(e),
    };
    let Some(conn) = session.as_mut() else {
        return RetrieveOutcome::Err(PqrError::InvalidRequest(
            "no open session (send an open or resume frame first)".into(),
        ));
    };
    if let Some(limit) = shared.config.client_time_budget_ms {
        if opened_at.elapsed() >= Duration::from_millis(limit) {
            return RetrieveOutcome::Err(PqrError::InvalidRequest(format!(
                "client time budget ({limit} ms) exhausted"
            )));
        }
    }

    // coalescing eligibility: byte budgets change what a request fetches,
    // so budgeted requests (and budgeted connections) always run solo, as
    // do resumed sessions (independent replay engines) and progress saves
    // (a projected reply would not advance this connection's session)
    let eligible = shared.config.coalesce
        && conn.shared_store
        && req.request.budget().is_none()
        && byte_budget_left.is_none()
        && !req.save_progress;

    let gate_start = Instant::now();
    let mut round_share = None;
    if eligible {
        match join_round(shared, &conn.entry.coalescer, &req.request) {
            CoRole::Leader { round, batch } => {
                round_share = run_union(shared, &conn.entry, round, &batch);
            }
            CoRole::Shared(share) => round_share = Some(share),
            CoRole::Solo => {}
        }
    }
    // coalesced fast path: project the reply from the round's result —
    // no decode gate, no per-client execution
    if let Some(share) = &round_share {
        if let Some(mut remote) = project_reply(&req, share, &conn.entry) {
            // admission wait only: gather window + the round's permit
            // wait; the union execution itself was this request being
            // serviced (its cost is recorded once per round)
            let queue_wait_ms = share
                .granted
                .saturating_duration_since(gate_start)
                .as_millis() as u64;
            shared.stats.record_queue_wait(queue_wait_ms);
            ServeStats::inc(&shared.stats.retrieves);
            remote.queue_wait_ms = queue_wait_ms;
            return RetrieveOutcome::Ok(remote.to_bytes());
        }
        // defensive: a target failed to match its round's union — run the
        // request individually through the gate instead
    }
    // the decode gate: bounded wait, then an explicit shed
    let _gate = {
        ServeStats::inc(&shared.stats.decode_inflight);
        let gauge = GaugeGuard(&shared.stats.decode_inflight);
        let wait = Duration::from_millis(shared.config.busy_wait_ms);
        let Some(_queued) = shared.permits.acquire_timeout(wait) else {
            let hint = shared.stats.busy_hint_now(
                0,
                shared.config.decode_permits.max(1) as u64,
                shared.config.retry_after_ms,
            );
            return RetrieveOutcome::Busy(hint);
        };
        (Permit(&shared.permits), gauge)
    };
    let queue_wait_ms = gate_start.elapsed().as_millis() as u64;
    shared.stats.record_queue_wait(queue_wait_ms);
    ServeStats::inc(&shared.stats.retrieves);
    let session = &mut conn.session;
    let exec_start = Instant::now();

    // per-client byte budget rides the request's own budget field: the
    // effective cap is the tighter of the two, and exhaustion is a
    // partial-with-bound reply, not an error
    let effective = match (req.request.budget(), *byte_budget_left) {
        (Some(r), Some(c)) => Some(r.min(c)),
        (Some(r), None) => Some(r),
        (None, Some(c)) => Some(c),
        (None, None) => None,
    };
    let request = match effective {
        Some(b) => req.request.clone().byte_budget(b),
        None => req.request.clone(),
    };

    let report = match session.execute(&request) {
        Ok(r) => r,
        Err(e) => return RetrieveOutcome::Err(e),
    };
    if let Some(left) = byte_budget_left {
        *left = left.saturating_sub(report.bytes_fetched);
    }

    let mut values = BTreeMap::new();
    for name in &req.want_values {
        match session.qoi_values(name) {
            Ok(v) => {
                values.insert(name.clone(), v);
            }
            Err(e) => return RetrieveOutcome::Err(e),
        }
    }
    let progress = req.save_progress.then(|| session.save_progress());
    // the observed per-request service time feeds the dynamic Busy hint
    shared
        .stats
        .record_service(exec_start.elapsed().as_millis() as u64);

    let remote = crate::client::RemoteReport {
        satisfied: report.satisfied,
        budget_exhausted: report.budget_exhausted,
        iterations: report.iterations as u64,
        bytes_fetched: report.bytes_fetched as u64,
        total_fetched: report.total_fetched as u64,
        shared_bytes_saved: report.shared_bytes_saved as u64,
        queue_wait_ms,
        store_fragments_decoded: report.store_fragments_decoded,
        store_refine_reuses: report.store_refine_reuses,
        recompose_passes: report.recompose_passes,
        recon_cache_hits: report.recon_cache_hits,
        reconstruct_ms: report.reconstruct_ms,
        targets: report
            .targets
            .iter()
            .map(|t| crate::client::RemoteTarget {
                name: t.name.clone(),
                satisfied: t.satisfied,
                tol_abs: t.tol_abs,
                max_est_error: t.max_est_error,
                bytes: t.bytes as u64,
            })
            .collect(),
        values,
        progress,
    };
    RetrieveOutcome::Ok(remote.to_bytes())
}

/// Sends a success frame or the error mapped onto an `Error` frame.
/// Returns false when the peer is unreachable.
fn send_result<B: AsRef<[u8]>>(
    stream: &mut TcpStream,
    shared: &Shared,
    ok_kind: u16,
    result: Result<B>,
) -> bool {
    match result {
        Ok(body) => send_frame(stream, shared, ok_kind, body.as_ref()),
        Err(e) => {
            ServeStats::inc(&shared.stats.errors);
            send_error(stream, shared, &e)
        }
    }
}

fn send_error(stream: &mut TcpStream, shared: &Shared, e: &PqrError) -> bool {
    send_frame(stream, shared, wire::ERROR, &wire::encode_error(e))
}

fn send_frame(stream: &mut TcpStream, shared: &Shared, kind: u16, body: &[u8]) -> bool {
    match write_frame(stream, kind, body) {
        Ok(n) => {
            ServeStats::add(&shared.stats.bytes_out, n as u64);
            true
        }
        Err(_) => false,
    }
}
