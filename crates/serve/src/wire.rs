//! Protocol messages of the serving layer.
//!
//! Framing (header, length prefix, version check, allocation caps) lives
//! in [`pqr_transfer::wire`]; this module assigns meaning to the frame
//! kinds and (de)serialises the bodies with the workspace byte cursors.
//! Every body parser validates counts via
//! [`ByteReader::check_count`](pqr_util::byteio::ByteReader::check_count)
//! before preallocating, mirroring the container format's hostile-input
//! policy.
//!
//! ## Frame kinds
//!
//! | kind | direction | body |
//! |---|---|---|
//! | [`OPEN`] | → server | dataset name |
//! | [`RETRIEVE`] | → server | [`RetrievalRequest`] wire blob + value names + save-progress flag |
//! | [`RESUME`] | → server | dataset name + progress blob |
//! | [`STATS`] | → server | empty |
//! | [`CLOSE`] | → server | empty |
//! | [`SHUTDOWN`] | → server | empty (admin: stop accepting, drain, exit) |
//! | [`OPEN_OK`] | ← server | dims + field names + QoI names |
//! | [`RETRIEVE_OK`] | ← server | [`RemoteReport`](crate::client::RemoteReport) |
//! | [`STATS_OK`] | ← server | [`StatsSnapshot`](crate::metrics::StatsSnapshot) |
//! | [`BUSY`] | ← server | retry-after hint + reason (load shed) |
//! | [`ERROR`] | ← server | error code + message |
//! | [`BYE`] | ← server | empty (clean close ack) |

use pqr_core::request::RetrievalRequest;
use pqr_util::byteio::{ByteReader, ByteWriter};
use pqr_util::error::{PqrError, Result};

// Client → server.
/// Open a session on a registered dataset.
pub const OPEN: u16 = 1;
/// Execute a retrieval request on the open session.
pub const RETRIEVE: u16 = 2;
/// Recreate a session from a saved progress blob.
pub const RESUME: u16 = 3;
/// Fetch the server's metrics snapshot.
pub const STATS: u16 = 4;
/// Close the connection cleanly.
pub const CLOSE: u16 = 5;
/// Ask the server to shut down (drain and exit).
pub const SHUTDOWN: u16 = 6;

// Server → client.
/// Session opened; body describes the dataset.
pub const OPEN_OK: u16 = 100;
/// Retrieval executed; body carries the report.
pub const RETRIEVE_OK: u16 = 101;
/// Metrics snapshot.
pub const STATS_OK: u16 = 103;
/// Load shed: try again after the hinted delay.
pub const BUSY: u16 = 104;
/// Request failed; body carries the mapped [`PqrError`].
pub const ERROR: u16 = 105;
/// Clean close acknowledgement.
pub const BYE: u16 = 106;

/// What a client learns when it opens (or resumes) a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenInfo {
    /// Dataset shape.
    pub dims: Vec<usize>,
    /// Field names, in manifest order.
    pub fields: Vec<String>,
    /// Registered QoI names.
    pub qois: Vec<String>,
}

impl OpenInfo {
    /// Serialises the info block.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64_slice(&self.dims.iter().map(|&d| d as u64).collect::<Vec<_>>());
        put_names(&mut w, &self.fields);
        put_names(&mut w, &self.qois);
        w.finish()
    }

    /// Parses an info block.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let dims = r.get_u64_vec()?.into_iter().map(|d| d as usize).collect();
        let fields = get_names(&mut r)?;
        let qois = get_names(&mut r)?;
        Ok(Self { dims, fields, qois })
    }
}

/// The retrieve request body: the request itself plus which QoIs' derived
/// values the client wants returned inline and whether it wants a resume
/// blob back.
#[derive(Debug, Clone)]
pub struct RetrieveBody {
    /// The (multi-target) retrieval request.
    pub request: RetrievalRequest,
    /// QoI names whose derived values ride back in the reply (each costs
    /// 8 B/element on the wire — ask only for what the analysis reads).
    pub want_values: Vec<String>,
    /// When set, the reply carries a progress blob that
    /// [`RESUME`] (or `Archive::resume_session`) accepts.
    pub save_progress: bool,
}

impl RetrieveBody {
    /// Serialises the body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(&self.request.to_wire_bytes());
        put_names(&mut w, &self.want_values);
        w.put_u8(self.save_progress as u8);
        w.finish()
    }

    /// Parses the body; hostile inputs fail before allocation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let request = RetrievalRequest::from_wire_bytes(r.get_bytes()?)?;
        let want_values = get_names(&mut r)?;
        let save_progress = r.get_u8()? != 0;
        Ok(Self {
            request,
            want_values,
            save_progress,
        })
    }
}

/// The resume request body.
#[derive(Debug, Clone)]
pub struct ResumeBody {
    /// Which registered dataset the blob belongs to.
    pub dataset: String,
    /// A progress blob from a prior retrieve with `save_progress`.
    pub progress: Vec<u8>,
}

impl ResumeBody {
    /// Serialises the body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(self.dataset.as_bytes());
        w.put_bytes(&self.progress);
        w.finish()
    }

    /// Parses the body.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let dataset = get_name(&mut r)?;
        let progress = r.get_bytes()?.to_vec();
        Ok(Self { dataset, progress })
    }
}

/// The busy (load-shed) reply body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusyBody {
    /// Suggested client back-off before retrying, in milliseconds.
    pub retry_after_ms: u64,
    /// What saturated ("admission queue full", "decode pool saturated").
    pub reason: String,
}

impl BusyBody {
    /// Serialises the body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.retry_after_ms);
        w.put_bytes(self.reason.as_bytes());
        w.finish()
    }

    /// Parses the body.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let retry_after_ms = r.get_u64()?;
        let reason = get_name(&mut r)?;
        Ok(Self {
            retry_after_ms,
            reason,
        })
    }
}

/// Encodes a [`PqrError`] as an error-frame body (stable code + message),
/// so clients get the same error *variant* a local call would return.
pub fn encode_error(e: &PqrError) -> Vec<u8> {
    let (code, msg): (u8, &str) = match e {
        PqrError::CorruptStream(m) => (1, m),
        PqrError::InvalidRequest(m) => (2, m),
        PqrError::UnboundableQoi(m) => (3, m),
        PqrError::ShapeMismatch(m) => (4, m),
        PqrError::Unsupported(m) => (5, m),
    };
    let mut w = ByteWriter::new();
    w.put_u8(code);
    w.put_bytes(msg.as_bytes());
    w.finish()
}

/// Decodes an error-frame body back into the [`PqrError`] it encoded.
pub fn decode_error(bytes: &[u8]) -> PqrError {
    let mut r = ByteReader::new(bytes);
    let parsed = (|| -> Result<PqrError> {
        let code = r.get_u8()?;
        let msg = get_name(&mut r)?;
        Ok(match code {
            1 => PqrError::CorruptStream(msg),
            2 => PqrError::InvalidRequest(msg),
            3 => PqrError::UnboundableQoi(msg),
            4 => PqrError::ShapeMismatch(msg),
            5 => PqrError::Unsupported(msg),
            c => PqrError::CorruptStream(format!("unknown error code {c}: {msg}")),
        })
    })();
    parsed.unwrap_or_else(|_| PqrError::CorruptStream("malformed error frame".into()))
}

/// Writes a length-prefixed UTF-8 string list.
pub(crate) fn put_names(w: &mut ByteWriter, names: &[String]) {
    w.put_u64(names.len() as u64);
    for n in names {
        w.put_bytes(n.as_bytes());
    }
}

/// Reads a length-prefixed UTF-8 string list (count-checked: each entry
/// costs at least its 8-byte length prefix).
pub(crate) fn get_names(r: &mut ByteReader<'_>) -> Result<Vec<String>> {
    let raw = r.get_u64()? as usize;
    let n = r.check_count(raw, 8)?;
    let mut names = Vec::with_capacity(n);
    for _ in 0..n {
        names.push(get_name(r)?);
    }
    Ok(names)
}

/// Reads one length-prefixed UTF-8 string.
pub(crate) fn get_name(r: &mut ByteReader<'_>) -> Result<String> {
    String::from_utf8(r.get_bytes()?.to_vec())
        .map_err(|_| PqrError::CorruptStream("non-UTF-8 string on the wire".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_info_roundtrips() {
        let info = OpenInfo {
            dims: vec![64, 32],
            fields: vec!["Vx".into(), "Vy".into()],
            qois: vec!["V".into()],
        };
        assert_eq!(OpenInfo::from_bytes(&info.to_bytes()).unwrap(), info);
    }

    #[test]
    fn retrieve_body_roundtrips() {
        let body = RetrieveBody {
            request: RetrievalRequest::new().qoi("V", 1e-4).byte_budget(4096),
            want_values: vec!["V".into()],
            save_progress: true,
        };
        let back = RetrieveBody::from_bytes(&body.to_bytes()).unwrap();
        assert_eq!(back.request.to_wire_bytes(), body.request.to_wire_bytes());
        assert_eq!(back.want_values, body.want_values);
        assert!(back.save_progress);
    }

    #[test]
    fn busy_and_resume_roundtrip() {
        let b = BusyBody {
            retry_after_ms: 250,
            reason: "decode pool saturated".into(),
        };
        assert_eq!(BusyBody::from_bytes(&b.to_bytes()).unwrap(), b);
        let res = ResumeBody {
            dataset: "hurricane".into(),
            progress: vec![1, 2, 3],
        };
        let back = ResumeBody::from_bytes(&res.to_bytes()).unwrap();
        assert_eq!(back.dataset, "hurricane");
        assert_eq!(back.progress, vec![1, 2, 3]);
    }

    #[test]
    fn errors_cross_the_wire_variant_exact() {
        for e in [
            PqrError::CorruptStream("a".into()),
            PqrError::InvalidRequest("b".into()),
            PqrError::UnboundableQoi("c".into()),
            PqrError::ShapeMismatch("d".into()),
            PqrError::Unsupported("e".into()),
        ] {
            assert_eq!(decode_error(&encode_error(&e)), e);
        }
    }

    #[test]
    fn hostile_name_count_is_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert!(get_names(&mut r).is_err());
    }
}
