//! Property tests of the serve protocol's codecs:
//!
//! 1. Arbitrary [`RetrievalRequest`]s survive the wire **byte-identically**
//!    — `encode → decode → encode` is a fixed point, and every decoded
//!    field (tolerances included) is bit-equal to the original.
//! 2. The composite frame bodies ([`RetrieveBody`], [`RemoteReport`])
//!    round-trip exactly, values and progress blobs included.
//! 3. Hostile input fails at parse, cleanly: every strict prefix of a
//!    valid encoding errors (no partial successes), corrupted headers and
//!    absurd length prefixes are refused before any allocation (the
//!    `byteio::check_count` policy), and no input panics.
//! 4. Framing is chunk-size independent: frames reassemble byte-identically
//!    through a `FaultyStream` that rations reads.

use pqr_core::request::RetrievalRequest;
use pqr_serve::client::{RemoteReport, RemoteTarget};
use pqr_serve::wire::RetrieveBody;
use pqr_serve::FaultyStream;
use pqr_transfer::wire::{decode_header, read_frame, write_frame, MAX_FRAME_LEN};
use proptest::prelude::*;
use std::collections::BTreeMap;

const NAMES: [&str; 6] = ["V", "Vx2", "VxVy", "temperature", "σ_xx", "a b/c"];

/// Deterministic xorshift so a single u64 seed drives all the "free-form"
/// choices a request needs (names, regions, budgets).
fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

fn arb_request(n_targets: usize, seed: u64, tol_exp: i32) -> RetrievalRequest {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut request = RetrievalRequest::new();
    for k in 0..n_targets {
        let name = NAMES[(xorshift(&mut s) as usize) % NAMES.len()];
        // tolerances spanning ~15 decades, exercised in both modes
        let mantissa = (xorshift(&mut s) % 9_000) as f64 / 1000.0 + 1.0;
        let tol = mantissa * 10f64.powi(tol_exp - k as i32);
        request = if xorshift(&mut s).is_multiple_of(2) {
            request.qoi(name, tol)
        } else {
            request.qoi_abs(name, tol)
        };
    }
    if xorshift(&mut s).is_multiple_of(3) {
        let lo = (xorshift(&mut s) % 1000) as usize;
        let hi = lo + 1 + (xorshift(&mut s) % 1000) as usize;
        request = request.region(lo, hi);
    }
    if xorshift(&mut s).is_multiple_of(3) {
        request = request.byte_budget((xorshift(&mut s) % (1 << 30)) as usize);
    }
    request
}

type Fingerprint = (
    Vec<(
        String,
        u64,
        pqr_core::request::ToleranceMode,
        Option<(usize, usize)>,
    )>,
    Option<usize>,
);

fn request_fingerprint(r: &RetrievalRequest) -> Fingerprint {
    let targets = r
        .targets()
        .iter()
        .map(|t| (t.name.clone(), t.tolerance.to_bits(), t.mode, t.region))
        .collect();
    (targets, r.budget())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_request_roundtrip_is_byte_identical(
        n_targets in 1usize..6,
        seed in 0u64..10_000,
        tol_exp in -12i32..3,
    ) {
        let request = arb_request(n_targets, seed, tol_exp);
        let wire = request.to_wire_bytes();
        let decoded = RetrievalRequest::from_wire_bytes(&wire).unwrap();
        // the decoded request is field-for-field bit-equal...
        prop_assert_eq!(request_fingerprint(&request), request_fingerprint(&decoded));
        // ...and re-encoding is a byte-level fixed point
        prop_assert_eq!(wire, decoded.to_wire_bytes());
    }

    #[test]
    fn prop_every_strict_prefix_of_a_request_fails_to_parse(
        n_targets in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let wire = arb_request(n_targets, seed, -4).to_wire_bytes();
        for cut in 0..wire.len() {
            prop_assert!(
                RetrievalRequest::from_wire_bytes(&wire[..cut]).is_err(),
                "prefix of length {} parsed", cut
            );
        }
    }

    #[test]
    fn prop_retrieve_body_roundtrips(
        n_targets in 1usize..5,
        seed in 0u64..10_000,
        n_values in 0usize..4,
        save_progress in proptest::bool::ANY,
    ) {
        let body = RetrieveBody {
            request: arb_request(n_targets, seed, -5),
            want_values: (0..n_values).map(|k| NAMES[k].to_string()).collect(),
            save_progress,
        };
        let decoded = RetrieveBody::from_bytes(&body.to_bytes()).unwrap();
        prop_assert_eq!(
            request_fingerprint(&body.request),
            request_fingerprint(&decoded.request)
        );
        prop_assert_eq!(body.want_values, decoded.want_values);
        prop_assert_eq!(body.save_progress, decoded.save_progress);
    }

    #[test]
    fn prop_remote_report_roundtrips(
        seed in 0u64..10_000,
        n_targets in 0usize..4,
        n_vals in 0usize..64,
        with_progress in proptest::bool::ANY,
        satisfied in proptest::bool::ANY,
    ) {
        let mut s = seed | 1;
        let values: Vec<f64> = (0..n_vals)
            .map(|_| (xorshift(&mut s) as f64 / u64::MAX as f64 - 0.5) * 1e6)
            .collect();
        let report = RemoteReport {
            satisfied,
            budget_exhausted: !satisfied,
            iterations: xorshift(&mut s) % 100,
            bytes_fetched: xorshift(&mut s),
            total_fetched: xorshift(&mut s),
            shared_bytes_saved: xorshift(&mut s) % (1 << 40),
            queue_wait_ms: xorshift(&mut s) % 10_000,
            store_fragments_decoded: xorshift(&mut s) % 1000,
            store_refine_reuses: xorshift(&mut s) % 1000,
            recompose_passes: xorshift(&mut s) % 10_000,
            recon_cache_hits: xorshift(&mut s) % 1000,
            reconstruct_ms: xorshift(&mut s) % 100_000,
            targets: (0..n_targets)
                .map(|k| RemoteTarget {
                    name: NAMES[k].to_string(),
                    satisfied: xorshift(&mut s).is_multiple_of(2),
                    tol_abs: 10f64.powi(-((xorshift(&mut s) % 12) as i32)),
                    max_est_error: (xorshift(&mut s) as f64) / 1e12,
                    bytes: xorshift(&mut s) % (1 << 33),
                })
                .collect(),
            values: BTreeMap::from([("V".to_string(), values)]),
            progress: with_progress.then(|| (0..(seed % 200) as u8).collect()),
        };
        prop_assert_eq!(RemoteReport::from_bytes(&report.to_bytes()).unwrap(), report);
    }

    #[test]
    fn prop_hostile_frame_headers_never_panic_and_never_over_allocate(
        bytes in proptest::collection::vec(any::<u8>(), 12),
    ) {
        let mut h = [0u8; 12];
        h.copy_from_slice(&bytes);
        // must never panic; an accepted header must be within policy
        if let Ok(header) = decode_header(&h) {
            prop_assert!(header.len as usize <= MAX_FRAME_LEN);
            prop_assert_eq!(&h[..4], pqr_transfer::wire::FRAME_MAGIC);
        }
    }

    #[test]
    fn prop_oversized_length_prefixes_are_refused(
        kind in 0u16..200,
        excess in 1u32..(1 << 10),
    ) {
        let mut h = [0u8; 12];
        h[..4].copy_from_slice(pqr_transfer::wire::FRAME_MAGIC);
        h[4..6].copy_from_slice(&pqr_transfer::wire::WIRE_VERSION.to_le_bytes());
        h[6..8].copy_from_slice(&kind.to_le_bytes());
        let len = (MAX_FRAME_LEN as u32).saturating_add(excess);
        h[8..12].copy_from_slice(&len.to_le_bytes());
        prop_assert!(decode_header(&h).is_err());
    }

    #[test]
    fn prop_hostile_request_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // any result is acceptable; panicking or aborting on allocation
        // is not (hostile counts are vetted before Vec::with_capacity)
        let _ = RetrievalRequest::from_wire_bytes(&bytes);
        let _ = RetrieveBody::from_bytes(&bytes);
        let _ = RemoteReport::from_bytes(&bytes);
    }

    #[test]
    fn prop_framing_is_chunk_size_independent(
        body in proptest::collection::vec(any::<u8>(), 0..2048),
        kind in 0u16..200,
        chunk in 1usize..7,
    ) {
        let mut encoded = Vec::new();
        write_frame(&mut encoded, kind, &body).unwrap();
        let mut rationed = FaultyStream::new(&encoded[..]).short_reads(chunk);
        let (got_kind, got_body, wire_bytes) = read_frame(&mut rationed).unwrap();
        prop_assert_eq!(got_kind, kind);
        prop_assert_eq!(got_body, body);
        prop_assert_eq!(wire_bytes, encoded.len());
    }
}
