//! # pqr-qoi — derivable-QoI error-bound calculus
//!
//! Implementation of §IV of *"Error-controlled Progressive Retrieval of
//! Scientific Data under Derivable Quantities of Interest"* (SC'24): given a
//! reconstructed value (vector) `x` and the L∞ error bound(s) `ε` used during
//! progressive retrieval, compute a **guaranteed upper bound** on the error
//! of any *derivable QoI* — a function composed from the basis families of
//! Table II:
//!
//! | family | formula | theorem |
//! |---|---|---|
//! | polynomial | `Σ aᵢxⁱ` | Thm 1 (+7, +8) |
//! | square root | `√x` | Thm 2 |
//! | radical | `1/(x+c)` | Thm 3 |
//! | addition | `Σ aᵢxᵢ` | Thm 4 |
//! | multiplication | `x₁·x₂` | Thm 5 |
//! | division | `x₁/x₂` | Thm 6 |
//! | composition | `f∘g` | Thm 9, Lem 1, Lem 2 |
//!
//! The crate provides:
//!
//! * [`bounds`] — the theorem formulas as standalone, unit-tested functions;
//! * [`expr`] — a QoI expression tree ([`QoiExpr`]) whose recursive
//!   evaluation applies the composition rules (Thm 9 / Lemmas 1–2) to return
//!   a [`Bounded`] `{value, bound}` pair;
//! * [`ge`] — the six GE CFD QoIs of Eq. (1)–(6), pre-built;
//! * [`library`] — additional ready-made QoIs (kinetic energy, momentum,
//!   species products, …) demonstrating genericity (§IV-D).
//!
//! ## The key invariant
//!
//! For any derivable QoI `f`, reconstructed input `x`, bounds `ε`, and any
//! "true" input `x'` with `|x'ᵢ − xᵢ| ≤ εᵢ` for all `i`:
//!
//! ```text
//! |f(x') − f(x)|  ≤  f.eval_bounded(x, ε, cfg).bound
//! ```
//!
//! This invariant is what lets the retrieval engine stop fetching data the
//! moment the *estimated* QoI error meets the user's tolerance — without ever
//! seeing the original data. It is enforced by unit tests on every theorem
//! and by property-based tests on random expression trees.
//!
//! A bound of [`f64::INFINITY`] means the theorem preconditions failed at
//! this point (e.g. Thm 3/6 with `ε ≥ |denominator|`, or `√` near zero); the
//! engine reacts by refining the primary data further, exactly as the paper
//! prescribes.
//!
//! ## Example
//!
//! ```
//! use pqr_qoi::ge;
//!
//! let vtot = ge::v_total();
//! // reconstructed (Vx,Vy,Vz,P,D) and the error bounds used to retrieve them
//! let x = [3.0, 4.0, 12.0, 101_325.0, 1.2];
//! let eps = [1e-3, 1e-3, 1e-3, 1.0, 1e-4];
//! let out = vtot.eval_bounded(&x, &eps, &Default::default());
//! assert!((out.value - 13.0).abs() < 1e-12);
//! // any true velocity within ±1e-3 per component has |Vtot' − 13| ≤ bound
//! assert!(out.bound >= 1.4e-3 && out.bound < 3.0e-3);
//! ```

pub mod bounds;
pub mod expr;
pub mod ge;
pub mod interval;
pub mod library;
pub mod parse;
pub mod serial;

pub use bounds::{BoundConfig, Estimator, SqrtMode};
pub use expr::{Bounded, QoiExpr};
pub use interval::{eval_interval, interval_bound, Interval};
pub use parse::parse;
