//! Binary serialization of QoI expressions.
//!
//! The archive must carry its QoI registry (names, expressions, value
//! ranges) so that the retrieval side — a different process, possibly a
//! different machine (Fig. 1) — can reconstruct the exact estimator that
//! the refactor side registered. Expressions serialize to a compact
//! tagged pre-order byte stream.

use crate::expr::QoiExpr;
use pqr_util::byteio::{ByteReader, ByteWriter};
use pqr_util::error::{PqrError, Result};

const TAG_VAR: u8 = 0;
const TAG_CONST: u8 = 1;
const TAG_POW: u8 = 2;
const TAG_POLY: u8 = 3;
const TAG_SQRT: u8 = 4;
const TAG_RADICAL: u8 = 5;
const TAG_SUM: u8 = 6;
const TAG_MUL: u8 = 7;
const TAG_DIV: u8 = 8;
const TAG_ABS: u8 = 9;
const TAG_LN: u8 = 10;
const TAG_EXP: u8 = 11;

/// Maximum accepted nesting depth when decoding (stack-safety guard for
/// hostile streams).
pub const MAX_DEPTH: usize = 256;

/// Serializes an expression to bytes.
pub fn to_bytes(expr: &QoiExpr) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(expr.node_count() * 10);
    write_expr(&mut w, expr);
    w.finish()
}

fn write_expr(w: &mut ByteWriter, expr: &QoiExpr) {
    match expr {
        QoiExpr::Var(i) => {
            w.put_u8(TAG_VAR);
            w.put_u32(*i as u32);
        }
        QoiExpr::Const(c) => {
            w.put_u8(TAG_CONST);
            w.put_f64(*c);
        }
        QoiExpr::Pow { n, arg } => {
            w.put_u8(TAG_POW);
            w.put_u32(*n);
            write_expr(w, arg);
        }
        QoiExpr::Poly { coeffs, arg } => {
            w.put_u8(TAG_POLY);
            w.put_f64_slice(coeffs);
            write_expr(w, arg);
        }
        QoiExpr::Sqrt(arg) => {
            w.put_u8(TAG_SQRT);
            write_expr(w, arg);
        }
        QoiExpr::Radical { c, arg } => {
            w.put_u8(TAG_RADICAL);
            w.put_f64(*c);
            write_expr(w, arg);
        }
        QoiExpr::Sum(terms) => {
            w.put_u8(TAG_SUM);
            w.put_u32(terms.len() as u32);
            for (a, e) in terms {
                w.put_f64(*a);
                write_expr(w, e);
            }
        }
        QoiExpr::Mul(l, r) => {
            w.put_u8(TAG_MUL);
            write_expr(w, l);
            write_expr(w, r);
        }
        QoiExpr::Div(l, r) => {
            w.put_u8(TAG_DIV);
            write_expr(w, l);
            write_expr(w, r);
        }
        QoiExpr::Abs(arg) => {
            w.put_u8(TAG_ABS);
            write_expr(w, arg);
        }
        QoiExpr::Ln(arg) => {
            w.put_u8(TAG_LN);
            write_expr(w, arg);
        }
        QoiExpr::Exp(arg) => {
            w.put_u8(TAG_EXP);
            write_expr(w, arg);
        }
    }
}

/// Deserializes an expression from [`to_bytes`] output.
pub fn from_bytes(bytes: &[u8]) -> Result<QoiExpr> {
    let mut r = ByteReader::new(bytes);
    let expr = read_expr(&mut r, 0)?;
    if r.remaining() != 0 {
        return Err(PqrError::CorruptStream(format!(
            "{} trailing bytes after expression",
            r.remaining()
        )));
    }
    Ok(expr)
}

fn read_expr(r: &mut ByteReader<'_>, depth: usize) -> Result<QoiExpr> {
    if depth > MAX_DEPTH {
        return Err(PqrError::CorruptStream("expression too deep".into()));
    }
    let tag = r.get_u8()?;
    Ok(match tag {
        TAG_VAR => QoiExpr::Var(r.get_u32()? as usize),
        TAG_CONST => QoiExpr::Const(r.get_f64()?),
        TAG_POW => {
            let n = r.get_u32()?;
            QoiExpr::Pow {
                n,
                arg: Box::new(read_expr(r, depth + 1)?),
            }
        }
        TAG_POLY => {
            let coeffs = r.get_f64_vec()?;
            QoiExpr::Poly {
                coeffs,
                arg: Box::new(read_expr(r, depth + 1)?),
            }
        }
        TAG_SQRT => QoiExpr::Sqrt(Box::new(read_expr(r, depth + 1)?)),
        TAG_RADICAL => {
            let c = r.get_f64()?;
            QoiExpr::Radical {
                c,
                arg: Box::new(read_expr(r, depth + 1)?),
            }
        }
        TAG_SUM => {
            let n = r.get_u32()? as usize;
            if n > bytes_remaining_guard(r) {
                return Err(PqrError::CorruptStream("sum arity too large".into()));
            }
            let mut terms = Vec::with_capacity(n);
            for _ in 0..n {
                let a = r.get_f64()?;
                terms.push((a, read_expr(r, depth + 1)?));
            }
            QoiExpr::Sum(terms)
        }
        TAG_MUL => QoiExpr::Mul(
            Box::new(read_expr(r, depth + 1)?),
            Box::new(read_expr(r, depth + 1)?),
        ),
        TAG_DIV => QoiExpr::Div(
            Box::new(read_expr(r, depth + 1)?),
            Box::new(read_expr(r, depth + 1)?),
        ),
        TAG_ABS => QoiExpr::Abs(Box::new(read_expr(r, depth + 1)?)),
        TAG_LN => QoiExpr::Ln(Box::new(read_expr(r, depth + 1)?)),
        TAG_EXP => QoiExpr::Exp(Box::new(read_expr(r, depth + 1)?)),
        t => {
            return Err(PqrError::CorruptStream(format!(
                "unknown expression tag {t}"
            )))
        }
    })
}

/// Upper bound on plausible element counts given remaining bytes (every
/// term needs at least 9 bytes: weight + tag).
fn bytes_remaining_guard(r: &ByteReader<'_>) -> usize {
    r.remaining() / 9 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ge;

    #[test]
    fn roundtrip_all_ge_qois() {
        for (name, expr) in ge::all() {
            let bytes = to_bytes(&expr);
            let back = from_bytes(&bytes).unwrap();
            assert_eq!(expr, back, "{name} did not roundtrip");
        }
    }

    #[test]
    fn roundtrip_every_node_kind() {
        let expr = QoiExpr::var(0)
            .poly(&[1.0, 2.0, 0.25])
            .sqrt()
            .radical(3.5)
            .mul(QoiExpr::var(1).pow(3))
            .div(QoiExpr::sum(vec![
                (2.0, QoiExpr::var(2)),
                (-1.0, QoiExpr::constant(7.0)),
            ]))
            .abs();
        let back = from_bytes(&to_bytes(&expr)).unwrap();
        assert_eq!(expr, back);
        // behaviour equivalence, not just structural
        let x = [1.3, 0.7, 2.1];
        assert_eq!(expr.eval(&x), back.eval(&x));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = to_bytes(&QoiExpr::var(0));
        bytes.push(0);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = to_bytes(&ge::pt());
        for cut in [1, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(from_bytes(&[42]).is_err());
    }

    #[test]
    fn hostile_depth_rejected() {
        // a chain of MAX_DEPTH+2 sqrt tags with no leaf
        let mut bytes = vec![TAG_SQRT; MAX_DEPTH + 2];
        bytes.push(TAG_VAR);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn hostile_sum_arity_rejected() {
        let mut w = ByteWriter::new();
        w.put_u8(TAG_SUM);
        w.put_u32(u32::MAX);
        assert!(from_bytes(&w.finish()).is_err());
    }

    #[test]
    fn compactness() {
        // PT is the deepest GE QoI; its serialization should still be small
        let bytes = to_bytes(&ge::pt());
        assert!(bytes.len() < 400, "PT serializes to {} bytes", bytes.len());
    }
}
