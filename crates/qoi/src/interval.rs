//! Interval-arithmetic QoI error estimation — the generic alternative to
//! the paper's theorem-based bounds, kept for ablation.
//!
//! The paper derives a dedicated error-bound formula per basis function
//! (§IV). A natural question for any such design is: *what would a generic
//! range analysis buy instead?* This module answers it. Every admissible
//! true input lies in the box `[xᵢ−εᵢ, xᵢ+εᵢ]`; propagating that box through
//! the expression with outward-rounded interval arithmetic yields an
//! enclosure `[lo, hi] ⊇ f(box)`, and `max(hi − f(x), f(x) − lo)` is a
//! guaranteed QoI error bound — the same soundness contract as the theorem
//! estimator, obtained without any per-function derivation.
//!
//! The trade-offs the ablation benches quantify:
//!
//! * Interval arithmetic suffers the **dependency problem**: `x·x` over
//!   `[−1, 1]` encloses `[−1, 1]` instead of `[0, 1]`, so repeated
//!   variables (e.g. `Mach²` inside PT) widen faster than the paper's
//!   composition, which anchors each subterm at its reconstructed value.
//! * Conversely, intervals stay **finite where the paper's formulas blow
//!   up** (√ at 0 without the mask, Theorem 2), behaving like the exact-
//!   supremum mode.
//!
//! Select it per evaluation via [`BoundConfig::estimator`](crate::bounds::BoundConfig::estimator); the retrieval
//! engine then runs unchanged.
//!
//! ```
//! use pqr_qoi::{interval_bound, QoiExpr};
//!
//! // √(x² + y²) at the origin: the paper's Theorem 2 is unboundable here
//! // (hence the zero mask); the interval enclosure stays finite.
//! let vtot = (QoiExpr::var(0).pow(2) + QoiExpr::var(1).pow(2)).sqrt();
//! let b = interval_bound(&vtot, &[0.0, 0.0], &[1e-4, 1e-4]);
//! assert!(b.is_finite() && b < 2e-4);
//! ```

use crate::bounds::INFLATE;
use crate::expr::QoiExpr;

/// A closed interval `[lo, hi]`, possibly unbounded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower end (may be `-∞`).
    pub lo: f64,
    /// Upper end (may be `+∞`).
    pub hi: f64,
}

impl Interval {
    /// The interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Self { lo: v, hi: v }
    }

    /// `[lo, hi]`; panics in debug if `lo > hi` or either end is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        debug_assert!(!lo.is_nan() && !hi.is_nan());
        debug_assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// The whole real line — the "unboundable" element. Every operation on
    /// it stays unbounded, mirroring the theorem estimator's `∞` bound.
    pub fn unbounded() -> Self {
        Self {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
        }
    }

    /// True if this is (semi-)unbounded.
    pub fn is_unbounded(&self) -> bool {
        self.lo.is_infinite() || self.hi.is_infinite()
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// True if `0 ∈ [lo, hi]`.
    pub fn contains_zero(&self) -> bool {
        self.lo <= 0.0 && self.hi >= 0.0
    }

    /// Outward rounding guard: IEEE ops on the endpoints can round inward
    /// by an ulp, so every derived interval is nudged outward by the same
    /// relative slack the theorem estimator uses ([`INFLATE`]).
    fn widen(self) -> Self {
        if self.is_unbounded() {
            return self;
        }
        let pad = |v: f64| v.abs() * INFLATE + f64::MIN_POSITIVE;
        Self {
            lo: self.lo - pad(self.lo),
            hi: self.hi + pad(self.hi),
        }
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)] // by-value combinator set, like QoiExpr's
    pub fn add(self, rhs: Self) -> Self {
        Self::new(self.lo + rhs.lo, self.hi + rhs.hi).widen()
    }

    /// `k · self`.
    pub fn scale(self, k: f64) -> Self {
        let (a, b) = (k * self.lo, k * self.hi);
        Self::new(a.min(b), a.max(b)).widen()
    }

    /// `self · rhs` (four-corner rule).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Self) -> Self {
        if self.is_unbounded() || rhs.is_unbounded() {
            return Self::unbounded();
        }
        let c = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let lo = c.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self::new(lo, hi).widen()
    }

    /// `1 / self`; unbounded if the interval reaches a pole.
    pub fn recip(self) -> Self {
        if self.contains_zero() || self.is_unbounded() {
            return Self::unbounded();
        }
        Self::new(1.0 / self.hi, 1.0 / self.lo).widen()
    }

    /// `self / rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Self) -> Self {
        self.mul(rhs.recip())
    }

    /// `selfⁿ` (dependency-aware: far tighter than n-fold `mul`).
    pub fn pow(self, n: u32) -> Self {
        if n == 0 {
            return Self::point(1.0);
        }
        if self.is_unbounded() {
            return Self::unbounded();
        }
        let (pl, ph) = (self.lo.powi(n as i32), self.hi.powi(n as i32));
        let iv = if n % 2 == 1 {
            Self::new(pl, ph) // odd powers are monotone
        } else if self.contains_zero() {
            Self::new(0.0, pl.max(ph))
        } else {
            Self::new(pl.min(ph), pl.max(ph))
        };
        iv.widen()
    }

    /// `√self`; unbounded when the whole interval is negative (the QoI is
    /// undefined there), clipped at 0 on the left otherwise — the same
    /// convention as the exact-supremum √ estimator.
    pub fn sqrt(self) -> Self {
        if self.hi < 0.0 || self.is_unbounded() {
            return Self::unbounded();
        }
        Self::new(self.lo.max(0.0).sqrt(), self.hi.sqrt()).widen()
    }

    /// `|self|`.
    pub fn abs(self) -> Self {
        if self.is_unbounded() {
            return Self::unbounded();
        }
        let iv = if self.contains_zero() {
            Self::new(0.0, self.lo.abs().max(self.hi.abs()))
        } else {
            let (a, b) = (self.lo.abs(), self.hi.abs());
            Self::new(a.min(b), a.max(b))
        };
        iv.widen()
    }

    /// `ln(self)`; unbounded when the interval reaches 0.
    pub fn ln(self) -> Self {
        if self.lo <= 0.0 || self.is_unbounded() {
            return Self::unbounded();
        }
        Self::new(self.lo.ln(), self.hi.ln()).widen()
    }

    /// `exp(self)`.
    pub fn exp(self) -> Self {
        if self.is_unbounded() {
            return Self::unbounded();
        }
        Self::new(self.lo.exp(), self.hi.exp()).widen()
    }
}

/// Encloses the range of `expr` over the box `[xᵢ−εᵢ, xᵢ+εᵢ]`.
pub fn eval_interval(expr: &QoiExpr, x: &[f64], eps: &[f64]) -> Interval {
    match expr {
        QoiExpr::Var(i) => Interval::new(x[*i] - eps[*i], x[*i] + eps[*i]),
        QoiExpr::Const(c) => Interval::point(*c),
        QoiExpr::Pow { n, arg } => eval_interval(arg, x, eps).pow(*n),
        QoiExpr::Poly { coeffs, arg } => {
            let base = eval_interval(arg, x, eps);
            let mut acc = Interval::point(0.0);
            for (i, &a) in coeffs.iter().enumerate() {
                if a != 0.0 {
                    acc = acc.add(base.pow(i as u32).scale(a));
                }
            }
            acc
        }
        QoiExpr::Sqrt(arg) => eval_interval(arg, x, eps).sqrt(),
        QoiExpr::Radical { c, arg } => eval_interval(arg, x, eps).add(Interval::point(*c)).recip(),
        QoiExpr::Sum(terms) => {
            let mut acc = Interval::point(0.0);
            for (a, e) in terms {
                acc = acc.add(eval_interval(e, x, eps).scale(*a));
            }
            acc
        }
        QoiExpr::Mul(l, r) => eval_interval(l, x, eps).mul(eval_interval(r, x, eps)),
        QoiExpr::Div(l, r) => eval_interval(l, x, eps).div(eval_interval(r, x, eps)),
        QoiExpr::Abs(arg) => eval_interval(arg, x, eps).abs(),
        QoiExpr::Ln(arg) => eval_interval(arg, x, eps).ln(),
        QoiExpr::Exp(arg) => eval_interval(arg, x, eps).exp(),
    }
}

/// The interval-derived QoI error bound:
/// `sup |f(x') − f(x)| ≤ max(hi − f(x), f(x) − lo)` since `f(x') ∈ [lo, hi]`.
///
/// Returns `∞` when the enclosure is unbounded or the reconstructed value
/// itself is not finite (e.g. √ of a negative reconstruction).
pub fn interval_bound(expr: &QoiExpr, x: &[f64], eps: &[f64]) -> f64 {
    let value = expr.eval(x);
    if !value.is_finite() {
        return f64::INFINITY;
    }
    let enc = eval_interval(expr, x, eps);
    if enc.is_unbounded() {
        return f64::INFINITY;
    }
    (enc.hi - value).max(value - enc.lo).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{BoundConfig, SqrtMode};
    use crate::ge;

    fn sample_worst(expr: &QoiExpr, x: &[f64], eps: &[f64], steps: usize) -> f64 {
        // dense corner+grid sampling of the admissible box (≤ 3 vars)
        let fx = expr.eval(x);
        let nv = x.len();
        let mut worst = 0.0f64;
        let mut idx = vec![0usize; nv];
        loop {
            let xp: Vec<f64> = (0..nv)
                .map(|v| x[v] - eps[v] + 2.0 * eps[v] * idx[v] as f64 / steps as f64)
                .collect();
            let e = (expr.eval(&xp) - fx).abs();
            if e.is_finite() && e > worst {
                worst = e;
            }
            let mut a = nv;
            loop {
                if a == 0 {
                    return worst;
                }
                a -= 1;
                idx[a] += 1;
                if idx[a] <= steps {
                    break;
                }
                idx[a] = 0;
            }
        }
    }

    #[test]
    fn interval_bound_dominates_sampled_error_vtot() {
        let vtot = crate::library::velocity_magnitude(0, 3);
        let x = [3.0, -4.0, 1.5];
        let eps = [0.1, 0.2, 0.05];
        let b = interval_bound(&vtot, &x, &eps);
        let w = sample_worst(&vtot, &x, &eps, 20);
        assert!(w <= b, "{w} > {b}");
    }

    #[test]
    fn interval_bound_dominates_on_all_ge_qois() {
        // Vx, Vy, Vz, P, D at a physically plausible point
        let x = [30.0, -12.0, 5.0, 101_325.0, 1.2];
        let eps = [0.5, 0.5, 0.5, 50.0, 0.001];
        for (name, expr) in ge::all() {
            let b = interval_bound(&expr, &x, &eps);
            let w = sample_worst(&expr, &x, &eps, 6);
            assert!(w <= b, "{name}: sampled {w} > interval bound {b}");
        }
    }

    #[test]
    fn interval_stays_finite_at_sqrt_zero() {
        // where the paper's Theorem 2 blows up, intervals behave like the
        // exact-supremum mode
        let vtot = crate::library::velocity_magnitude(0, 3);
        let x = [0.0, 0.0, 0.0];
        let eps = [1e-4, 1e-4, 1e-4];
        let b = interval_bound(&vtot, &x, &eps);
        assert!(b.is_finite());
        let paper = vtot.eval_bounded(&x, &eps, &BoundConfig::default());
        assert!(paper.bound.is_infinite(), "paper mode must blow up here");
    }

    #[test]
    fn dependency_problem_shows_in_enclosures() {
        // x² with x ∈ [−1, 1] has true range [0, 1]. The dependency-aware
        // pow() recovers it; the four-corner Mul(x, x) cannot know both
        // factors are the same variable and admits a spurious negative lobe.
        // (The *anchored* error bounds can still coincide when the upper
        // side dominates — which is exactly why the ablation reports both.)
        let x = [0.0];
        let eps = [1.0];
        let via_pow = eval_interval(&QoiExpr::var(0).pow(2), &x, &eps);
        let via_mul = eval_interval(&QoiExpr::var(0).mul(QoiExpr::var(0)), &x, &eps);
        assert!(via_pow.lo >= -1e-10, "pow admits no negative lobe");
        assert!(via_mul.lo <= -1.0 + 1e-10, "mul suffers dependency");
        assert!(via_mul.width() > via_pow.width() * 1.9);
    }

    #[test]
    fn division_by_straddling_interval_is_unboundable() {
        let q = QoiExpr::var(0).div(QoiExpr::var(1));
        assert!(interval_bound(&q, &[1.0, 0.5], &[0.0, 1.0]).is_infinite());
        assert!(interval_bound(&q, &[1.0, 2.0], &[0.0, 0.5]).is_finite());
    }

    #[test]
    fn exact_inputs_give_zero_width() {
        let pt = ge::pt();
        let x = [30.0, -12.0, 5.0, 101_325.0, 1.2];
        let eps = [0.0; 5];
        let b = interval_bound(&pt, &x, &eps);
        // widening adds only float slack
        assert!(b < 1e-6, "zero-eps interval bound {b}");
    }

    #[test]
    fn ln_exp_intervals() {
        let le = QoiExpr::var(0).ln();
        assert!(interval_bound(&le, &[1.0, 0.0], &[2.0, 0.0]).is_infinite());
        let b = interval_bound(&le, &[10.0, 0.0], &[1.0, 0.0]);
        let w = sample_worst(&le, &[10.0, 0.0], &[1.0, 0.0], 50);
        assert!(w <= b && b.is_finite());

        let ee = QoiExpr::var(0).exp();
        let b = interval_bound(&ee, &[2.0, 0.0], &[0.5, 0.0]);
        let w = sample_worst(&ee, &[2.0, 0.0], &[0.5, 0.0], 50);
        assert!(w <= b && b.is_finite());
    }

    #[test]
    fn estimator_mode_flows_through_eval_bounded() {
        let vtot = crate::library::velocity_magnitude(0, 3);
        let x = [3.0, 4.0, 0.0];
        let eps = [0.01, 0.01, 0.01];
        let theorem = vtot.eval_bounded(&x, &eps, &BoundConfig::default());
        let cfg = BoundConfig {
            estimator: crate::bounds::Estimator::Interval,
            ..Default::default()
        };
        let interval = vtot.eval_bounded(&x, &eps, &cfg);
        assert_eq!(theorem.value, interval.value);
        assert!(interval.bound.is_finite());
        // both are sound; neither dominates universally — just sanity-check
        // they are in the same decade here
        assert!(interval.bound < theorem.bound * 10.0 + 1.0);
    }

    #[test]
    fn exact_sqrt_and_interval_agree_at_zero() {
        let e = QoiExpr::var(0).sqrt();
        let x = [0.0];
        let eps = [1e-6];
        let exact = e.eval_bounded(
            &x,
            &eps,
            &BoundConfig {
                sqrt_mode: SqrtMode::Exact,
                ..Default::default()
            },
        );
        let iv = interval_bound(&e, &x, &eps);
        assert!((exact.bound - iv).abs() < 1e-12, "{} vs {iv}", exact.bound);
    }
}
