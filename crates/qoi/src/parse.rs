//! A small text grammar for derivable QoIs.
//!
//! Lets tools and config files express QoIs without writing Rust — the CLI
//! and examples use it. Grammar (precedence low→high):
//!
//! ```text
//! expr    := term (('+' | '-') term)*
//! term    := factor (('*' | '/') factor)*
//! factor  := unary ('^' integer)?
//! unary   := '-' unary | atom
//! atom    := number | var | call | '(' expr ')' | '|' expr '|'
//! var     := 'x' integer            (variable index, e.g. x0, x3)
//! call    := ('sqrt' | 'abs' | 'ln' | 'exp') '(' expr ')'
//!          | 'radical' '(' expr ',' number ')'      // 1/(expr + c)
//!          | 'poly' '(' expr (',' number)+ ')'      // Σ cᵢ·exprⁱ
//! ```
//!
//! Non-integer powers must be decomposed the way the paper does (e.g. write
//! `sqrt((...)^7)` for `(...)^3.5`) — the parser rejects fractional
//! exponents with a pointer to that rule.
//!
//! ```
//! use pqr_qoi::parse::parse;
//! let vtot = parse("sqrt(x0^2 + x1^2 + x2^2)").unwrap();
//! assert_eq!(vtot.eval(&[3.0, 4.0, 12.0]), 13.0);
//! ```

use crate::expr::QoiExpr;
use pqr_util::error::{PqrError, Result};

/// Parses a QoI expression from text.
pub fn parse(input: &str) -> Result<QoiExpr> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(err(format!(
            "unexpected trailing input at token {:?}",
            p.tokens[p.pos]
        )));
    }
    Ok(expr)
}

fn err(msg: String) -> PqrError {
    PqrError::InvalidRequest(format!("QoI parse error: {msg}"))
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Var(usize),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    LParen,
    RParen,
    Comma,
    Pipe,
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '^' => {
                out.push(Tok::Caret);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '|' => {
                out.push(Tok::Pipe);
                i += 1;
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || ((chars[i] == '+' || chars[i] == '-')
                            && i > start
                            && (chars[i - 1] == 'e' || chars[i - 1] == 'E')))
                {
                    i += 1;
                }
                let s: String = chars[start..i].iter().collect();
                let v = s
                    .parse::<f64>()
                    .map_err(|_| err(format!("bad number '{s}'")))?;
                out.push(Tok::Num(v));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let s: String = chars[start..i].iter().collect();
                // variable: x<digits>
                if let Some(rest) = s.strip_prefix('x') {
                    if !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()) {
                        out.push(Tok::Var(rest.parse().unwrap()));
                        continue;
                    }
                }
                out.push(Tok::Ident(s));
            }
            other => return Err(err(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| err("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Tok) -> Result<()> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(err(format!("expected {want:?}, got {got:?}")))
        }
    }

    fn expr(&mut self) -> Result<QoiExpr> {
        let mut terms = vec![(1.0, self.term()?)];
        while let Some(t) = self.peek() {
            let sign = match t {
                Tok::Plus => 1.0,
                Tok::Minus => -1.0,
                _ => break,
            };
            self.pos += 1;
            terms.push((sign, self.term()?));
        }
        if terms.len() == 1 && terms[0].0 == 1.0 {
            Ok(terms.pop().unwrap().1)
        } else {
            Ok(QoiExpr::Sum(terms))
        }
    }

    fn term(&mut self) -> Result<QoiExpr> {
        let mut acc = self.factor()?;
        while let Some(t) = self.peek() {
            match t {
                Tok::Star => {
                    self.pos += 1;
                    let rhs = self.factor()?;
                    // constant folding keeps scalar multiples as Thm-8 scales
                    acc = match (constant_of(&acc), constant_of(&rhs)) {
                        (Some(a), _) => rhs.scale(a),
                        (_, Some(b)) => acc.scale(b),
                        _ => acc.mul(rhs),
                    };
                }
                Tok::Slash => {
                    self.pos += 1;
                    let rhs = self.factor()?;
                    acc = match constant_of(&rhs) {
                        Some(b) if b != 0.0 => acc.scale(1.0 / b),
                        _ => acc.div(rhs),
                    };
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn factor(&mut self) -> Result<QoiExpr> {
        let base = self.unary()?;
        if let Some(Tok::Caret) = self.peek() {
            self.pos += 1;
            match self.next()? {
                Tok::Num(v) => {
                    if v.fract() != 0.0 || !(0.0..=u32::MAX as f64).contains(&v) {
                        return Err(err(format!(
                            "exponent {v} is not a non-negative integer; decompose \
                             fractional powers the paper's way, e.g. (u)^3.5 = sqrt((u)^7)"
                        )));
                    }
                    Ok(base.pow(v as u32))
                }
                t => Err(err(format!("expected integer exponent, got {t:?}"))),
            }
        } else {
            Ok(base)
        }
    }

    fn unary(&mut self) -> Result<QoiExpr> {
        if let Some(Tok::Minus) = self.peek() {
            self.pos += 1;
            return Ok(self.unary()?.scale(-1.0));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<QoiExpr> {
        match self.next()? {
            Tok::Num(v) => Ok(QoiExpr::constant(v)),
            Tok::Var(i) => Ok(QoiExpr::var(i)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Pipe => {
                let e = self.expr()?;
                self.expect(&Tok::Pipe)?;
                Ok(e.abs())
            }
            Tok::Ident(name) => self.call(&name),
            t => Err(err(format!("unexpected token {t:?}"))),
        }
    }

    fn call(&mut self, name: &str) -> Result<QoiExpr> {
        self.expect(&Tok::LParen)?;
        match name {
            "sqrt" => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e.sqrt())
            }
            "abs" => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e.abs())
            }
            "ln" => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e.ln())
            }
            "exp" => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e.exp())
            }
            "radical" => {
                let e = self.expr()?;
                self.expect(&Tok::Comma)?;
                let c = match self.next()? {
                    Tok::Num(v) => v,
                    Tok::Minus => match self.next()? {
                        Tok::Num(v) => -v,
                        t => return Err(err(format!("expected number, got {t:?}"))),
                    },
                    t => return Err(err(format!("expected number, got {t:?}"))),
                };
                self.expect(&Tok::RParen)?;
                Ok(e.radical(c))
            }
            "poly" => {
                let e = self.expr()?;
                let mut coeffs = Vec::new();
                loop {
                    match self.next()? {
                        Tok::Comma => {
                            let mut sign = 1.0;
                            let mut t = self.next()?;
                            if t == Tok::Minus {
                                sign = -1.0;
                                t = self.next()?;
                            }
                            match t {
                                Tok::Num(v) => coeffs.push(sign * v),
                                other => {
                                    return Err(err(format!("expected number, got {other:?}")))
                                }
                            }
                        }
                        Tok::RParen => break,
                        t => return Err(err(format!("expected ',' or ')', got {t:?}"))),
                    }
                }
                if coeffs.is_empty() {
                    return Err(err("poly() needs at least one coefficient".into()));
                }
                Ok(e.poly(&coeffs))
            }
            other => Err(err(format!("unknown function '{other}'"))),
        }
    }
}

fn constant_of(e: &QoiExpr) -> Option<f64> {
    match e {
        QoiExpr::Const(c) => Some(*c),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vtot() {
        let e = parse("sqrt(x0^2 + x1^2 + x2^2)").unwrap();
        assert_eq!(e.eval(&[3.0, 4.0, 12.0]), 13.0);
        assert_eq!(e.arity(), 3);
    }

    #[test]
    fn parses_temperature_like_quotient() {
        let e = parse("x3 / (287.1 * x4)").unwrap();
        let t = e.eval(&[0.0, 0.0, 0.0, 101325.0, 1.2]);
        assert!((t - 101325.0 / (287.1 * 1.2)).abs() < 1e-9);
    }

    #[test]
    fn scalar_multiplication_folds_to_scale() {
        // 2 * x0 must be a Theorem-8 scale (Sum), not a two-sided product —
        // the scale bound is tighter
        let e = parse("2 * x0").unwrap();
        assert!(matches!(e, QoiExpr::Sum(_)), "got {e:?}");
        let e2 = parse("x0 / 4").unwrap();
        assert!(matches!(e2, QoiExpr::Sum(_)), "got {e2:?}");
    }

    #[test]
    fn radical_and_poly_calls() {
        let e = parse("radical(x0, 110.4)").unwrap();
        assert!((e.eval(&[300.0]) - 1.0 / 410.4).abs() < 1e-12);
        let p = parse("poly(x0, 1, 0, 0.7)").unwrap();
        assert!((p.eval(&[2.0]) - (1.0 + 0.7 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn absolute_value_both_syntaxes() {
        assert_eq!(parse("|x0|").unwrap().eval(&[-3.0]), 3.0);
        assert_eq!(parse("abs(x0)").unwrap().eval(&[-3.0]), 3.0);
    }

    #[test]
    fn unary_minus_and_precedence() {
        let e = parse("-x0 + x1 * x2^2").unwrap();
        assert_eq!(e.eval(&[1.0, 2.0, 3.0]), -1.0 + 2.0 * 9.0);
    }

    #[test]
    fn scientific_notation() {
        let e = parse("1.716e-5 * x0").unwrap();
        assert!((e.eval(&[2.0]) - 3.432e-5).abs() < 1e-18);
    }

    #[test]
    fn fractional_exponent_rejected_with_guidance() {
        let e = parse("x0^3.5");
        assert!(e.is_err());
        let msg = format!("{}", e.unwrap_err());
        assert!(msg.contains("sqrt"), "error should point to the √ trick");
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "", "x0 +", "sqrt(x0", "foo(x0)", "x0 @ x1", "(x0))", "poly(x0)",
        ] {
            assert!(parse(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn roundtrips_through_serialization() {
        let e = parse("sqrt(x0^2 + x1^2) / poly(x2, 1, 0, 0.2)").unwrap();
        let back = crate::serial::from_bytes(&crate::serial::to_bytes(&e)).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn parsed_bound_matches_builder_bound() {
        let parsed = parse("sqrt(x0^2 + x1^2 + x2^2)").unwrap();
        let built = crate::library::velocity_magnitude(0, 3);
        let x = [3.0, 4.0, 12.0];
        let eps = [1e-3; 3];
        let cfg = crate::bounds::BoundConfig::default();
        let a = parsed.eval_bounded(&x, &eps, &cfg);
        let b = built.eval_bounded(&x, &eps, &cfg);
        assert_eq!(a.value, b.value);
        assert!((a.bound - b.bound).abs() <= 1e-15 * a.bound.max(1e-300));
    }
}
