//! QoI expression trees and bounded evaluation.
//!
//! A [`QoiExpr`] is the machine representation of a *derivable QoI*
//! (Definitions 2–3 of the paper): a composition of the Table II basis
//! functions over a set of input variables. Evaluating an expression with
//! [`QoiExpr::eval_bounded`] returns both the QoI value computed from the
//! reconstructed data and a guaranteed upper bound of its error — the
//! recursion *is* the composition rule (Theorem 9 and Lemmas 1–2): the
//! child's error bound becomes the ε of the parent's basis-function theorem.

use crate::bounds::{self, BoundConfig};
use std::collections::BTreeSet;
use std::fmt;

/// A QoI value together with a guaranteed upper bound on its error.
///
/// For the expression `f`, reconstructed inputs `x` and retrieval bounds `ε`:
/// `value = f(x)` and `|f(x') − f(x)| ≤ bound` for every admissible true
/// input `x'` (`|x'ᵢ − xᵢ| ≤ εᵢ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounded {
    /// QoI value derived from the reconstructed data.
    pub value: f64,
    /// Guaranteed upper bound of `|f(x') − f(x)|`; `∞` if unboundable at
    /// this point under the current ε.
    pub bound: f64,
}

impl Bounded {
    /// An exactly-known value (zero error bound).
    pub fn exact(value: f64) -> Self {
        Self { value, bound: 0.0 }
    }
}

/// A derivable QoI expression (Definitions 2–3, Table II).
///
/// Build expressions with the constructor methods; they compose freely:
///
/// ```
/// use pqr_qoi::QoiExpr;
///
/// // kinetic energy density: 0.5 · ρ · (vx² + vy²)
/// let ke = QoiExpr::sum(vec![
///     (1.0, QoiExpr::var(0).pow(2)),
///     (1.0, QoiExpr::var(1).pow(2)),
/// ])
/// .mul(QoiExpr::var(2))
/// .scale(0.5);
/// assert_eq!(ke.eval(&[3.0, 4.0, 2.0]), 25.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum QoiExpr {
    /// The `i`-th input variable (a primary-data field value at a point).
    Var(usize),
    /// A constant (exact, zero error).
    Const(f64),
    /// `argⁿ` — Theorem 1.
    Pow { n: u32, arg: Box<QoiExpr> },
    /// `Σ coeffs[i]·argⁱ` — general polynomial (Thm 1 + 7 + 8).
    Poly { coeffs: Vec<f64>, arg: Box<QoiExpr> },
    /// `√arg` — Theorem 2.
    Sqrt(Box<QoiExpr>),
    /// `1/(arg + c)` — Theorem 3.
    Radical { c: f64, arg: Box<QoiExpr> },
    /// `Σ aᵢ·exprᵢ` — weighted sum (Thm 4 + 7 + 8).
    Sum(Vec<(f64, QoiExpr)>),
    /// `lhs · rhs` — Theorem 5.
    Mul(Box<QoiExpr>, Box<QoiExpr>),
    /// `lhs / rhs` — Theorem 6.
    Div(Box<QoiExpr>, Box<QoiExpr>),
    /// `|arg|` — extension beyond the paper's Table II: absolute value is
    /// 1-Lipschitz so `Δ(|f|) ≤ Δ(f)`; included because magnitude QoIs are
    /// common and the proof is one line (reverse triangle inequality).
    Abs(Box<QoiExpr>),
    /// `ln(arg)` — extension per §IV-D ("extend to new operators with
    /// derivable error control"): the supremum over the admissible interval
    /// is `ln(1 + ε/(x−ε))`, derivable when `ε < x`. Entropy- and
    /// log-density-style QoIs need this.
    Ln(Box<QoiExpr>),
    /// `exp(arg)` — extension per §IV-D: supremum `eˣ(e^ε − 1)`, always
    /// derivable. Arrhenius-rate-style QoIs in combustion need this.
    Exp(Box<QoiExpr>),
}

impl QoiExpr {
    /// Variable `i`.
    pub fn var(i: usize) -> Self {
        QoiExpr::Var(i)
    }

    /// Constant `c`.
    pub fn constant(c: f64) -> Self {
        QoiExpr::Const(c)
    }

    /// `selfⁿ`.
    pub fn pow(self, n: u32) -> Self {
        QoiExpr::Pow {
            n,
            arg: Box::new(self),
        }
    }

    /// `Σ coeffs[i]·selfⁱ` (`coeffs[0]` is the constant term).
    pub fn poly(self, coeffs: &[f64]) -> Self {
        QoiExpr::Poly {
            coeffs: coeffs.to_vec(),
            arg: Box::new(self),
        }
    }

    /// `√self`.
    pub fn sqrt(self) -> Self {
        QoiExpr::Sqrt(Box::new(self))
    }

    /// `1/(self + c)`.
    pub fn radical(self, c: f64) -> Self {
        QoiExpr::Radical {
            c,
            arg: Box::new(self),
        }
    }

    /// `self · rhs` (also available as the `*` operator).
    #[allow(clippy::should_implement_trait)] // by-value builder; ops traits exist too
    pub fn mul(self, rhs: QoiExpr) -> Self {
        QoiExpr::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self / rhs` (also available as the `/` operator).
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: QoiExpr) -> Self {
        QoiExpr::Div(Box::new(self), Box::new(rhs))
    }

    /// `a · self` (Theorem 8).
    pub fn scale(self, a: f64) -> Self {
        QoiExpr::Sum(vec![(a, self)])
    }

    /// `self + rhs` (also available as the `+` operator).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: QoiExpr) -> Self {
        QoiExpr::Sum(vec![(1.0, self), (1.0, rhs)])
    }

    /// `self − rhs` (also available as the `-` operator).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: QoiExpr) -> Self {
        QoiExpr::Sum(vec![(1.0, self), (-1.0, rhs)])
    }

    /// Weighted sum `Σ aᵢ·exprᵢ`.
    pub fn sum(terms: Vec<(f64, QoiExpr)>) -> Self {
        QoiExpr::Sum(terms)
    }

    /// `|self|`.
    pub fn abs(self) -> Self {
        QoiExpr::Abs(Box::new(self))
    }

    /// `ln(self)` — extension operator with the exact-supremum bound
    /// `Δ = ln(1 + ε/(x−ε))` (unboundable when `ε ≥ x`, i.e. the pole is
    /// reachable).
    ///
    /// ```
    /// use pqr_qoi::QoiExpr;
    /// let q = QoiExpr::var(0).ln();
    /// let out = q.eval_bounded(&[10.0], &[1.0], &Default::default());
    /// assert!((out.value - 10.0f64.ln()).abs() < 1e-12);
    /// // exact supremum: ln(10) − ln(9), plus the float-soundness guard
    /// assert!(out.bound >= 10.0f64.ln() - 9.0f64.ln());
    /// assert!(out.bound < 0.12);
    /// ```
    pub fn ln(self) -> Self {
        QoiExpr::Ln(Box::new(self))
    }

    /// `exp(self)` — extension operator with the exact-supremum bound
    /// `Δ = eˣ(e^ε − 1)` (always derivable).
    ///
    /// ```
    /// use pqr_qoi::QoiExpr;
    /// let q = QoiExpr::var(0).exp();
    /// let out = q.eval_bounded(&[0.0], &[0.1], &Default::default());
    /// assert!((out.value - 1.0).abs() < 1e-12);
    /// assert!(out.bound >= 0.1f64.exp_m1());
    /// ```
    pub fn exp(self) -> Self {
        QoiExpr::Exp(Box::new(self))
    }

    /// Evaluates the QoI from (reconstructed) inputs.
    ///
    /// Panics if a variable index exceeds `x.len()` — that is a wiring bug,
    /// not a data condition.
    pub fn eval(&self, x: &[f64]) -> f64 {
        match self {
            QoiExpr::Var(i) => x[*i],
            QoiExpr::Const(c) => *c,
            QoiExpr::Pow { n, arg } => arg.eval(x).powi(*n as i32),
            QoiExpr::Poly { coeffs, arg } => bounds::poly_eval(coeffs, arg.eval(x)),
            QoiExpr::Sqrt(arg) => arg.eval(x).sqrt(),
            QoiExpr::Radical { c, arg } => 1.0 / (arg.eval(x) + c),
            QoiExpr::Sum(terms) => terms.iter().map(|(a, e)| a * e.eval(x)).sum(),
            QoiExpr::Mul(l, r) => l.eval(x) * r.eval(x),
            QoiExpr::Div(l, r) => l.eval(x) / r.eval(x),
            QoiExpr::Abs(arg) => arg.eval(x).abs(),
            QoiExpr::Ln(arg) => arg.eval(x).ln(),
            QoiExpr::Exp(arg) => arg.eval(x).exp(),
        }
    }

    /// Evaluates the QoI *and* a guaranteed upper bound of its error, given
    /// the per-variable L∞ error bounds `eps` used during retrieval.
    ///
    /// This is the paper's §IV composition machinery: each basis function's
    /// theorem consumes the child's `(value, bound)` as its `(x, ε)`
    /// (Theorem 9 / Lemmas 1–2).
    pub fn eval_bounded(&self, x: &[f64], eps: &[f64], cfg: &BoundConfig) -> Bounded {
        debug_assert_eq!(x.len(), eps.len(), "value/eps length mismatch");
        if cfg.estimator == crate::bounds::Estimator::Interval {
            return Bounded {
                value: self.eval(x),
                bound: crate::interval::interval_bound(self, x, eps),
            };
        }
        match self {
            QoiExpr::Var(i) => Bounded {
                value: x[*i],
                bound: eps[*i],
            },
            QoiExpr::Const(c) => Bounded::exact(*c),
            QoiExpr::Pow { n, arg } => {
                let a = arg.eval_bounded(x, eps, cfg);
                Bounded {
                    value: a.value.powi(*n as i32),
                    bound: cfg.guard(bounds::power_bound(*n, a.value, a.bound)),
                }
            }
            QoiExpr::Poly { coeffs, arg } => {
                let a = arg.eval_bounded(x, eps, cfg);
                Bounded {
                    value: bounds::poly_eval(coeffs, a.value),
                    bound: cfg.guard(bounds::poly_bound(coeffs, a.value, a.bound)),
                }
            }
            QoiExpr::Sqrt(arg) => {
                let a = arg.eval_bounded(x, eps, cfg);
                Bounded {
                    value: a.value.sqrt(),
                    bound: cfg.guard(bounds::sqrt_bound(cfg.sqrt_mode, a.value, a.bound)),
                }
            }
            QoiExpr::Radical { c, arg } => {
                let a = arg.eval_bounded(x, eps, cfg);
                Bounded {
                    value: 1.0 / (a.value + c),
                    bound: cfg.guard(bounds::radical_bound(*c, a.value, a.bound)),
                }
            }
            QoiExpr::Sum(terms) => {
                let mut value = 0.0;
                let mut bound = 0.0;
                for (a, e) in terms {
                    let t = e.eval_bounded(x, eps, cfg);
                    value += a * t.value;
                    bound += a.abs() * t.bound;
                }
                Bounded {
                    value,
                    bound: cfg.guard(bound),
                }
            }
            QoiExpr::Mul(l, r) => {
                let a = l.eval_bounded(x, eps, cfg);
                let b = r.eval_bounded(x, eps, cfg);
                Bounded {
                    value: a.value * b.value,
                    bound: cfg.guard(bounds::product_bound(a.value, a.bound, b.value, b.bound)),
                }
            }
            QoiExpr::Div(l, r) => {
                let a = l.eval_bounded(x, eps, cfg);
                let b = r.eval_bounded(x, eps, cfg);
                Bounded {
                    value: a.value / b.value,
                    bound: cfg.guard(bounds::quotient_bound(a.value, a.bound, b.value, b.bound)),
                }
            }
            QoiExpr::Abs(arg) => {
                let a = arg.eval_bounded(x, eps, cfg);
                Bounded {
                    value: a.value.abs(),
                    bound: a.bound, // reverse triangle inequality: 1-Lipschitz
                }
            }
            QoiExpr::Ln(arg) => {
                let a = arg.eval_bounded(x, eps, cfg);
                Bounded {
                    value: a.value.ln(),
                    bound: cfg.guard(bounds::ln_bound(a.value, a.bound)),
                }
            }
            QoiExpr::Exp(arg) => {
                let a = arg.eval_bounded(x, eps, cfg);
                Bounded {
                    value: a.value.exp(),
                    bound: cfg.guard(bounds::exp_bound(a.value, a.bound)),
                }
            }
        }
    }

    /// The set of variable indices this QoI reads (Algorithm 3 needs this to
    /// know which fields a tolerance applies to).
    pub fn variables(&self) -> BTreeSet<usize> {
        let mut s = BTreeSet::new();
        self.collect_vars(&mut s);
        s
    }

    fn collect_vars(&self, s: &mut BTreeSet<usize>) {
        match self {
            QoiExpr::Var(i) => {
                s.insert(*i);
            }
            QoiExpr::Const(_) => {}
            QoiExpr::Pow { arg, .. }
            | QoiExpr::Poly { arg, .. }
            | QoiExpr::Sqrt(arg)
            | QoiExpr::Radical { arg, .. }
            | QoiExpr::Abs(arg)
            | QoiExpr::Ln(arg)
            | QoiExpr::Exp(arg) => arg.collect_vars(s),
            QoiExpr::Sum(terms) => {
                for (_, e) in terms {
                    e.collect_vars(s);
                }
            }
            QoiExpr::Mul(l, r) | QoiExpr::Div(l, r) => {
                l.collect_vars(s);
                r.collect_vars(s);
            }
        }
    }

    /// Largest variable index + 1 (the arity the input slice must have).
    pub fn arity(&self) -> usize {
        self.variables().last().map_or(0, |m| m + 1)
    }

    /// Number of nodes in the expression tree (complexity metric used by the
    /// benches).
    pub fn node_count(&self) -> usize {
        match self {
            QoiExpr::Var(_) | QoiExpr::Const(_) => 1,
            QoiExpr::Pow { arg, .. }
            | QoiExpr::Poly { arg, .. }
            | QoiExpr::Sqrt(arg)
            | QoiExpr::Radical { arg, .. }
            | QoiExpr::Abs(arg)
            | QoiExpr::Ln(arg)
            | QoiExpr::Exp(arg) => 1 + arg.node_count(),
            QoiExpr::Sum(terms) => 1 + terms.iter().map(|(_, e)| e.node_count()).sum::<usize>(),
            QoiExpr::Mul(l, r) | QoiExpr::Div(l, r) => 1 + l.node_count() + r.node_count(),
        }
    }
}

impl std::ops::Add for QoiExpr {
    type Output = QoiExpr;
    fn add(self, rhs: QoiExpr) -> QoiExpr {
        QoiExpr::add(self, rhs)
    }
}

impl std::ops::Sub for QoiExpr {
    type Output = QoiExpr;
    fn sub(self, rhs: QoiExpr) -> QoiExpr {
        QoiExpr::sub(self, rhs)
    }
}

impl std::ops::Mul for QoiExpr {
    type Output = QoiExpr;
    fn mul(self, rhs: QoiExpr) -> QoiExpr {
        QoiExpr::mul(self, rhs)
    }
}

impl std::ops::Div for QoiExpr {
    type Output = QoiExpr;
    fn div(self, rhs: QoiExpr) -> QoiExpr {
        QoiExpr::div(self, rhs)
    }
}

impl std::ops::Mul<QoiExpr> for f64 {
    type Output = QoiExpr;
    fn mul(self, rhs: QoiExpr) -> QoiExpr {
        rhs.scale(self)
    }
}

impl fmt::Display for QoiExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QoiExpr::Var(i) => write!(f, "x{i}"),
            QoiExpr::Const(c) => write!(f, "{c}"),
            QoiExpr::Pow { n, arg } => write!(f, "({arg})^{n}"),
            QoiExpr::Poly { coeffs, arg } => {
                write!(f, "poly[")?;
                for (i, c) in coeffs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "]({arg})")
            }
            QoiExpr::Sqrt(arg) => write!(f, "sqrt({arg})"),
            QoiExpr::Radical { c, arg } => write!(f, "1/(({arg}) + {c})"),
            QoiExpr::Sum(terms) => {
                write!(f, "(")?;
                for (i, (a, e)) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    if (*a - 1.0).abs() > f64::EPSILON {
                        write!(f, "{a}·")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            QoiExpr::Mul(l, r) => write!(f, "({l} · {r})"),
            QoiExpr::Div(l, r) => write!(f, "({l} / {r})"),
            QoiExpr::Abs(arg) => write!(f, "|{arg}|"),
            QoiExpr::Ln(arg) => write!(f, "ln({arg})"),
            QoiExpr::Exp(arg) => write!(f, "exp({arg})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::SqrtMode;

    fn cfg() -> BoundConfig {
        BoundConfig::default()
    }

    #[test]
    fn var_and_const() {
        let x = [1.5, -2.0];
        let eps = [0.1, 0.2];
        let v = QoiExpr::var(1).eval_bounded(&x, &eps, &cfg());
        assert_eq!(v.value, -2.0);
        assert_eq!(v.bound, 0.2);
        let c = QoiExpr::constant(7.0).eval_bounded(&x, &eps, &cfg());
        assert_eq!(c.value, 7.0);
        assert_eq!(c.bound, 0.0);
    }

    #[test]
    fn composition_theorem9_sqrt_of_square() {
        // f₁∘f₂ with f₁=√, f₂=x²: Δ = Δ(√, x², Δ(x², x, ε))
        let e = QoiExpr::var(0).pow(2).sqrt();
        let out = e.eval_bounded(&[3.0], &[0.1], &cfg());
        assert!((out.value - 3.0).abs() < 1e-14);
        let inner = crate::bounds::power_bound(2, 3.0, 0.1);
        let outer = crate::bounds::sqrt_bound(SqrtMode::Paper, 9.0, inner);
        assert!((out.bound - outer).abs() / outer < 1e-10);
        // and the bound dominates the true error on the admissible box
        for k in 0..=100 {
            let xp: f64 = 3.0 - 0.1 + 0.2 * k as f64 / 100.0;
            assert!(((xp * xp).sqrt() - 3.0f64).abs() <= out.bound);
        }
    }

    #[test]
    fn sum_accumulates_weighted_bounds() {
        let e = QoiExpr::sum(vec![
            (2.0, QoiExpr::var(0)),
            (-3.0, QoiExpr::var(1)),
            (1.0, QoiExpr::constant(10.0)),
        ]);
        let out = e.eval_bounded(&[1.0, 1.0], &[0.1, 0.2], &cfg());
        assert!((out.value - (2.0 - 3.0 + 10.0)).abs() < 1e-14);
        assert!((out.bound - (0.2 + 0.6)).abs() < 1e-12);
    }

    #[test]
    fn mul_div_bounds_dominate_sampling() {
        // (x0·x1)/x2 — three-variable composite
        let e = QoiExpr::var(0).mul(QoiExpr::var(1)).div(QoiExpr::var(2));
        let x = [2.0, -3.0, 4.0];
        let eps = [0.05, 0.1, 0.2];
        let out = e.eval_bounded(&x, &eps, &cfg());
        let f0 = e.eval(&x);
        let mut worst = 0.0f64;
        for i in 0..=20 {
            for j in 0..=20 {
                for k in 0..=20 {
                    let xp = [
                        x[0] - eps[0] + 2.0 * eps[0] * i as f64 / 20.0,
                        x[1] - eps[1] + 2.0 * eps[1] * j as f64 / 20.0,
                        x[2] - eps[2] + 2.0 * eps[2] * k as f64 / 20.0,
                    ];
                    worst = worst.max((e.eval(&xp) - f0).abs());
                }
            }
        }
        assert!(worst <= out.bound, "{worst} > {}", out.bound);
        assert!(out.bound < worst * 2.0, "bound too loose: {}", out.bound);
    }

    #[test]
    fn shared_variable_correlation_is_still_sound() {
        // x·x vs x² — Mul does not assume independence
        let e = QoiExpr::var(0).mul(QoiExpr::var(0));
        let out = e.eval_bounded(&[5.0], &[0.5], &cfg());
        for k in 0..=200 {
            let xp: f64 = 4.5 + k as f64 / 200.0;
            assert!((xp * xp - 25.0f64).abs() <= out.bound);
        }
    }

    #[test]
    fn abs_is_one_lipschitz() {
        let e = QoiExpr::var(0).abs();
        let out = e.eval_bounded(&[-3.0], &[0.25], &cfg());
        assert_eq!(out.value, 3.0);
        assert_eq!(out.bound, 0.25);
    }

    #[test]
    fn radical_in_context_sutherland_style() {
        // (Tr+S)/(T+S) with T reconstructed
        let tr_s = 273.15 + 110.4;
        let e = QoiExpr::var(0).radical(110.4).scale(tr_s);
        let out = e.eval_bounded(&[300.0], &[5.0], &cfg());
        let f0 = tr_s / (300.0 + 110.4);
        assert!((out.value - f0).abs() < 1e-12);
        for k in 0..=100 {
            let t = 295.0 + 10.0 * k as f64 / 100.0;
            assert!((tr_s / (t + 110.4) - f0).abs() <= out.bound);
        }
    }

    #[test]
    fn infinity_propagates_through_composition() {
        // √ at reconstructed 0 with nonzero ε (paper mode) → ∞ bound,
        // and stays ∞ through subsequent ops
        let e = QoiExpr::var(0).sqrt().mul(QoiExpr::var(1));
        let out = e.eval_bounded(&[0.0, 2.0], &[0.1, 0.1], &cfg());
        assert!(out.bound.is_infinite());
    }

    #[test]
    fn exact_sqrt_mode_keeps_bound_finite_at_zero() {
        let e = QoiExpr::var(0).sqrt();
        let cfg = BoundConfig {
            sqrt_mode: SqrtMode::Exact,
            ..Default::default()
        };
        let out = e.eval_bounded(&[0.0], &[0.01], &cfg);
        assert!(out.bound.is_finite());
        assert!(out.bound >= 0.1); // √ε
    }

    #[test]
    fn variables_and_arity() {
        let e = QoiExpr::var(3)
            .mul(QoiExpr::var(1))
            .add(QoiExpr::var(3).pow(2));
        let vars: Vec<usize> = e.variables().into_iter().collect();
        assert_eq!(vars, vec![1, 3]);
        assert_eq!(e.arity(), 4);
    }

    #[test]
    fn node_count_counts_every_node() {
        let e = QoiExpr::var(0).pow(2).sqrt(); // Var + Pow + Sqrt
        assert_eq!(e.node_count(), 3);
    }

    #[test]
    fn display_is_readable() {
        let e = QoiExpr::var(0).pow(2).add(QoiExpr::var(1).pow(2)).sqrt();
        let s = format!("{e}");
        assert!(s.contains("sqrt"));
        assert!(s.contains("x0"));
        assert!(s.contains("x1"));
    }

    #[test]
    fn operator_overloads_match_builders() {
        let a = QoiExpr::var(0);
        let b = QoiExpr::var(1);
        assert_eq!(
            (a.clone() + b.clone()).eval(&[2.0, 3.0]),
            a.clone().add(b.clone()).eval(&[2.0, 3.0])
        );
        assert_eq!((a.clone() - b.clone()).eval(&[2.0, 3.0]), -1.0);
        assert_eq!((a.clone() * b.clone()).eval(&[2.0, 3.0]), 6.0);
        assert_eq!((a.clone() / b.clone()).eval(&[3.0, 2.0]), 1.5);
        assert_eq!((2.5 * a).eval(&[4.0, 0.0]), 10.0);
        let _ = b;
    }

    #[test]
    fn zero_eps_reproduces_exact_evaluation() {
        let e = QoiExpr::var(0)
            .poly(&[1.0, 0.0, 0.7])
            .sqrt()
            .div(QoiExpr::var(1));
        let x = [2.0, 3.0];
        let out = e.eval_bounded(&x, &[0.0, 0.0], &cfg());
        assert_eq!(out.value, e.eval(&x));
        // inflation guard adds only a denormal-scale epsilon
        assert!(out.bound < 1e-300 * 10.0 + 1e-12);
    }
}
