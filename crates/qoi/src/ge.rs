//! The six GE CFD quantities of interest, Eq. (1)–(6) of the paper.
//!
//! The GE simulation produces five fields per mesh node; this module fixes
//! their variable indices once for the whole workspace:
//!
//! | index | field |
//! |---|---|
//! | 0 | `Vx` |
//! | 1 | `Vy` |
//! | 2 | `Vz` |
//! | 3 | `P` (pressure) |
//! | 4 | `D` (density) |
//!
//! Each builder returns a [`QoiExpr`] decomposed into the Table II basis
//! exactly as §III-A / §IV-D describe — e.g. `PT` uses
//! `(1 + γ/2·Mach²)^3.5 = √((…)⁷)` so that the non-integer power is covered
//! by Theorem 1 ∘ Theorem 2.

use crate::expr::QoiExpr;

/// Specific gas constant used by the GE case study \[J/(kg·K)\].
pub const R: f64 = 287.1;
/// Heat-capacity ratio γ.
pub const GAMMA: f64 = 1.4;
/// Total-pressure exponent `mi` (= γ/(γ−1) = 3.5).
pub const MI: f64 = 3.5;
/// Reference dynamic viscosity μr \[Pa·s\].
pub const MU_R: f64 = 1.716e-5;
/// Reference temperature Tr \[K\].
pub const T_R: f64 = 273.15;
/// Sutherland constant S \[K\].
pub const S: f64 = 110.4;

/// Variable index of `Vx`.
pub const VX: usize = 0;
/// Variable index of `Vy`.
pub const VY: usize = 1;
/// Variable index of `Vz`.
pub const VZ: usize = 2;
/// Variable index of `P`.
pub const P: usize = 3;
/// Variable index of `D`.
pub const D: usize = 4;

/// Number of GE fields.
pub const NV: usize = 5;

/// Eq. (1) — total velocity `Vtotal = √(Vx² + Vy² + Vz²)`.
///
/// Decomposition (§IV-D): `f₁∘g₁∘f₂` with `f₂(x)=x²`, `g₁` the 3-term sum,
/// `f₁=√`.
pub fn v_total() -> QoiExpr {
    QoiExpr::sum(vec![
        (1.0, QoiExpr::var(VX).pow(2)),
        (1.0, QoiExpr::var(VY).pow(2)),
        (1.0, QoiExpr::var(VZ).pow(2)),
    ])
    .sqrt()
}

/// Eq. (2) — temperature `T = P/(D·R)`.
///
/// `D·R` is a scalar multiple (Theorem 8), then Theorem 6 division.
pub fn temperature() -> QoiExpr {
    QoiExpr::var(P).div(QoiExpr::var(D).scale(R))
}

/// Eq. (3) — speed of sound `C = √(γ·R·T)`.
pub fn speed_of_sound() -> QoiExpr {
    temperature().scale(GAMMA * R).sqrt()
}

/// Eq. (4) — Mach number `Mach = Vtotal / C`.
pub fn mach() -> QoiExpr {
    v_total().div(speed_of_sound())
}

/// Eq. (5) — total pressure `PT = P·(1 + γ/2·Mach²)^mi` with `mi = 3.5`.
///
/// The non-integer power is decomposed as `u^3.5 = √(u⁷)` (composition of
/// Theorem 1 and Theorem 2), with `u = 1 + γ/2·Mach²` a polynomial of Mach.
pub fn pt() -> QoiExpr {
    let u = mach().poly(&[1.0, 0.0, GAMMA / 2.0]);
    QoiExpr::var(P).mul(u.pow(7).sqrt())
}

/// Eq. (6) — Sutherland viscosity
/// `μ = μr·(T/Tr)^1.5·(Tr+S)/(T+S)`.
///
/// `(T/Tr)^1.5 = √((T/Tr)³)` (Thm 1 ∘ Thm 2); `(Tr+S)/(T+S)` is a scaled
/// radical (Thm 3 + Thm 8).
pub fn mu() -> QoiExpr {
    let t_over_tr_15 = temperature().scale(1.0 / T_R).pow(3).sqrt();
    let sutherland = temperature().radical(S).scale(T_R + S);
    t_over_tr_15.mul(sutherland).scale(MU_R)
}

/// All six GE QoIs in paper order, with their display names.
pub fn all() -> Vec<(&'static str, QoiExpr)> {
    vec![
        ("VTOT", v_total()),
        ("T", temperature()),
        ("C", speed_of_sound()),
        ("Mach", mach()),
        ("PT", pt()),
        ("mu", mu()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::BoundConfig;

    /// A physically plausible GE state: |V|=50 m/s-ish, sea-level P and D.
    fn state() -> [f64; 5] {
        [30.0, 40.0, 0.0, 101_325.0, 1.204]
    }

    /// Reference implementations straight from Eq. (1)–(6).
    fn reference(x: &[f64]) -> [f64; 6] {
        let vtot = (x[0] * x[0] + x[1] * x[1] + x[2] * x[2]).sqrt();
        let t = x[3] / (x[4] * R);
        let c = (GAMMA * R * t).sqrt();
        let mach = vtot / c;
        let pt = x[3] * (1.0 + GAMMA / 2.0 * mach * mach).powf(MI);
        let mu = MU_R * (t / T_R).powf(1.5) * (T_R + S) / (t + S);
        [vtot, t, c, mach, pt, mu]
    }

    #[test]
    fn builders_match_reference_formulas() {
        let x = state();
        let want = reference(&x);
        for (i, (name, q)) in all().into_iter().enumerate() {
            let got = q.eval(&x);
            assert!(
                (got - want[i]).abs() <= 1e-9 * want[i].abs().max(1.0),
                "{name}: got {got}, want {}",
                want[i]
            );
        }
    }

    #[test]
    fn vtotal_345_is_5ish() {
        let q = v_total();
        assert!((q.eval(&[3.0, 4.0, 0.0, 0.0, 0.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn all_bounds_dominate_sampled_perturbations() {
        let x = state();
        let eps = [0.05, 0.05, 0.05, 20.0, 1e-3];
        let cfg = BoundConfig::default();
        let mut rng_state = 0x12345678u64;
        let mut next = move || {
            // xorshift — deterministic pseudo-random in [-1, 1]
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        for (name, q) in all() {
            let out = q.eval_bounded(&x, &eps, &cfg);
            let f0 = q.eval(&x);
            assert!(out.bound.is_finite(), "{name}: unbounded at sane state");
            for _ in 0..2000 {
                let xp: Vec<f64> = (0..5).map(|i| x[i] + eps[i] * next()).collect();
                let err = (q.eval(&xp) - f0).abs();
                assert!(
                    err <= out.bound,
                    "{name}: error {err} exceeds bound {}",
                    out.bound
                );
            }
        }
    }

    #[test]
    fn pt_uses_sqrt_of_seventh_power() {
        // The PT tree must contain a Pow{n:7} under a Sqrt — the paper's
        // decomposition of the 3.5 exponent.
        let s = format!("{}", pt());
        assert!(s.contains("^7"), "PT decomposition changed: {s}");
        assert!(s.contains("sqrt"), "PT decomposition changed: {s}");
    }

    #[test]
    fn variables_involved_per_qoi() {
        use std::collections::BTreeSet;
        let vars = |q: &QoiExpr| q.variables();
        assert_eq!(vars(&v_total()), BTreeSet::from([VX, VY, VZ]));
        assert_eq!(vars(&temperature()), BTreeSet::from([P, D]));
        assert_eq!(vars(&speed_of_sound()), BTreeSet::from([P, D]));
        assert_eq!(vars(&mach()), BTreeSet::from([VX, VY, VZ, P, D]));
        assert_eq!(vars(&pt()), BTreeSet::from([VX, VY, VZ, P, D]));
        assert_eq!(vars(&mu()), BTreeSet::from([P, D]));
    }

    #[test]
    fn tighter_eps_gives_tighter_qoi_bounds() {
        let x = state();
        let cfg = BoundConfig::default();
        for (name, q) in all() {
            let loose = q.eval_bounded(&x, &[0.1, 0.1, 0.1, 50.0, 1e-2], &cfg);
            let tight = q.eval_bounded(&x, &[1e-4, 1e-4, 1e-4, 0.05, 1e-5], &cfg);
            assert!(
                tight.bound < loose.bound,
                "{name}: tightening eps did not tighten bound"
            );
        }
    }

    #[test]
    fn zero_velocity_vtot_is_unboundable_in_paper_mode() {
        // This is exactly why the paper introduces the outlier mask (§V-A).
        let x = [0.0, 0.0, 0.0, 101_325.0, 1.2];
        let eps = [1e-6, 1e-6, 1e-6, 1.0, 1e-4];
        let out = v_total().eval_bounded(&x, &eps, &BoundConfig::default());
        assert!(out.bound.is_infinite());
    }
}
