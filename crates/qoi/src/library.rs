//! Ready-made QoIs beyond the GE set, demonstrating the genericity the paper
//! claims in §IV-D: total velocity reappears in climatology/cosmology, molar
//! concentration products drive combustion rates-of-progress, and common
//! physical quantities (kinetic energy, momentum, dynamic pressure) fall out
//! of the same basis.

use crate::expr::QoiExpr;

/// Total velocity magnitude over `n` velocity components starting at
/// variable `first` — the NYX / Hurricane "VTOT" QoI.
pub fn velocity_magnitude(first: usize, n: usize) -> QoiExpr {
    QoiExpr::sum(
        (0..n)
            .map(|i| (1.0, QoiExpr::var(first + i).pow(2)))
            .collect(),
    )
    .sqrt()
}

/// Molar-concentration product `x_i · x_j` — the S3D combustion QoI
/// (intermediate of a reaction's rate of progress).
pub fn species_product(i: usize, j: usize) -> QoiExpr {
    QoiExpr::var(i).mul(QoiExpr::var(j))
}

/// Product of an arbitrary set of species `Π x_k`, built by iterating the
/// multiplication theorem through the composite property (Theorem 5 + 9).
pub fn species_product_many(vars: &[usize]) -> QoiExpr {
    assert!(!vars.is_empty(), "empty product");
    let mut it = vars.iter();
    let mut acc = QoiExpr::var(*it.next().unwrap());
    for &v in it {
        acc = acc.mul(QoiExpr::var(v));
    }
    acc
}

/// Kinetic energy density `½·ρ·(Σ vᵢ²)` with density at `rho` and `n`
/// velocity components starting at `first`.
pub fn kinetic_energy(rho: usize, first: usize, n: usize) -> QoiExpr {
    QoiExpr::sum(
        (0..n)
            .map(|i| (1.0, QoiExpr::var(first + i).pow(2)))
            .collect(),
    )
    .mul(QoiExpr::var(rho))
    .scale(0.5)
}

/// Momentum component `ρ·vᵢ`.
pub fn momentum(rho: usize, v: usize) -> QoiExpr {
    QoiExpr::var(rho).mul(QoiExpr::var(v))
}

/// Dynamic pressure `½·ρ·V²` (no square root — pure polynomial/multiplicative).
pub fn dynamic_pressure(rho: usize, first: usize, n: usize) -> QoiExpr {
    kinetic_energy(rho, first, n)
}

/// Specific volume `1/ρ` — a radical with `c = 0`.
pub fn specific_volume(rho: usize) -> QoiExpr {
    QoiExpr::var(rho).radical(0.0)
}

/// Enthalpy-like linear combination `cp·T + Σ vᵢ²/2` given a temperature
/// variable and velocities — shows mixed linear/quadratic composition.
pub fn stagnation_enthalpy(t: usize, cp: f64, first: usize, n: usize) -> QoiExpr {
    let mut terms = vec![(cp, QoiExpr::var(t))];
    terms.extend((0..n).map(|i| (0.5, QoiExpr::var(first + i).pow(2))));
    QoiExpr::sum(terms)
}

/// Arrhenius rate constant `k(T) = A · e^{−Ea/T}` with temperature at
/// variable `t` (`Ea` folded in kelvin). Uses the ln/exp extension
/// operators — the reaction-kinetics QoI the paper's S3D products feed
/// into but Table II alone cannot express.
pub fn arrhenius(t: usize, pre_exponential: f64, activation_temp: f64) -> QoiExpr {
    QoiExpr::var(t)
        .radical(0.0) // 1/T (Theorem 3)
        .scale(-activation_temp)
        .exp()
        .scale(pre_exponential)
}

/// Rate of progress of a reversible reaction
/// `q = k_f(T)·Π x_i − k_r(T)·Π x_j` (forward/reverse Arrhenius constants
/// times the reactant/product molar-concentration products). Variable
/// indices list the species on each side; `t` is the temperature field.
///
/// This is the full S3D quantity whose *intermediates* (the products) the
/// paper evaluates in Fig. 6 — composing it end to end exercises every
/// composite rule at once: Σ (Thm 4/7), Π (Thm 5+9), 1/T (Thm 3) and the
/// exp extension.
#[allow(clippy::too_many_arguments)] // mirrors the kinetics (A, Ea) per direction
pub fn rate_of_progress(
    t: usize,
    reactants: &[usize],
    products: &[usize],
    a_fwd: f64,
    ea_fwd: f64,
    a_rev: f64,
    ea_rev: f64,
) -> QoiExpr {
    let fwd = arrhenius(t, a_fwd, ea_fwd).mul(species_product_many(reactants));
    let rev = arrhenius(t, a_rev, ea_rev).mul(species_product_many(products));
    fwd - rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::BoundConfig;

    #[test]
    fn velocity_magnitude_matches_euclidean_norm() {
        let q = velocity_magnitude(0, 3);
        assert!((q.eval(&[2.0, 3.0, 6.0]) - 7.0).abs() < 1e-12);
        assert_eq!(q.arity(), 3);
    }

    #[test]
    fn velocity_magnitude_offset_indices() {
        let q = velocity_magnitude(2, 2);
        assert!((q.eval(&[9.0, 9.0, 3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn species_product_bound_is_theorem5() {
        let q = species_product(0, 1);
        let out = q.eval_bounded(&[2.0, 3.0], &[0.1, 0.2], &BoundConfig::default());
        let expect = 2.0 * 0.2 + 3.0 * 0.1 + 0.1 * 0.2;
        assert!((out.bound - expect).abs() < 1e-10);
    }

    #[test]
    fn many_way_product_matches_direct_product() {
        let q = species_product_many(&[0, 1, 2, 3]);
        let x = [1.5, 2.0, 0.5, 4.0];
        assert!((q.eval(&x) - 6.0).abs() < 1e-12);
        // bound dominates sampled corners
        let eps = [0.01; 4];
        let out = q.eval_bounded(&x, &eps, &BoundConfig::default());
        let f0 = q.eval(&x);
        for corner in 0..16 {
            let xp: Vec<f64> = (0..4)
                .map(|i| x[i] + if corner >> i & 1 == 1 { 0.01 } else { -0.01 })
                .collect();
            assert!((q.eval(&xp) - f0).abs() <= out.bound);
        }
    }

    #[test]
    #[should_panic(expected = "empty product")]
    fn empty_product_panics() {
        species_product_many(&[]);
    }

    #[test]
    fn kinetic_energy_and_momentum() {
        let ke = kinetic_energy(2, 0, 2);
        assert_eq!(ke.eval(&[3.0, 4.0, 2.0]), 25.0);
        let m = momentum(1, 0);
        assert_eq!(m.eval(&[3.0, 2.0]), 6.0);
    }

    #[test]
    fn specific_volume_precondition() {
        let q = specific_volume(0);
        let ok = q.eval_bounded(&[1.2], &[0.1], &BoundConfig::default());
        assert!(ok.bound.is_finite());
        let bad = q.eval_bounded(&[0.05], &[0.1], &BoundConfig::default());
        assert!(bad.bound.is_infinite()); // ε ≥ |ρ| — could straddle the pole
    }

    #[test]
    fn stagnation_enthalpy_shape() {
        let q = stagnation_enthalpy(0, 1004.5, 1, 3);
        let x = [300.0, 10.0, 20.0, 5.0];
        let want = 1004.5 * 300.0 + 0.5 * (100.0 + 400.0 + 25.0);
        assert!((q.eval(&x) - want).abs() < 1e-9);
    }

    #[test]
    fn arrhenius_matches_direct_formula() {
        let k = arrhenius(0, 2.5e3, 8000.0);
        for t in [900.0f64, 1500.0, 2100.0] {
            let want = 2.5e3 * (-8000.0 / t).exp();
            let got = k.eval(&[t]);
            assert!((got - want).abs() < 1e-9 * want, "T={t}: {got} vs {want}");
        }
    }

    #[test]
    fn arrhenius_bound_dominates_sampled_error() {
        let k = arrhenius(0, 1.0, 5000.0);
        let (t, eps) = (1200.0, 5.0);
        let out = k.eval_bounded(&[t], &[eps], &BoundConfig::default());
        assert!(out.bound.is_finite());
        let f0 = k.eval(&[t]);
        for s in 0..=200 {
            let tp = t - eps + 2.0 * eps * s as f64 / 200.0;
            assert!((k.eval(&[tp]) - f0).abs() <= out.bound);
        }
    }

    #[test]
    fn rate_of_progress_composes_and_bounds() {
        // H + O2 <-> O + OH over vars [T, H, O2, O, OH]
        let q = rate_of_progress(0, &[1, 2], &[3, 4], 3.5e3, 8000.0, 1.2e3, 4000.0);
        let x = [1500.0, 0.02, 0.15, 0.01, 0.03];
        let kf = 3.5e3 * (-8000.0f64 / 1500.0).exp();
        let kr = 1.2e3 * (-4000.0f64 / 1500.0).exp();
        let want = kf * 0.02 * 0.15 - kr * 0.01 * 0.03;
        assert!((q.eval(&x) - want).abs() < 1e-9 * want.abs());

        // guaranteed bound dominates a corner sweep of the admissible box
        let eps = [2.0, 1e-4, 1e-4, 1e-4, 1e-4];
        let out = q.eval_bounded(&x, &eps, &BoundConfig::default());
        assert!(out.bound.is_finite());
        let f0 = q.eval(&x);
        for corner in 0..32u32 {
            let xp: Vec<f64> = (0..5)
                .map(|i| {
                    x[i] + if corner >> i & 1 == 1 {
                        eps[i]
                    } else {
                        -eps[i]
                    }
                })
                .collect();
            assert!(
                (q.eval(&xp) - f0).abs() <= out.bound,
                "corner {corner}: {} > {}",
                (q.eval(&xp) - f0).abs(),
                out.bound
            );
        }
    }
}
