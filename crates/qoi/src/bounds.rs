//! Theorem-level error-bound formulas (§IV of the paper).
//!
//! Every function takes *reconstructed* values and the L∞ error bound(s) used
//! during retrieval, and returns a guaranteed upper bound on the QoI error —
//! never the true error, which is unobservable during progressive retrieval.
//!
//! ## Floating-point soundness
//!
//! The paper's proofs are in exact arithmetic. Evaluated in `f64`, a bound
//! can round *down* by a few ulps and an actual error can round *up*, so a
//! naively computed bound could be violated at the ~1e-15 relative level
//! after deep compositions. Every combinator therefore inflates its result by
//! [`INFLATE`] (a multiplicative 1+4e-14 plus one sub-denormal), which is
//! orders of magnitude below any tolerance the retrieval engine works with
//! but restores "estimated ≥ actual" in floating point. The inflation can be
//! disabled via [`BoundConfig::inflate`] to reproduce the raw formulas.

/// Relative inflation applied to every bound to absorb `f64` round-off in
/// the estimator itself. See the module docs.
pub const INFLATE: f64 = 4e-14;

/// How to bound `√x` near zero — the paper's formula vs the exact supremum.
///
/// The paper's Theorem 2 bound `ε/(√max(x−ε,0)+√x)` is *exact* when
/// `x ≥ ε`, but blows up to `∞` as `x → 0`. The exact supremum over the
/// admissible interval `[max(x−ε,0), x+ε]` is
/// `max(√x − √max(x−ε,0), √(x+ε) − √x)`, which stays finite (≤ `√ε`).
/// The paper handles the blow-up with the zero-outlier mask (§V-A); keeping
/// both modes lets the ablation benches quantify how much retrieval the
/// loose estimator costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SqrtMode {
    /// Theorem 2 verbatim: `ε/(√max(x−ε,0)+√x)`; `∞` when `x ≤ 0 < ε`.
    #[default]
    Paper,
    /// The exact supremum; finite for all `x ≥ 0`.
    Exact,
}

/// Which error-estimation machinery to run (ablation switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Estimator {
    /// The paper's per-basis-function theorems (§IV), composed per
    /// Theorem 9 / Lemmas 1–2.
    #[default]
    Theorems,
    /// Generic outward-rounded interval arithmetic over the admissible box
    /// (see [`crate::interval`]) — no per-function derivation, different
    /// tightness trade-offs.
    Interval,
}

/// Configuration threaded through bound evaluation.
#[derive(Debug, Clone, Copy)]
pub struct BoundConfig {
    /// Square-root estimator variant (paper formula vs exact supremum).
    /// Only consulted by [`Estimator::Theorems`].
    pub sqrt_mode: SqrtMode,
    /// Apply the floating-point inflation guard (see module docs).
    pub inflate: bool,
    /// Theorem-based (paper) vs interval-arithmetic estimation.
    pub estimator: Estimator,
}

impl Default for BoundConfig {
    fn default() -> Self {
        Self {
            sqrt_mode: SqrtMode::Paper,
            inflate: true,
            estimator: Estimator::Theorems,
        }
    }
}

impl BoundConfig {
    /// Inflates `b` per the config; `∞`/NaN pass through untouched.
    ///
    /// An exactly-zero bound stays exactly zero: it can only arise from
    /// all-exact inputs (ε = 0 everywhere below), where IEEE arithmetic on
    /// zeros is exact and no round-off guard is needed — and inflating it
    /// would wrongly re-trigger the √-at-zero blow-up on masked points.
    #[inline]
    pub fn guard(&self, b: f64) -> f64 {
        if !self.inflate || !b.is_finite() || b == 0.0 {
            return b;
        }
        // One multiplicative nudge for large bounds + the smallest positive
        // denormal for bounds near (but not at) zero.
        b * (1.0 + INFLATE) + f64::MIN_POSITIVE
    }
}

/// Theorem 1 — power function `f(x) = xⁿ`.
///
/// `Δ ≤ Σᵢ₌₁ⁿ C(n,i)·|x|^{n−i}·εⁱ = (|x|+ε)ⁿ − |x|ⁿ`, computed as the
/// positive-term sum (no cancellation).
pub fn power_bound(n: u32, x: f64, eps: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if eps == 0.0 {
        return 0.0;
    }
    let ax = x.abs();
    // Σ C(n,i) ax^{n-i} eps^i, i=1..=n, built by Horner-like accumulation.
    let mut sum = 0.0f64;
    let mut binom = 1.0f64; // C(n,0)
    let mut eps_pow = 1.0f64;
    // term_i = C(n,i) * ax^(n-i) * eps^i
    for i in 1..=n {
        binom = binom * f64::from(n - i + 1) / f64::from(i);
        eps_pow *= eps;
        let ax_pow = if n - i == 0 {
            1.0
        } else {
            ax.powi((n - i) as i32)
        };
        sum += binom * ax_pow * eps_pow;
    }
    sum
}

/// Theorem 1 extended to a general polynomial `f(x) = Σ aᵢxⁱ` via the
/// additive (Thm 7) and multiplicative (Thm 8) properties:
/// `Δ ≤ Σ |aᵢ|·Δ(xⁱ)`.
pub fn poly_bound(coeffs: &[f64], x: f64, eps: f64) -> f64 {
    coeffs
        .iter()
        .enumerate()
        .skip(1) // constant term has zero error
        .map(|(i, &a)| a.abs() * power_bound(i as u32, x, eps))
        .sum()
}

/// Evaluates `Σ aᵢxⁱ` (Horner).
pub fn poly_eval(coeffs: &[f64], x: f64) -> f64 {
    let mut acc = 0.0;
    for &a in coeffs.iter().rev() {
        acc = acc * x + a;
    }
    acc
}

/// Theorem 2 — square root `f(x) = √x`, per [`SqrtMode`].
///
/// Returns `∞` if the bound cannot be established (paper mode with
/// `x − ε < 0` and `x = 0`), and NaN-propagates for `x < 0` (the QoI itself
/// is undefined there; callers treat it as unboundable).
pub fn sqrt_bound(mode: SqrtMode, x: f64, eps: f64) -> f64 {
    if x < 0.0 {
        return f64::INFINITY;
    }
    if eps == 0.0 {
        return 0.0;
    }
    match mode {
        SqrtMode::Paper => {
            let denom = (x - eps).max(0.0).sqrt() + x.sqrt();
            if denom == 0.0 {
                f64::INFINITY
            } else {
                eps / denom
            }
        }
        SqrtMode::Exact => {
            let down = x.sqrt() - (x - eps).max(0.0).sqrt();
            let up = (x + eps).sqrt() - x.sqrt();
            down.max(up)
        }
    }
}

/// Theorem 3 — radical `f(x) = 1/(x+c)`.
///
/// `Δ ≤ ε / (min(|x+c−ε|, |x+c+ε|)·|x+c|)`, valid only when `ε < |x+c|`
/// (otherwise the true value could sit on a pole and no bound exists: `∞`).
pub fn radical_bound(c: f64, x: f64, eps: f64) -> f64 {
    let d = x + c;
    if eps == 0.0 && d != 0.0 {
        return 0.0;
    }
    if d == 0.0 || eps >= d.abs() {
        return f64::INFINITY;
    }
    let m = (d - eps).abs().min((d + eps).abs());
    eps / (m * d.abs())
}

/// Theorem 4 — weighted sum `g(x) = Σ aᵢxᵢ`: `Δ ≤ Σ |aᵢ|εᵢ`.
pub fn weighted_sum_bound(weights: &[f64], eps: &[f64]) -> f64 {
    debug_assert_eq!(weights.len(), eps.len());
    weights.iter().zip(eps).map(|(a, e)| a.abs() * e).sum()
}

/// Theorem 5 — product `g(x₁,x₂) = x₁x₂`:
/// `Δ ≤ |x₁|ε₂ + |x₂|ε₁ + ε₁ε₂`.
///
/// Sound even when the two factors share underlying variables (the proof
/// never uses independence), which is what makes composite products like
/// `Mach²` valid.
pub fn product_bound(x1: f64, eps1: f64, x2: f64, eps2: f64) -> f64 {
    x1.abs() * eps2 + x2.abs() * eps1 + eps1 * eps2
}

/// Theorem 6 — quotient `g(x₁,x₂) = x₁/x₂`:
/// `Δ ≤ (|x₁|ε₂ + |x₂|ε₁)/(|x₂|·min(|x₂−ε₂|, |x₂+ε₂|))`, requires
/// `ε₂ < |x₂|` (otherwise `∞`).
pub fn quotient_bound(x1: f64, eps1: f64, x2: f64, eps2: f64) -> f64 {
    if x2 == 0.0 || eps2 >= x2.abs() {
        return f64::INFINITY;
    }
    if eps1 == 0.0 && eps2 == 0.0 {
        return 0.0;
    }
    let m = (x2 - eps2).abs().min((x2 + eps2).abs());
    (x1.abs() * eps2 + x2.abs() * eps1) / (x2.abs() * m)
}

/// Extension — natural logarithm `f(x) = ln(x)`.
///
/// The paper's §IV-D notes the theory "can extend to new operators with
/// derivable error control"; `ln` is such an operator. The exact supremum
/// over the admissible interval is attained on the left edge:
/// `Δ = ln(x) − ln(x−ε) = ln(1 + ε/(x−ε))`, valid when `ε < x` (otherwise
/// the true value could sit on the pole at 0: `∞`).
pub fn ln_bound(x: f64, eps: f64) -> f64 {
    if x <= 0.0 {
        return f64::INFINITY;
    }
    if eps == 0.0 {
        return 0.0;
    }
    if eps >= x {
        return f64::INFINITY;
    }
    (eps / (x - eps)).ln_1p()
}

/// Extension — exponential `f(x) = eˣ`.
///
/// The exact supremum is attained on the right edge:
/// `Δ = e^{x+ε} − eˣ = eˣ·(e^ε − 1)`. Always finite in exact arithmetic;
/// overflows to `∞` (= unboundable, keep refining) for extreme `x`.
pub fn exp_bound(x: f64, eps: f64) -> f64 {
    if eps == 0.0 {
        return 0.0;
    }
    x.exp() * eps.exp_m1()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense sampling of admissible perturbations; returns the worst true
    /// error observed — must stay below the theorem bound.
    fn worst_err_1d(f: impl Fn(f64) -> f64, x: f64, eps: f64, steps: usize) -> f64 {
        let fx = f(x);
        let mut worst = 0.0f64;
        for k in 0..=steps {
            // clamp: float arithmetic must not push samples outside the box
            let xi = (x - eps + 2.0 * eps * (k as f64) / (steps as f64)).clamp(x - eps, x + eps);
            let e = (f(xi) - fx).abs();
            if e.is_finite() && e > worst {
                worst = e;
            }
        }
        worst
    }

    #[test]
    fn power_bound_dominates_true_error() {
        for &(n, x, eps) in &[
            (1u32, 2.0, 0.5),
            (2, -3.0, 0.1),
            (3, 0.7, 0.2),
            (5, -1.2, 0.05),
            (7, 10.0, 1e-6),
        ] {
            let b = power_bound(n, x, eps);
            let w = worst_err_1d(|v| v.powi(n as i32), x, eps, 1000);
            assert!(w <= b * (1.0 + 1e-12), "n={n} x={x} eps={eps}: {w} > {b}");
        }
    }

    #[test]
    fn power_bound_matches_binomial_identity() {
        // Σ C(n,i)|x|^{n-i}ε^i == (|x|+ε)^n − |x|^n
        let (n, x, eps) = (4u32, 2.5f64, 0.3f64);
        let direct = (x.abs() + eps).powi(4) - x.abs().powi(4);
        let b = power_bound(n, x, eps);
        assert!((b - direct).abs() < 1e-10 * direct);
    }

    #[test]
    fn power_bound_edge_cases() {
        assert_eq!(power_bound(0, 5.0, 1.0), 0.0);
        assert_eq!(power_bound(3, 5.0, 0.0), 0.0);
        assert_eq!(power_bound(1, 0.0, 0.25), 0.25); // linear: Δ = ε
    }

    #[test]
    fn poly_bound_dominates_true_error() {
        let coeffs = [1.0, -2.0, 0.5, 3.0]; // 1 − 2x + 0.5x² + 3x³
        for &(x, eps) in &[(0.0, 0.1), (1.5, 0.25), (-2.0, 0.01)] {
            let b = poly_bound(&coeffs, x, eps);
            let w = worst_err_1d(|v| poly_eval(&coeffs, v), x, eps, 2000);
            assert!(w <= b * (1.0 + 1e-12), "x={x}: {w} > {b}");
        }
    }

    #[test]
    fn poly_eval_horner() {
        assert_eq!(poly_eval(&[1.0, 2.0, 3.0], 2.0), 1.0 + 4.0 + 12.0);
        assert_eq!(poly_eval(&[], 3.0), 0.0);
    }

    #[test]
    fn sqrt_bound_paper_exact_when_x_ge_eps() {
        let (x, eps) = (4.0, 1.0);
        let paper = sqrt_bound(SqrtMode::Paper, x, eps);
        // identity: ε/(√(x−ε)+√x) = √x − √(x−ε)
        let expect = x.sqrt() - (x - eps).sqrt();
        assert!((paper - expect).abs() < 1e-14);
        let w = worst_err_1d(|v| v.max(0.0).sqrt(), x, eps, 2000);
        assert!(w <= paper * (1.0 + 1e-12));
    }

    #[test]
    fn sqrt_bound_paper_blows_up_at_zero() {
        assert!(sqrt_bound(SqrtMode::Paper, 0.0, 1e-3).is_infinite());
    }

    #[test]
    fn sqrt_bound_exact_finite_at_zero_and_dominates() {
        let b = sqrt_bound(SqrtMode::Exact, 0.0, 1e-4);
        assert!((b - 1e-2).abs() < 1e-12); // √ε
        for &(x, eps) in &[(0.0, 0.01), (1e-5, 0.01), (0.5, 0.7), (2.0, 0.1)] {
            let b = sqrt_bound(SqrtMode::Exact, x, eps);
            let w = worst_err_1d(|v| v.max(0.0).sqrt(), x, eps, 2000);
            assert!(w <= b * (1.0 + 1e-12), "x={x} eps={eps}: {w} > {b}");
        }
    }

    #[test]
    fn sqrt_modes_agree_away_from_zero() {
        let p = sqrt_bound(SqrtMode::Paper, 9.0, 0.5);
        let e = sqrt_bound(SqrtMode::Exact, 9.0, 0.5);
        assert!((p - e).abs() < 1e-14);
    }

    #[test]
    fn sqrt_negative_reconstruction_unboundable() {
        assert!(sqrt_bound(SqrtMode::Paper, -0.1, 0.01).is_infinite());
        assert!(sqrt_bound(SqrtMode::Exact, -0.1, 0.01).is_infinite());
    }

    #[test]
    fn radical_bound_dominates_true_error() {
        for &(c, x, eps) in &[(110.4, 300.0, 5.0), (0.0, 2.0, 0.5), (-1.0, 3.0, 0.9)] {
            let b = radical_bound(c, x, eps);
            let w = worst_err_1d(|v| 1.0 / (v + c), x, eps, 2000);
            assert!(w <= b * (1.0 + 1e-12), "c={c} x={x}: {w} > {b}");
        }
    }

    #[test]
    fn radical_precondition_violation_gives_infinity() {
        assert!(radical_bound(0.0, 1.0, 1.0).is_infinite()); // ε == |x+c|
        assert!(radical_bound(0.0, 1.0, 2.0).is_infinite()); // ε > |x+c|
        assert!(radical_bound(-1.0, 1.0, 0.1).is_infinite()); // pole at x+c=0
    }

    #[test]
    fn radical_negative_denominator_ok() {
        // x + c < 0 is fine as long as ε < |x+c|.
        let b = radical_bound(-10.0, 2.0, 1.0);
        assert!(b.is_finite());
        let w = worst_err_1d(|v| 1.0 / (v - 10.0), 2.0, 1.0, 2000);
        assert!(w <= b * (1.0 + 1e-12));
    }

    #[test]
    fn weighted_sum_bound_is_tight_for_worst_corner() {
        let w = [1.0, -2.0, 0.5];
        let eps = [0.1, 0.2, 0.3];
        let b = weighted_sum_bound(&w, &eps);
        assert!((b - (0.1 + 0.4 + 0.15)).abs() < 1e-15);
        // worst corner: ξᵢ = sign(aᵢ)·εᵢ achieves the bound exactly
        let attained: f64 = w.iter().zip(&eps).map(|(a, e)| a.abs() * e).sum();
        assert_eq!(b, attained);
    }

    #[test]
    fn product_bound_dominates_corner_search() {
        let (x1, e1, x2, e2) = (3.0, 0.2, -5.0, 0.4);
        let b = product_bound(x1, e1, x2, e2);
        let mut worst = 0.0f64;
        for i in 0..=50 {
            for j in 0..=50 {
                let a = x1 - e1 + 2.0 * e1 * i as f64 / 50.0;
                let c = x2 - e2 + 2.0 * e2 * j as f64 / 50.0;
                worst = worst.max((a * c - x1 * x2).abs());
            }
        }
        assert!(worst <= b * (1.0 + 1e-12));
        // corner ξ₁=e1·sign, ξ₂=−e2·sign attains |x1|e2+|x2|e1+e1e2? close:
        assert!(b - worst < 1e-9 + 0.3 * b); // bound is near-tight
    }

    #[test]
    fn quotient_bound_dominates_corner_search() {
        let (x1, e1, x2, e2) = (7.0, 0.5, 4.0, 0.25);
        let b = quotient_bound(x1, e1, x2, e2);
        let mut worst = 0.0f64;
        for i in 0..=50 {
            for j in 0..=50 {
                let a = x1 - e1 + 2.0 * e1 * i as f64 / 50.0;
                let c = x2 - e2 + 2.0 * e2 * j as f64 / 50.0;
                worst = worst.max((a / c - x1 / x2).abs());
            }
        }
        assert!(worst <= b * (1.0 + 1e-12), "{worst} > {b}");
    }

    #[test]
    fn quotient_precondition() {
        assert!(quotient_bound(1.0, 0.0, 0.0, 0.0).is_infinite());
        assert!(quotient_bound(1.0, 0.1, 1.0, 1.0).is_infinite());
        assert_eq!(quotient_bound(1.0, 0.0, 2.0, 0.0), 0.0);
    }

    #[test]
    fn guard_inflates_without_changing_infinity() {
        let cfg = BoundConfig::default();
        assert!(cfg.guard(1.0) > 1.0);
        // exact zero must stay exact zero (masked points: ε = 0)
        assert_eq!(cfg.guard(0.0), 0.0);
        assert!(cfg.guard(f64::INFINITY).is_infinite());
        let raw = BoundConfig {
            inflate: false,
            ..Default::default()
        };
        assert_eq!(raw.guard(1.0), 1.0);
    }

    #[test]
    fn zero_eps_gives_zero_bound_everywhere() {
        assert_eq!(power_bound(5, 3.0, 0.0), 0.0);
        assert_eq!(sqrt_bound(SqrtMode::Paper, 2.0, 0.0), 0.0);
        assert_eq!(radical_bound(1.0, 2.0, 0.0), 0.0);
        assert_eq!(product_bound(2.0, 0.0, 3.0, 0.0), 0.0);
        assert_eq!(quotient_bound(2.0, 0.0, 3.0, 0.0), 0.0);
        assert_eq!(ln_bound(2.0, 0.0), 0.0);
        assert_eq!(exp_bound(2.0, 0.0), 0.0);
    }

    #[test]
    fn ln_bound_dominates_true_error() {
        for &(x, eps) in &[(1.0, 0.5), (300.0, 5.0), (0.01, 0.005), (2.0, 1.999)] {
            let b = ln_bound(x, eps);
            let w = worst_err_1d(|v| v.ln(), x, eps, 4000);
            assert!(w <= b * (1.0 + 1e-12), "x={x} eps={eps}: {w} > {b}");
        }
    }

    #[test]
    fn ln_bound_is_the_exact_supremum() {
        let (x, eps) = (5.0f64, 2.0f64);
        let sup = x.ln() - (x - eps).ln();
        assert!((ln_bound(x, eps) - sup).abs() < 1e-14);
    }

    #[test]
    fn ln_precondition_violation_gives_infinity() {
        assert!(ln_bound(1.0, 1.0).is_infinite()); // pole reachable
        assert!(ln_bound(0.0, 0.1).is_infinite());
        assert!(ln_bound(-1.0, 0.1).is_infinite());
    }

    #[test]
    fn exp_bound_dominates_true_error() {
        for &(x, eps) in &[(0.0, 1.0), (-4.0, 0.25), (3.0, 0.5), (10.0, 1e-6)] {
            let b = exp_bound(x, eps);
            let w = worst_err_1d(|v| v.exp(), x, eps, 4000);
            assert!(w <= b * (1.0 + 1e-12), "x={x} eps={eps}: {w} > {b}");
        }
    }

    #[test]
    fn exp_bound_is_the_exact_supremum() {
        let (x, eps) = (1.5f64, 0.3f64);
        let sup = (x + eps).exp() - x.exp();
        assert!((exp_bound(x, eps) - sup).abs() < 1e-13 * sup);
    }

    #[test]
    fn exp_overflow_propagates_to_unboundable() {
        assert!(exp_bound(800.0, 1.0).is_infinite());
    }
}
