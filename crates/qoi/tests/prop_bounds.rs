//! Property-based tests of THE invariant of the paper (§IV): for any
//! derivable QoI `f`, reconstructed input `x`, bounds `ε`, and any true
//! input `x'` with `|x'ᵢ − xᵢ| ≤ εᵢ`:
//!
//! ```text
//!   |f(x') − f(x)| ≤ f.eval_bounded(x, ε).bound
//! ```
//!
//! Expression trees, inputs, bounds and perturbations are all generated
//! randomly; both √-estimator modes are exercised.

use pqr_qoi::{BoundConfig, QoiExpr, SqrtMode};
use proptest::prelude::*;

const NVARS: usize = 4;

/// Random derivable QoI expression over `NVARS` variables, with bounded
/// depth so evaluation stays fast and bounds stay finite often enough.
fn arb_expr(depth: u32) -> impl Strategy<Value = QoiExpr> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(QoiExpr::var),
        (-3.0..3.0f64).prop_map(QoiExpr::constant),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            // power (small n: higher powers explode the magnitudes)
            (inner.clone(), 1u32..4).prop_map(|(e, n)| e.pow(n)),
            // polynomial with small coefficients
            (inner.clone(), proptest::collection::vec(-2.0..2.0f64, 1..4))
                .prop_map(|(e, c)| e.poly(&c)),
            // sqrt of a square keeps the argument non-negative
            inner.clone().prop_map(|e| e.pow(2).sqrt()),
            // radical shifted away from the pole
            (inner.clone(), 4.0..9.0f64).prop_map(|(e, c)| e.pow(2).radical(c)),
            // weighted sum
            (inner.clone(), inner.clone(), -2.0..2.0f64, -2.0..2.0f64)
                .prop_map(|(a, b, wa, wb)| QoiExpr::sum(vec![(wa, a), (wb, b)])),
            // product
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            // quotient with a denominator kept away from zero
            (inner.clone(), inner.clone(), 3.0..8.0f64).prop_map(|(a, b, c)| a.div(QoiExpr::sum(
                vec![(1.0, b.pow(2)), (1.0, QoiExpr::constant(c))]
            ))),
            // absolute value
            inner.clone().prop_map(|e| e.abs()),
            // ln of a strictly positive argument (pole kept out of reach)
            (inner.clone(), 4.0..9.0f64).prop_map(|(e, c)| (e.pow(2) + QoiExpr::constant(c)).ln()),
            // exp with a damped argument so magnitudes stay tame
            inner.prop_map(|e| e.scale(0.05).exp()),
        ]
    })
}

/// Random QoI trees evaluated through the interval estimator must satisfy
/// the identical domination invariant — the machinery differs, the
/// guarantee must not.
fn interval_cfg() -> BoundConfig {
    BoundConfig {
        estimator: pqr_qoi::Estimator::Interval,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bound_dominates_true_error(
        expr in arb_expr(3),
        x in proptest::collection::vec(-2.0..2.0f64, NVARS),
        eps in proptest::collection::vec(0.0..0.1f64, NVARS),
        // perturbation direction per variable in [-1, 1]
        dirs in proptest::collection::vec(proptest::collection::vec(-1.0..1.0f64, NVARS), 16),
        exact_sqrt in proptest::bool::ANY,
    ) {
        let cfg = BoundConfig {
            sqrt_mode: if exact_sqrt { SqrtMode::Exact } else { SqrtMode::Paper },
            ..Default::default()
        };
        let out = expr.eval_bounded(&x, &eps, &cfg);
        prop_assume!(out.value.is_finite());
        if !out.bound.is_finite() {
            // ∞ = "cannot bound here"; trivially sound
            return Ok(());
        }
        let f0 = expr.eval(&x);
        for dir in &dirs {
            let xp: Vec<f64> = (0..NVARS)
                .map(|i| (x[i] + eps[i] * dir[i]).clamp(x[i] - eps[i], x[i] + eps[i]))
                .collect();
            let fp = expr.eval(&xp);
            if !fp.is_finite() || !f0.is_finite() {
                continue;
            }
            let err = (fp - f0).abs();
            prop_assert!(
                err <= out.bound,
                "expr {expr}: err {err} > bound {} at x={x:?} eps={eps:?}",
                out.bound
            );
        }
    }

    #[test]
    fn interval_bound_dominates_true_error(
        expr in arb_expr(3),
        x in proptest::collection::vec(-2.0..2.0f64, NVARS),
        eps in proptest::collection::vec(0.0..0.1f64, NVARS),
        dirs in proptest::collection::vec(proptest::collection::vec(-1.0..1.0f64, NVARS), 16),
    ) {
        let out = expr.eval_bounded(&x, &eps, &interval_cfg());
        prop_assume!(out.value.is_finite());
        if !out.bound.is_finite() {
            return Ok(());
        }
        let f0 = expr.eval(&x);
        for dir in &dirs {
            let xp: Vec<f64> = (0..NVARS)
                .map(|i| (x[i] + eps[i] * dir[i]).clamp(x[i] - eps[i], x[i] + eps[i]))
                .collect();
            let fp = expr.eval(&xp);
            if !fp.is_finite() || !f0.is_finite() {
                continue;
            }
            let err = (fp - f0).abs();
            prop_assert!(
                err <= out.bound,
                "expr {expr}: interval err {err} > bound {} at x={x:?} eps={eps:?}",
                out.bound
            );
        }
    }

    #[test]
    fn zero_eps_zero_bound(
        expr in arb_expr(3),
        x in proptest::collection::vec(-2.0..2.0f64, NVARS),
    ) {
        let cfg = BoundConfig::default();
        let out = expr.eval_bounded(&x, &[0.0; NVARS], &cfg);
        prop_assume!(out.value.is_finite() && out.bound.is_finite());
        // with exact inputs the bound collapses to (near) zero
        prop_assert!(
            out.bound <= 1e-9 * out.value.abs().max(1.0),
            "expr {expr}: zero-eps bound {}",
            out.bound
        );
    }

    #[test]
    fn bound_monotone_in_eps(
        expr in arb_expr(3),
        x in proptest::collection::vec(-2.0..2.0f64, NVARS),
        eps in proptest::collection::vec(1e-6..0.05f64, NVARS),
    ) {
        let cfg = BoundConfig::default();
        let loose = expr.eval_bounded(&x, &eps, &cfg);
        let tight_eps: Vec<f64> = eps.iter().map(|e| e / 4.0).collect();
        let tight = expr.eval_bounded(&x, &tight_eps, &cfg);
        prop_assume!(loose.bound.is_finite());
        prop_assert!(
            tight.bound <= loose.bound * (1.0 + 1e-9),
            "expr {expr}: tighter eps gave looser bound ({} vs {})",
            tight.bound,
            loose.bound
        );
    }

    #[test]
    fn eval_bounded_value_equals_eval(
        expr in arb_expr(3),
        x in proptest::collection::vec(-2.0..2.0f64, NVARS),
        eps in proptest::collection::vec(0.0..0.1f64, NVARS),
    ) {
        let out = expr.eval_bounded(&x, &eps, &BoundConfig::default());
        let direct = expr.eval(&x);
        if direct.is_finite() {
            prop_assert!(
                (out.value - direct).abs() <= 1e-12 * direct.abs().max(1.0),
                "value mismatch: {} vs {direct}",
                out.value
            );
        }
    }

    #[test]
    fn variables_is_consistent_with_eval_sensitivity(
        expr in arb_expr(2),
        x in proptest::collection::vec(0.5..1.5f64, NVARS),
    ) {
        // perturbing a variable NOT in variables() never changes the value
        let vars = expr.variables();
        let f0 = expr.eval(&x);
        prop_assume!(f0.is_finite());
        for i in 0..NVARS {
            if vars.contains(&i) {
                continue;
            }
            let mut xp = x.clone();
            xp[i] += 0.37;
            prop_assert_eq!(expr.eval(&xp), f0);
        }
    }
}
