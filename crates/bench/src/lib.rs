//! # pqr-bench — the table/figure harness
//!
//! One binary per paper table/figure (`cargo run -p pqr-bench --release
//! --bin figN`), printing tab-separated series that mirror the paper's
//! plots, plus Criterion micro-benches for the kernels (`cargo bench`).
//!
//! Sizes default to laptop scale; set `PQR_SCALE` (a float ≥ 1) to grow
//! every dataset toward paper scale. The rate-distortion and error-control
//! *shapes* are scale-invariant for the generated spectra — see
//! EXPERIMENTS.md for the recorded paper-vs-measured comparison.

use pqr_datagen::ge::{self, GeConfig};
use pqr_datagen::RawDataset;
use pqr_progressive::engine::{EngineConfig, QoiSpec, RetrievalEngine};
use pqr_progressive::field::Dataset;
use pqr_progressive::refactored::Scheme;
use pqr_qoi::QoiExpr;
use pqr_util::stats;

/// Global size multiplier from the `PQR_SCALE` env var (default 1.0).
pub fn scale() -> f64 {
    std::env::var("PQR_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(1.0)
}

/// Scales a base element count by `PQR_SCALE`.
pub fn scaled(base: usize) -> usize {
    ((base as f64) * scale()) as usize
}

/// The GE-small stand-in as a single linearized dataset.
pub fn ge_small_dataset() -> Dataset {
    let cfg = GeConfig::small().with_block_len(scaled(3_400));
    let raw = ge::concat(&ge::generate(&cfg));
    to_dataset(&raw)
}

/// Converts a generated RawDataset into a progressive Dataset.
pub fn to_dataset(raw: &RawDataset) -> Dataset {
    let mut ds = Dataset::new(&raw.dims);
    for (name, data) in &raw.fields {
        ds.add_field(name, data.clone()).unwrap();
    }
    ds
}

/// The paper's pre-set snapshot ladder (§VI-C): 10^-1 … 10^-18.
pub fn paper_ladder() -> Vec<f64> {
    (1..=18).map(|i| 10f64.powi(-i)).collect()
}

/// The paper's progressive primary-data bound series: 0.1·2^-i, i = 1..=20.
pub fn primary_bound_series() -> Vec<f64> {
    (1..=20).map(|i| 0.1 * (2.0f64).powi(-i)).collect()
}

/// The paper's QoI tolerance series: 0.1·2^-i, i = 0..=19.
pub fn qoi_tolerance_series() -> Vec<f64> {
    (0..=19).map(|i| 0.1 * (2.0f64).powi(-i)).collect()
}

/// Prints a tab-separated header + rows helper.
pub fn print_header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// One row of a figure's series.
pub fn print_row(vals: &[String]) {
    println!("{}", vals.join("\t"));
}

/// Runs a progressive QoI tolerance sweep with a persistent engine
/// (cumulative bytes, as the paper's progressive retrieval does) and
/// reports, per tolerance: bitrate, max estimated error, max actual error.
///
/// Returns `(tolerance, bitrate, est_rel, actual_rel)` rows; errors are
/// relative to the QoI range.
pub fn qoi_sweep(
    ds: &Dataset,
    archive: &pqr_progressive::field::RefactoredDataset,
    name: &str,
    expr: &QoiExpr,
    tolerances: &[f64],
    engine_cfg: EngineConfig,
) -> Vec<(f64, f64, f64, f64)> {
    let range = ds.qoi_range(expr).expect("QoI range");
    let truth = ds.qoi_values(expr);
    let mut engine = RetrievalEngine::new(archive, engine_cfg).expect("engine");
    let mut out = Vec::with_capacity(tolerances.len());
    for &tol in tolerances {
        let spec = QoiSpec::with_range(name, expr.clone(), tol, range);
        let report = engine.retrieve(&[spec]).expect("retrieve");
        let derived = engine.qoi_values(expr);
        let actual = stats::max_abs_diff(&truth, &derived);
        out.push((
            tol,
            report.bitrate,
            report.max_est_errors[0] / range,
            actual / range,
        ));
    }
    out
}

/// Runs a *single-request* QoI retrieval per tolerance (fresh engine each
/// time — the Fig. 7/8 "generic case" of §VI-C) and reports bitrates.
pub fn qoi_single_requests(
    archive: &pqr_progressive::field::RefactoredDataset,
    name: &str,
    expr: &QoiExpr,
    range: f64,
    tolerances: &[f64],
) -> Vec<(f64, f64)> {
    tolerances
        .iter()
        .map(|&tol| {
            let mut engine =
                RetrievalEngine::new(archive, EngineConfig::default()).expect("engine");
            let spec = QoiSpec::with_range(name, expr.clone(), tol, range);
            let report = engine.retrieve(&[spec]).expect("retrieve");
            (tol, report.bitrate)
        })
        .collect()
}

/// Refactors a dataset under a scheme with the paper ladder and the
/// velocity zero-mask when the dataset has the GE field layout.
pub fn refactor_with_mask(
    ds: &Dataset,
    scheme: Scheme,
) -> pqr_progressive::field::RefactoredDataset {
    let mut archive = ds
        .refactor_with_bounds(scheme, &paper_ladder())
        .expect("refactor");
    if ds.num_fields() >= 3 && ds.field_index("VelocityX").is_some() {
        archive.set_mask(ds.zero_mask(&[0, 1, 2])).expect("mask");
    }
    archive
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_match_paper_definitions() {
        assert_eq!(paper_ladder().len(), 18);
        assert!((paper_ladder()[0] - 0.1).abs() < 1e-15);
        assert_eq!(primary_bound_series().len(), 20);
        assert!((primary_bound_series()[0] - 0.05).abs() < 1e-15);
        assert_eq!(qoi_tolerance_series().len(), 20);
        assert!((qoi_tolerance_series()[0] - 0.1).abs() < 1e-15);
    }

    #[test]
    fn scale_default_is_one() {
        // (runs without PQR_SCALE in the test environment)
        if std::env::var("PQR_SCALE").is_err() {
            assert_eq!(scale(), 1.0);
            assert_eq!(scaled(100), 100);
        }
    }

    #[test]
    fn qoi_sweep_smoke() {
        let mut ds = Dataset::new(&[300]);
        ds.add_field(
            "f",
            (0..300).map(|i| (i as f64 * 0.05).sin() + 2.0).collect(),
        )
        .unwrap();
        let archive = refactor_with_mask(&ds, Scheme::PmgardHb);
        let rows = qoi_sweep(
            &ds,
            &archive,
            "f2",
            &QoiExpr::var(0).pow(2),
            &[1e-2, 1e-4],
            EngineConfig::default(),
        );
        assert_eq!(rows.len(), 2);
        for (tol, bitrate, est, actual) in rows {
            assert!(bitrate > 0.0);
            assert!(actual <= est, "actual > est");
            assert!(est <= tol, "est > tol");
        }
    }
}
