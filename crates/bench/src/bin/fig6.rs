//! Fig. 6 — QoI error control of PMGARD-HB on S3D molar-concentration
//! products (the four §VI-A pairs: O₂·H, O·OH, H₂·O, H·OH).

use pqr_bench::{print_header, qoi_sweep, qoi_tolerance_series, scaled, to_dataset};
use pqr_datagen::s3d::{self, FIELD_NAMES, PRODUCT_PAIRS};
use pqr_progressive::engine::EngineConfig;
use pqr_progressive::refactored::Scheme;
use pqr_qoi::library::species_product;

fn main() {
    let raw = s3d::generate(&s3d::S3dConfig {
        dims: [scaled(120), scaled(34), scaled(20)],
        ..s3d::S3dConfig::small()
    });
    let ds = to_dataset(&raw);
    let archive = ds
        .refactor_with_bounds(Scheme::PmgardHb, &pqr_bench::paper_ladder())
        .expect("refactor");

    println!("# Fig. 6 — PMGARD-HB error control on S3D species products");
    print_header(&["qoi", "req_tol", "bitrate", "est_rel", "actual_rel"]);

    for (a, b) in PRODUCT_PAIRS {
        let name = format!("{}*{}", FIELD_NAMES[a], FIELD_NAMES[b]);
        let rows = qoi_sweep(
            &ds,
            &archive,
            &name,
            &species_product(a, b),
            &qoi_tolerance_series(),
            EngineConfig::default(),
        );
        for (tol, bitrate, est, actual) in rows {
            println!("{name}\t{tol:.6e}\t{bitrate:.4}\t{est:.6e}\t{actual:.6e}");
        }
    }
}
