//! Fig. 5 — QoI error control of PMGARD-HB on NYX and Hurricane (VTOT).
//!
//! Same sweep as Fig. 4 but on the cosmology and climate stand-ins,
//! demonstrating generality beyond the GE case study.

use pqr_bench::{print_header, qoi_sweep, qoi_tolerance_series, scaled, to_dataset};
use pqr_datagen::{hurricane, nyx};
use pqr_progressive::engine::EngineConfig;
use pqr_progressive::refactored::Scheme;
use pqr_qoi::library::velocity_magnitude;

fn main() {
    println!("# Fig. 5 — PMGARD-HB VTOT error control on NYX and Hurricane");
    print_header(&["dataset", "req_tol", "bitrate", "est_rel", "actual_rel"]);

    let nyx_raw = nyx::generate(&nyx::NyxConfig {
        n: scaled(64),
        ..nyx::NyxConfig::small()
    });
    let hur_raw = hurricane::generate(&hurricane::HurricaneConfig {
        dims: [scaled(25), scaled(120), scaled(120)],
        ..hurricane::HurricaneConfig::small()
    });

    for (label, raw) in [("NYX", nyx_raw), ("Hurricane", hur_raw)] {
        let ds = to_dataset(&raw);
        let archive = ds
            .refactor_with_bounds(Scheme::PmgardHb, &pqr_bench::paper_ladder())
            .expect("refactor");
        let rows = qoi_sweep(
            &ds,
            &archive,
            "VTOT",
            &velocity_magnitude(0, 3),
            &qoi_tolerance_series(),
            EngineConfig::default(),
        );
        for (tol, bitrate, est, actual) in rows {
            println!("{label}\t{tol:.6e}\t{bitrate:.4}\t{est:.6e}\t{actual:.6e}");
        }
    }
}
