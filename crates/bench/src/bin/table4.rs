//! Table IV — refactoring and retrieval wall time on GE-small.
//!
//! Refactoring time per scheme (PSZ3/PSZ3-delta pay the 18-snapshot
//! ladder; PMGARD-HB pays one decomposition + bitplane pass), then VTOT
//! retrieval time at τ = 1e-1 … 1e-5 (fresh engine per cell, as the paper's
//! table is per-request).

use pqr_bench::{ge_small_dataset, paper_ladder, refactor_with_mask};
use pqr_progressive::engine::{EngineConfig, QoiSpec, RetrievalEngine};
use pqr_progressive::refactored::Scheme;
use pqr_qoi::library::velocity_magnitude;
use pqr_util::timer::time_it;

fn main() {
    let ds = ge_small_dataset();
    let expr = velocity_magnitude(0, 3);
    let range = ds.qoi_range(&expr).expect("range");

    println!("# Table IV — refactor and retrieval time (seconds), GE-small, VTOT");
    println!("scheme\trefactor_s\t1e-1\t1e-2\t1e-3\t1e-4\t1e-5");

    for scheme in [Scheme::PmgardHb, Scheme::Psz3, Scheme::Psz3Delta] {
        // refactor timing includes the ladder for snapshot schemes
        let (_, refactor_s) = time_it(|| {
            ds.refactor_with_bounds(scheme, &paper_ladder())
                .expect("refactor")
        });
        let archive = refactor_with_mask(&ds, scheme);
        let mut cells = Vec::new();
        for i in 1..=5 {
            let tol = 10f64.powi(-i);
            let spec = QoiSpec::with_range("VTOT", expr.clone(), tol, range);
            let (_, secs) = time_it(|| {
                let mut engine =
                    RetrievalEngine::new(&archive, EngineConfig::default()).expect("engine");
                let report = engine
                    .retrieve(std::slice::from_ref(&spec))
                    .expect("retrieve");
                assert!(report.satisfied, "{} τ=1e-{i}", scheme.name());
            });
            cells.push(format!("{secs:.3}"));
        }
        println!("{}\t{refactor_s:.3}\t{}", scheme.name(), cells.join("\t"));
    }
}
