//! Table IV — refactoring and retrieval wall time on GE-small.
//!
//! Refactoring time per scheme (PSZ3/PSZ3-delta pay the 18-snapshot
//! ladder; PMGARD-HB pays one decomposition + bitplane pass), then VTOT
//! retrieval time at τ = 1e-1 … 1e-5 (fresh engine per cell, as the paper's
//! table is per-request).

use pqr_bench::{ge_small_dataset, paper_ladder, refactor_with_mask};
use pqr_progressive::engine::{EngineConfig, QoiSpec, RetrievalEngine};
use pqr_progressive::fragstore::FileSource;
use pqr_progressive::refactored::Scheme;
use pqr_qoi::library::velocity_magnitude;
use pqr_util::timer::time_it;

fn main() {
    let ds = ge_small_dataset();
    let expr = velocity_magnitude(0, 3);
    let range = ds.qoi_range(&expr).expect("range");

    println!("# Table IV — refactor and retrieval time (seconds), GE-small, VTOT");
    println!("scheme\trefactor_s\t1e-1\t1e-2\t1e-3\t1e-4\t1e-5");

    let schemes = [Scheme::PmgardHb, Scheme::Psz3, Scheme::Psz3Delta];
    let mut archives = Vec::new();
    for scheme in schemes {
        // refactor timing includes the ladder for snapshot schemes
        let (_, refactor_s) = time_it(|| {
            ds.refactor_with_bounds(scheme, &paper_ladder())
                .expect("refactor")
        });
        let archive = refactor_with_mask(&ds, scheme);
        let mut cells = Vec::new();
        for i in 1..=5 {
            let tol = 10f64.powi(-i);
            let spec = QoiSpec::with_range("VTOT", expr.clone(), tol, range);
            let (_, secs) = time_it(|| {
                let mut engine =
                    RetrievalEngine::new(&archive, EngineConfig::default()).expect("engine");
                let report = engine
                    .retrieve(std::slice::from_ref(&spec))
                    .expect("retrieve");
                assert!(report.satisfied, "{} τ=1e-{i}", scheme.name());
            });
            cells.push(format!("{secs:.3}"));
        }
        println!("{}\t{refactor_s:.3}\t{}", scheme.name(), cells.join("\t"));
        archives.push((scheme, archive));
    }

    // Partial-retrieval efficiency: retrieve from a *file-backed* archive
    // and compare the disk bytes the fragment source actually read against
    // the bytes of data reconstructed — the tracking metric for the
    // fragment-addressed storage layer.
    println!();
    println!("# partial retrieval — disk bytes read vs bytes reconstructed (file-backed, VTOT)");
    println!("scheme\ttol\tdisk_read_B\tarchive_B\trecon_B\tread_frac");
    let dir = std::env::temp_dir().join("pqr_table4");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let recon_bytes = ds.num_fields() * ds.num_elements() * 8;
    for (scheme, archive) in &archives {
        let path = dir.join(format!(
            "table4_{}_{}.pqrx",
            scheme.name(),
            std::process::id()
        ));
        std::fs::write(&path, archive.to_bytes()).expect("write archive");
        let archive_size = std::fs::metadata(&path).expect("stat").len();
        for i in 1..=5 {
            let tol = 10f64.powi(-i);
            let source = std::sync::Arc::new(FileSource::open(&path).expect("open"));
            let mut engine = RetrievalEngine::from_source(source.clone(), EngineConfig::default())
                .expect("engine");
            let spec = QoiSpec::with_range("VTOT", expr.clone(), tol, range);
            let report = engine
                .retrieve(std::slice::from_ref(&spec))
                .expect("retrieve");
            assert!(report.satisfied, "{} τ=1e-{i}", scheme.name());
            let disk = source.disk_bytes_read();
            println!(
                "{}\t1e-{i}\t{disk}\t{archive_size}\t{recon_bytes}\t{:.4}",
                scheme.name(),
                disk as f64 / archive_size as f64
            );
        }
        std::fs::remove_file(&path).ok();
    }
}
