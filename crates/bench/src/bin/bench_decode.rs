//! Decode-throughput harness: measures the word-parallel bitplane kernels
//! against the scalar reference and the end-to-end multi-QoI retrieve at 1
//! vs N decode threads, then emits `BENCH_decode.json` — the repo's
//! recorded perf trajectory (CI smoke-checks that the file is well-formed).
//!
//! Arms:
//!
//! * **kernel** — PMGARD level encode/decode and ZFP refactor/plane
//!   decode, MB/s of raw f64 payload, scalar vs word-parallel
//!   (`speedup` = word / scalar).
//! * **end_to_end** — a 6-field archive on disk, three QoIs sharing
//!   fields, retrieved through the plan executor: scalar kernels with
//!   sequential decode (the pre-acceleration baseline), word kernels
//!   sequential, and word kernels at `threads` decode workers with
//!   overlapped I/O.
//! * **ingest** — the write path end to end: the same 6 fields encoded and
//!   streamed to disk via `Dataset::refactor_to_path`, scalar kernels
//!   serial without overlap (the pre-acceleration ingest) vs word kernels
//!   at `threads` workers with the overlapped archive-write stage.
//! * **reconstruct** — the full-field rebuild after a deep 2-D PMGARD
//!   retrieve: pencil-parallel recompose at `threads` workers vs the
//!   serial pass (`speedup_par`), plus the memoized repeat round — a
//!   same-bound refinement served from the cached reconstruction —
//!   against the cold rebuild (`speedup_memo`).
//!
//! Sizes scale with `PQR_SCALE`; the output path can be overridden with
//! `PQR_BENCH_OUT`.

use pqr_bench::scaled;
use pqr_mgard::bitplane::{encode_level, encode_level_scalar, LevelDecoder};
use pqr_mgard::{Basis, MgardRefactorer};
use pqr_progressive::engine::{EngineConfig, QoiSpec, RetrievalEngine};
use pqr_progressive::field::Dataset;
use pqr_progressive::fragstore::FileSource;
use pqr_progressive::refactored::{RefactoredField, Scheme};
use pqr_qoi::library::{species_product, velocity_magnitude};
use pqr_qoi::QoiExpr;
use pqr_zfp::{ZfpCursor, ZfpRefactorer};
use std::time::Instant;

/// Decode threads for the parallel arm (the acceptance target is "4+").
const THREADS: usize = 4;
/// Timing repetitions per arm; the best (least-noise) run is recorded.
const RUNS: usize = 3;

fn coeffs(n: usize) -> Vec<f64> {
    let mut s = 0x1234_5678u64;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s as f64 / u64::MAX as f64) * 2.0 - 1.0) * 3.0
        })
        .collect()
}

/// Best-of-N wall time of `f`, in milliseconds.
fn best_ms<R>(mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// `(scalar_mb_s, word_mb_s, speedup)` for a kernel over `bytes` of payload.
fn kernel_pair<A, B, RA, RB>(bytes: usize, scalar: A, word: B) -> (f64, f64, f64)
where
    A: FnMut() -> RA,
    B: FnMut() -> RB,
{
    let mb = bytes as f64 / 1e6;
    let s = mb / (best_ms(scalar) / 1e3);
    let w = mb / (best_ms(word) / 1e3);
    (s, w, w / s)
}

fn json_kernel(name: &str, v: (f64, f64, f64)) -> String {
    format!(
        "    \"{name}\": {{\"scalar_mb_s\": {:.2}, \"word_mb_s\": {:.2}, \"speedup\": {:.2}}}",
        v.0, v.1, v.2
    )
}

fn main() {
    let n_kernel = scaled(100_000);
    let data = coeffs(n_kernel);

    // --- kernel arms -----------------------------------------------------
    let enc = encode_level(&data);
    let mgard_encode = kernel_pair(
        n_kernel * 8,
        || encode_level_scalar(&data),
        || encode_level(&data),
    );
    let decode = |scalar: bool| {
        let mut d = if scalar {
            LevelDecoder::new_scalar(enc.exponent, enc.count)
        } else {
            LevelDecoder::new(enc.exponent, enc.count)
        };
        for p in &enc.planes {
            d.push_plane(p).unwrap();
        }
        d.coefficients()
    };
    let mgard_decode = kernel_pair(n_kernel * 8, || decode(true), || decode(false));
    let zstream = ZfpRefactorer::new().refactor(&data, &[n_kernel]).unwrap();
    let zdecode = |scalar: bool| {
        let mut cur = if scalar {
            ZfpCursor::new_scalar(zstream.meta())
        } else {
            ZfpCursor::new(zstream.meta())
        };
        for p in zstream.plane_payloads() {
            cur.push_plane(p).unwrap();
        }
        cur.reconstruct()
    };
    let zfp_decode = kernel_pair(n_kernel * 8, || zdecode(true), || zdecode(false));
    let zfp_encode = kernel_pair(
        n_kernel * 8,
        || {
            ZfpRefactorer::new()
                .refactor_scalar(&data, &[n_kernel])
                .unwrap()
        },
        || ZfpRefactorer::new().refactor(&data, &[n_kernel]).unwrap(),
    );

    // --- end-to-end arms -------------------------------------------------
    let n = scaled(120_000);
    let mut ds = Dataset::new(&[n]);
    for (f, name) in ["Vx", "Vy", "Vz", "P", "T", "rho"].iter().enumerate() {
        ds.add_field(
            name,
            (0..n)
                .map(|i| ((i + f * 101) as f64 * (0.007 + f as f64 * 0.003)).sin() * 25.0 + 40.0)
                .collect(),
        )
        .unwrap();
    }
    // refactor with the word kernels (archive bytes are identical either way)
    let archive = ds.refactor(Scheme::PmgardHb).unwrap();
    let dir = std::env::temp_dir().join("pqr_bench_decode");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("archive_{}.pqrx", std::process::id()));
    std::fs::write(&path, archive.to_bytes()).expect("write archive");

    let specs = vec![
        QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-10, &ds).unwrap(),
        QoiSpec::relative("PT", species_product(3, 4), 1e-10, &ds).unwrap(),
        QoiSpec::relative("rho2", QoiExpr::var(5).pow(2), 1e-10, &ds).unwrap(),
    ];
    let mut overlap_saved = 0u64;
    let mut retrieve = |scalar_kernels: bool, workers: usize, overlap: bool| -> f64 {
        if scalar_kernels {
            std::env::set_var("PQR_SCALAR_KERNELS", "1");
        } else {
            std::env::remove_var("PQR_SCALAR_KERNELS");
        }
        let ms = best_ms(|| {
            let src = std::sync::Arc::new(FileSource::open(&path).expect("open archive"));
            let cfg = EngineConfig {
                workers,
                overlap_io: overlap,
                ..Default::default()
            };
            let mut engine = RetrievalEngine::from_source(src, cfg).expect("engine");
            let report = engine.retrieve(&specs).expect("retrieve");
            assert!(report.satisfied, "bench retrieval must certify");
            overlap_saved = overlap_saved.max(engine.source_stats().overlap_saved_ms);
            report.total_fetched
        });
        std::env::remove_var("PQR_SCALAR_KERNELS");
        ms
    };
    let scalar_seq_ms = retrieve(true, 1, false); // the pre-acceleration path
    let word_seq_ms = retrieve(false, 1, false); // kernel layer in isolation
    let word_par_ms = retrieve(false, THREADS, true); // full stack
    std::fs::remove_file(&path).ok();

    // --- ingest arms -----------------------------------------------------
    let ingest_path = dir.join(format!("ingest_{}.pqrx", std::process::id()));
    let ingest = |scalar_kernels: bool, workers: usize, overlap: bool| -> f64 {
        if scalar_kernels {
            std::env::set_var("PQR_SCALAR_KERNELS", "1");
        } else {
            std::env::remove_var("PQR_SCALAR_KERNELS");
        }
        let ms = best_ms(|| {
            ds.refactor_to_path(
                Scheme::PmgardHb,
                &pqr_progressive::refactored::default_snapshot_bounds(),
                None,
                &[],
                &ingest_path,
                workers,
                overlap,
            )
            .expect("ingest")
        });
        std::env::remove_var("PQR_SCALAR_KERNELS");
        ms
    };
    let ingest_scalar_seq_ms = ingest(true, 1, false); // pre-acceleration ingest
    let ingest_word_par_ms = ingest(false, THREADS, true); // full write stack
    std::fs::remove_file(&ingest_path).ok();

    // --- reconstruct arm -------------------------------------------------
    // a deep 2-D retrieve is reconstruct-heavy: every refinement round used
    // to pay one full-field recompose over [side, side]
    let side = (scaled(262_144) as f64).sqrt().round() as usize;
    let rdata = coeffs(side * side);
    let stream = MgardRefactorer::new(Basis::Hierarchical)
        .refactor(&rdata, &[side, side])
        .unwrap();
    let mut mreader = stream.reader();
    mreader.refine_to(0.0).unwrap(); // fetch every plane: the deepest retrieve
    let mut rbuf = Vec::new();
    let recon_serial_ms = best_ms(|| mreader.reconstruct_into(&mut rbuf, 1));
    let recon_par_ms = best_ms(|| mreader.reconstruct_into(&mut rbuf, THREADS));

    // memoized repeat round: the first refine decodes and rebuilds (cold);
    // asking for the same bound again must be answered from the cached
    // reconstruction without touching the recompose pipeline
    let rf = RefactoredField::refactor(Scheme::PmgardHb, &rdata, &[side, side]).unwrap();
    let eb = 1e-6 * rf.max_abs();
    let mut freader = rf.reader();
    freader.set_workers(THREADS);
    let t0 = Instant::now();
    freader.refine_to(eb).unwrap();
    let recon_cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let recon_memo_ms = best_ms(|| freader.refine_to(eb).unwrap()).max(1e-6);
    assert!(
        freader.recon_cache_hits() > 0,
        "repeat rounds must hit the reconstruction cache"
    );

    // --- report ----------------------------------------------------------
    let out_path =
        std::env::var("PQR_BENCH_OUT").unwrap_or_else(|_| "BENCH_decode.json".to_string());
    let json = format!(
        "{{\n  \"schema\": \"pqr-bench-decode/3\",\n  \"scale\": {},\n  \
         \"kernel_elements\": {n_kernel},\n  \"retrieve_elements_per_field\": {n},\n  \
         \"fields\": 6,\n  \"threads\": {THREADS},\n  \"kernel\": {{\n{},\n{},\n{},\n{}\n  }},\n  \
         \"end_to_end\": {{\n    \"scalar_seq_ms\": {:.1},\n    \"word_seq_ms\": {:.1},\n    \
         \"word_par_ms\": {:.1},\n    \"speedup_word_seq\": {:.2},\n    \
         \"speedup_word_par\": {:.2},\n    \"overlap_saved_ms\": {}\n  }},\n  \
         \"ingest\": {{\n    \"scalar_seq_ms\": {:.1},\n    \"word_par_ms\": {:.1},\n    \
         \"scalar_seq_fields_per_s\": {:.2},\n    \"word_par_fields_per_s\": {:.2},\n    \
         \"speedup\": {:.2}\n  }},\n  \
         \"reconstruct\": {{\n    \"elements\": {},\n    \"cores\": {},\n    \
         \"serial_ms\": {:.2},\n    \
         \"par_ms\": {:.2},\n    \"speedup_par\": {:.2},\n    \"cold_round_ms\": {:.2},\n    \
         \"memo_round_ms\": {:.4},\n    \"speedup_memo\": {:.1}\n  }}\n}}\n",
        pqr_bench::scale(),
        json_kernel("mgard_encode", mgard_encode),
        json_kernel("mgard_decode", mgard_decode),
        json_kernel("zfp_encode", zfp_encode),
        json_kernel("zfp_decode", zfp_decode),
        scalar_seq_ms,
        word_seq_ms,
        word_par_ms,
        scalar_seq_ms / word_seq_ms,
        scalar_seq_ms / word_par_ms,
        overlap_saved,
        ingest_scalar_seq_ms,
        ingest_word_par_ms,
        6e3 / ingest_scalar_seq_ms,
        6e3 / ingest_word_par_ms,
        ingest_scalar_seq_ms / ingest_word_par_ms,
        side * side,
        std::thread::available_parallelism().map_or(1, |c| c.get()),
        recon_serial_ms,
        recon_par_ms,
        recon_serial_ms / recon_par_ms,
        recon_cold_ms,
        recon_memo_ms,
        recon_cold_ms / recon_memo_ms,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_decode.json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
