//! Fig. 4 — QoI error control of PMGARD-HB on GE-small, all six QoIs.
//!
//! Progressive QoI tolerance sweep τ = 0.1·2⁻ⁱ (i = 0..19) with a
//! persistent engine; per step prints bitrate, max *estimated* QoI error
//! and max *actual* QoI error (both relative to the QoI range). The
//! invariant on display: actual ≤ estimated ≤ requested, per §VI-B.
//!
//! Pass `--no-mask` to disable the zero-velocity outlier mask (§V-A
//! ablation — √-type QoIs then become unboundable at wall nodes).

use pqr_bench::{ge_small_dataset, print_header, qoi_sweep, qoi_tolerance_series};
use pqr_progressive::engine::EngineConfig;
use pqr_progressive::refactored::Scheme;

fn main() {
    let no_mask = std::env::args().any(|a| a == "--no-mask");
    let ds = ge_small_dataset();
    let archive = if no_mask {
        ds.refactor_with_bounds(Scheme::PmgardHb, &pqr_bench::paper_ladder())
            .expect("refactor")
    } else {
        pqr_bench::refactor_with_mask(&ds, Scheme::PmgardHb)
    };

    println!(
        "# Fig. 4 — PMGARD-HB QoI error control on GE-small (mask: {})",
        !no_mask
    );
    print_header(&["qoi", "req_tol", "bitrate", "est_rel", "actual_rel"]);

    for (name, expr) in pqr_qoi::ge::all() {
        let rows = qoi_sweep(
            &ds,
            &archive,
            name,
            &expr,
            &qoi_tolerance_series(),
            EngineConfig::default(),
        );
        for (tol, bitrate, est, actual) in rows {
            println!("{name}\t{tol:.6e}\t{bitrate:.4}\t{est:.6e}\t{actual:.6e}");
        }
    }
}
