//! Ablation studies beyond the paper's figures — each section isolates one
//! design choice DESIGN.md calls out and prints a tab-separated series.
//!
//! 1. **Representation** — the paper's three schemes + PMGARD(OB) + the
//!    PZFP extension, single-request bitrates on VTOT (the Fig. 7 protocol
//!    with the scheme axis widened).
//! 2. **Estimator** — the paper's §IV theorems vs the exact-supremum √
//!    variant vs generic interval arithmetic: retrieval cost and the
//!    estimated-vs-actual gap each estimator leaves on the table.
//! 3. **Reduction factor** — Algorithm 4's `c` (paper: 1.5): iteration
//!    count vs over-retrieval for gentler/harsher tightening.
//!
//! Run: `cargo run -p pqr-bench --release --bin ablation`

use pqr_bench::{ge_small_dataset, print_header, qoi_single_requests, refactor_with_mask};
use pqr_progressive::engine::{EngineConfig, QoiSpec, RetrievalEngine};
use pqr_progressive::refactored::Scheme;
use pqr_qoi::bounds::{BoundConfig, Estimator, SqrtMode};
use pqr_util::stats;

fn main() {
    let ds = ge_small_dataset();
    let vtot = pqr_qoi::ge::v_total();
    let range = ds.qoi_range(&vtot).expect("range");
    let tols: Vec<f64> = (0..=16).map(|i| 0.1 * (2.0f64).powi(-i)).collect();

    // ---- 1. representation ablation -------------------------------------
    println!("# Ablation 1 — representation (single-request VTOT bitrates)");
    print_header(&["scheme", "req_tol", "bitrate"]);
    for scheme in Scheme::extended() {
        let archive = refactor_with_mask(&ds, scheme);
        for (tol, bitrate) in qoi_single_requests(&archive, "VTOT", &vtot, range, &tols) {
            println!("{}\t{tol:.6e}\t{bitrate:.4}", scheme.name());
        }
    }

    // ---- 2. estimator ablation -------------------------------------------
    println!();
    println!("# Ablation 2 — estimator (PMGARD-HB, six GE QoIs, tol 1e-4)");
    print_header(&["qoi", "estimator", "bitrate", "est_rel", "actual_rel"]);
    let archive = refactor_with_mask(&ds, Scheme::PmgardHb);
    let estimators: [(&str, BoundConfig); 3] = [
        ("paper", BoundConfig::default()),
        (
            "exact-sqrt",
            BoundConfig {
                sqrt_mode: SqrtMode::Exact,
                ..Default::default()
            },
        ),
        (
            "interval",
            BoundConfig {
                estimator: Estimator::Interval,
                ..Default::default()
            },
        ),
    ];
    for (name, expr) in pqr_qoi::ge::all() {
        let qrange = ds.qoi_range(&expr).expect("range");
        let truth = ds.qoi_values(&expr);
        for (label, bc) in &estimators {
            let cfg = EngineConfig {
                bound_config: *bc,
                ..Default::default()
            };
            let mut engine = RetrievalEngine::new(&archive, cfg).expect("engine");
            let spec = QoiSpec::with_range(name, expr.clone(), 1e-4, qrange);
            let report = engine.retrieve(&[spec]).expect("retrieve");
            let actual = stats::max_abs_diff(&truth, &engine.qoi_values(&expr));
            println!(
                "{name}\t{label}\t{:.4}\t{:.3e}\t{:.3e}",
                report.bitrate,
                report.max_est_errors[0] / qrange,
                actual / qrange,
            );
        }
    }

    // ---- 2b. estimator ablation at the √ pole (no mask) -------------------
    // The interesting regime: without the zero-outlier mask, the paper's
    // Theorem 2 estimate is ∞ at exact-zero wall nodes, so paper-mode
    // retrieval can only exhaust the stream and give up; the exact-supremum
    // and interval estimators stay finite and converge. This quantifies
    // what §V-A's mask buys each estimator.
    println!();
    println!("# Ablation 2b — VTOT without the zero mask (tol 1e-3)");
    print_header(&["estimator", "satisfied", "bitrate", "iterations"]);
    let unmasked = ds
        .refactor_with_bounds(Scheme::PmgardHb, &pqr_bench::paper_ladder())
        .expect("refactor");
    for (label, bc) in &estimators {
        let cfg = EngineConfig {
            bound_config: *bc,
            max_iterations: 10,
            ..Default::default()
        };
        let mut engine = RetrievalEngine::new(&unmasked, cfg).expect("engine");
        let spec = QoiSpec::with_range("VTOT", vtot.clone(), 1e-3, range);
        let report = engine.retrieve(&[spec]).expect("retrieve");
        println!(
            "{label}\t{}\t{:.4}\t{}",
            report.satisfied, report.bitrate, report.iterations
        );
    }

    // ---- 2c. region-of-interest scope -------------------------------------
    // Restricting the tolerance to a window (the RoI thread of the paper's
    // related work) shrinks the *error-control scope*. The effect depends on
    // the QoI's sensitivity profile: for VTOT (gradient ≡ 1) every point is
    // equally hard and a region saves nothing on homogeneous data; for u²
    // (sensitivity 2|u|) excluding the violent zone relaxes ε by the
    // amplitude ratio. A two-zone field makes both regimes visible.
    println!();
    println!("# Ablation 2c — region-restricted u^2 on a two-zone field (tol 1e-5)");
    print_header(&["scope", "bitrate"]);
    let n = 40_000;
    let (zoned, zone_ranges) =
        pqr_datagen::zones::generate(&pqr_datagen::zones::ZonesConfig::quiet_violent(n));
    let mut zds = pqr_progressive::field::Dataset::new(&[n]);
    zds.add_field("u", zoned.field("u").expect("field").to_vec())
        .expect("field");
    let usq = pqr_qoi::QoiExpr::var(0).pow(2);
    let urange = zds.qoi_range(&usq).expect("range");
    for (label, region) in [
        ("global", None),
        ("quiet half", Some(zone_ranges[0])),
        ("violent half", Some(zone_ranges[1])),
    ] {
        let archive = zds.refactor(Scheme::PmgardHb).expect("refactor");
        let mut engine = RetrievalEngine::new(&archive, EngineConfig::default()).expect("engine");
        let mut spec = QoiSpec::with_range("u2", usq.clone(), 1e-5, urange);
        if let Some((lo, hi)) = region {
            spec = spec.restrict_to(lo, hi);
        }
        let report = engine.retrieve(&[spec]).expect("retrieve");
        println!("{label}\t{:.4}", report.bitrate);
    }

    // ---- 3. reduction-factor ablation -------------------------------------
    println!();
    println!("# Ablation 3 — Algorithm 4 reduction factor c (VTOT, tol sweep)");
    print_header(&["c", "req_tol", "bitrate", "iterations"]);
    for c in [1.25, 1.5, 2.0, 4.0] {
        let archive = refactor_with_mask(&ds, Scheme::PmgardHb);
        for &tol in &[1e-2, 1e-4, 1e-6] {
            let cfg = EngineConfig {
                reduction_factor: c,
                ..Default::default()
            };
            let mut engine = RetrievalEngine::new(&archive, cfg).expect("engine");
            let spec = QoiSpec::with_range("VTOT", vtot.clone(), tol, range);
            let report = engine.retrieve(&[spec]).expect("retrieve");
            println!(
                "{c}\t{tol:.1e}\t{:.4}\t{}",
                report.bitrate, report.iterations
            );
        }
    }
}
