//! Fig. 8 — retrieval efficiency of the three progressive approaches on
//! S3D: single-request bitrates for the four species-product QoIs.

use pqr_bench::{print_header, qoi_single_requests, qoi_tolerance_series, scaled, to_dataset};
use pqr_datagen::s3d::{self, FIELD_NAMES, PRODUCT_PAIRS};
use pqr_progressive::refactored::Scheme;
use pqr_qoi::library::species_product;

fn main() {
    let raw = s3d::generate(&s3d::S3dConfig {
        dims: [scaled(120), scaled(34), scaled(20)],
        ..s3d::S3dConfig::small()
    });
    let ds = to_dataset(&raw);
    println!("# Fig. 8 — single-request retrieval efficiency on S3D");
    print_header(&["qoi", "scheme", "req_tol", "bitrate"]);

    for scheme in [Scheme::Psz3, Scheme::Psz3Delta, Scheme::PmgardHb] {
        let archive = ds
            .refactor_with_bounds(scheme, &pqr_bench::paper_ladder())
            .expect("refactor");
        for (a, b) in PRODUCT_PAIRS {
            let name = format!("{}*{}", FIELD_NAMES[a], FIELD_NAMES[b]);
            let expr = species_product(a, b);
            let range = ds.qoi_range(&expr).expect("range");
            for (tol, bitrate) in
                qoi_single_requests(&archive, &name, &expr, range, &qoi_tolerance_series())
            {
                println!("{name}\t{}\t{tol:.6e}\t{bitrate:.4}", scheme.name());
            }
        }
    }
}
