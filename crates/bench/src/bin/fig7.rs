//! Fig. 7 — retrieval efficiency of the three progressive approaches on
//! GE-small: bitrate under a *single* requested QoI error (fresh engine per
//! request, the "generic case" of §VI-C), τ = 0.1·2⁻ⁱ, i = 0..19, for all
//! six QoIs × {PSZ3, PSZ3-delta, PMGARD-HB}.

use pqr_bench::{
    ge_small_dataset, print_header, qoi_single_requests, qoi_tolerance_series, refactor_with_mask,
};
use pqr_progressive::refactored::Scheme;

fn main() {
    let ds = ge_small_dataset();
    println!("# Fig. 7 — single-request retrieval efficiency on GE-small");
    print_header(&["qoi", "scheme", "req_tol", "bitrate"]);

    let schemes = [Scheme::Psz3, Scheme::Psz3Delta, Scheme::PmgardHb];
    for scheme in schemes {
        let archive = refactor_with_mask(&ds, scheme);
        for (name, expr) in pqr_qoi::ge::all() {
            let range = ds.qoi_range(&expr).expect("range");
            for (tol, bitrate) in
                qoi_single_requests(&archive, name, &expr, range, &qoi_tolerance_series())
            {
                println!("{name}\t{}\t{tol:.6e}\t{bitrate:.4}", scheme.name());
            }
        }
    }
}
