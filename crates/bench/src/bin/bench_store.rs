//! Bounded-memory store harness: one mixed-tolerance request series
//! replayed against the same archive under three store budgets —
//! unbounded, ½ and ⅛ of the measured working set — then emits
//! `BENCH_store.json` (CI gates peak residency against the budget and
//! throughput against the unbounded arm).
//!
//! The unbounded arm doubles as the working-set probe: eviction is off but
//! the [`StoreBudget`] still tracks peak resident bytes, so its peak *is*
//! the working set the bounded arms are budgeted from. The series streams
//! across three field groups and then revisits each at a tighter and a
//! looser tolerance, so bounded arms must evict cold groups and
//! transparently rehydrate them on revisit — the cost the bench measures.
//!
//! Reported per arm: wall time, requests-per-second, peak/final resident
//! bytes, evictions, rehydration decodes/bytes and source bytes, plus the
//! derived throughput ratios. Sizes scale with `PQR_SCALE`; the output
//! path can be overridden with `PQR_BENCH_OUT`.

use pqr_bench::scaled;
use pqr_core::{Archive, ArchiveBuilder};
use pqr_progressive::pager::StoreBudget;
use pqr_qoi::QoiExpr;
use std::sync::Arc;
use std::time::Instant;

/// Timing repetitions per arm; the best (least-noise) run is recorded.
const RUNS: usize = 3;

/// Streaming pass over all six fields, tight revisits of the first
/// three, then one loose revisit: the tight revisits mix rehydration
/// with genuine advances, the final loose one is pure rehydration work
/// for a bounded store (no new fragments). Each request derives from a
/// single field — the store's eviction granularity — so even a ⅛ budget
/// (smaller than one decoded field here) serves the series with at most
/// one rehydration per revisit rather than thrashing inside a request.
const SERIES: [(&str, f64); 10] = [
    ("Vx2", 1e-4),
    ("Vy2", 1e-4),
    ("Vz2", 1e-4),
    ("P2", 1e-4),
    ("T2", 1e-4),
    ("Rho2", 1e-4),
    ("Vx2", 1e-7),
    ("Vy2", 1e-7),
    ("Vz2", 1e-7),
    ("Vx2", 1e-2),
];

struct Arm {
    budget_bytes: u64,
    wall_ms: f64,
    peak_resident: u64,
    resident_end: u64,
    evictions: u64,
    rehydration_decodes: u64,
    rehydration_bytes: u64,
    source_bytes: u64,
}

impl Arm {
    fn requests_per_s(&self) -> f64 {
        SERIES.len() as f64 / (self.wall_ms / 1e3).max(1e-9)
    }
}

fn build_archive(path: &std::path::Path) {
    let n = scaled(120_000);
    let mut builder = ArchiveBuilder::new(&[n]);
    for (f, name) in ["Vx", "Vy", "Vz", "P", "T", "rho"].iter().enumerate() {
        // smooth flow + deterministic broadband noise, as in bench_serve:
        // the noise floor keeps deep bitplanes incompressible so tight
        // tolerances carry real decode (and thus real rehydration) work
        let mut s = 0x9e37_79b9_7f4a_7c15u64 ^ (f as u64);
        builder = builder.field(
            name,
            (0..n)
                .map(|i| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    let noise = (s as f64 / u64::MAX as f64 - 0.5) * 2.0;
                    let x = i as f64 / n as f64;
                    (x * (7.0 + f as f64)).sin() * 20.0 + (x * 31.0).cos() * 3.0 + noise + 40.0
                })
                .collect(),
        );
    }
    for (f, name) in ["Vx2", "Vy2", "Vz2", "P2", "T2", "Rho2"].iter().enumerate() {
        builder = builder.qoi(name, QoiExpr::var(f).pow(2));
    }
    builder
        .build()
        .expect("archive build")
        .save(path)
        .expect("archive save");
}

/// Replays the series against a fresh service under `limit` (0 =
/// unbounded); each request is its own session, as a serving layer would
/// issue them.
fn run_arm(path: &std::path::Path, limit: u64) -> Arm {
    let mut best: Option<Arm> = None;
    for _ in 0..RUNS {
        let budget = Arc::new(if limit == 0 {
            StoreBudget::unbounded()
        } else {
            StoreBudget::with_limit(limit)
        });
        // archive open + service construction inside the timed region:
        // both arms pay identical setup, so ratios isolate eviction cost
        let t0 = Instant::now();
        let archive = Archive::open(path).expect("open archive");
        let service = archive
            .service_with_budget(Arc::clone(&budget))
            .expect("service");
        for (name, tol) in SERIES {
            let mut session = service.session().expect("session");
            assert!(
                session.request(name, tol).expect("request").satisfied,
                "every bench request must certify ({name}@{tol})"
            );
        }
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let stats = service.store_stats();
        let arm = Arm {
            budget_bytes: limit,
            wall_ms,
            peak_resident: budget.peak_resident_bytes(),
            resident_end: stats.resident_bytes,
            evictions: stats.evictions,
            rehydration_decodes: stats.rehydration_decodes,
            rehydration_bytes: stats.rehydration_bytes,
            source_bytes: archive.source_stats().fetched_bytes,
        };
        if best.as_ref().is_none_or(|b| arm.wall_ms < b.wall_ms) {
            best = Some(arm);
        }
    }
    best.expect("at least one run")
}

fn json_arm(a: &Arm) -> String {
    format!(
        "{{\"budget_bytes\": {}, \"wall_ms\": {:.2}, \"requests_per_s\": {:.2}, \
         \"peak_resident_bytes\": {}, \"resident_end_bytes\": {}, \"evictions\": {}, \
         \"rehydration_decodes\": {}, \"rehydration_bytes\": {}, \"source_bytes\": {}}}",
        a.budget_bytes,
        a.wall_ms,
        a.requests_per_s(),
        a.peak_resident,
        a.resident_end,
        a.evictions,
        a.rehydration_decodes,
        a.rehydration_bytes,
        a.source_bytes
    )
}

fn main() {
    let dir = std::env::temp_dir().join("pqr_bench_store");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("store_{}.pqrx", std::process::id()));
    build_archive(&path);

    let unbounded = run_arm(&path, 0);
    let working_set = unbounded.peak_resident;
    assert!(working_set > 0, "peak tracking must see the working set");
    let half = run_arm(&path, working_set / 2);
    let eighth = run_arm(&path, working_set / 8);
    std::fs::remove_file(&path).ok();

    // eviction granularity is one field; the budget can be transiently
    // overshot by at most the field being (re)charged before enforcement
    // runs, so CI allows peaks up to budget + this slack
    let slack = working_set / 4;
    let ratio_half = half.requests_per_s() / unbounded.requests_per_s().max(1e-9);
    let ratio_eighth = eighth.requests_per_s() / unbounded.requests_per_s().max(1e-9);
    let json = format!(
        "{{\n  \"schema\": \"pqr-bench-store/1\",\n  \"requests\": {},\n  \
         \"traffic\": \"6 fields streamed, 3 revisited tight, one loose revisit (10 requests)\",\n  \
         \"working_set_bytes\": {working_set},\n  \"slack_bytes\": {slack},\n  \
         \"unbounded\": {},\n  \"half\": {},\n  \"eighth\": {},\n  \
         \"throughput_ratio_half\": {ratio_half:.3},\n  \
         \"throughput_ratio_eighth\": {ratio_eighth:.3}\n}}\n",
        SERIES.len(),
        json_arm(&unbounded),
        json_arm(&half),
        json_arm(&eighth),
    );
    let out = std::env::var("PQR_BENCH_OUT").unwrap_or_else(|_| "BENCH_store.json".into());
    std::fs::write(&out, &json).expect("write BENCH_store.json");
    println!("{json}");
    println!(
        "# unbounded {:.1} ms, half {:.1} ms ({ratio_half:.2}x), eighth {:.1} ms \
         ({ratio_eighth:.2}x); eighth peak {} B vs budget {} B (+{} slack); wrote {out}",
        unbounded.wall_ms,
        half.wall_ms,
        eighth.wall_ms,
        eighth.peak_resident,
        eighth.budget_bytes,
        slack
    );
}
