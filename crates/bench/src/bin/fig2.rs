//! Fig. 2 — primary-data rate-distortion of the progressive families.
//!
//! For each of the four GE fields (VelocityX, VelocityZ, Pressure, Density)
//! and each representation (PSZ3, PSZ3-delta, PMGARD, PMGARD-HB), issue the
//! paper's progressive request series ε'ᵢ = 0.1·2⁻ⁱ (i = 1..20) against a
//! *persistent* reader (cumulative bytes — the progressive scenario that
//! exposes PSZ3's snapshot redundancy and staircases) and print the
//! resulting bitrate per requested relative error.

use pqr_bench::{ge_small_dataset, paper_ladder, primary_bound_series, print_header};
use pqr_progressive::refactored::{RefactoredField, Scheme};

fn main() {
    let ds = ge_small_dataset();
    let fields = ["VelocityX", "VelocityZ", "Pressure", "Density"];
    println!("# Fig. 2 — requested relative error vs bitrate (cumulative progressive requests)");
    print_header(&["field", "scheme", "req_rel_eb", "bitrate"]);

    for field_name in fields {
        let fi = ds.field_index(field_name).expect("field");
        let data = ds.field(fi);
        let n = data.len();
        for scheme in Scheme::all() {
            let rf = RefactoredField::refactor_with_bounds(scheme, data, &[n], &paper_ladder())
                .expect("refactor");
            let range = rf.value_range();
            let mut reader = rf.reader();
            for &rel in &primary_bound_series() {
                reader.refine_to(rel * range).expect("refine");
                println!(
                    "{field_name}\t{}\t{:.6e}\t{:.4}",
                    scheme.name(),
                    rel,
                    pqr_util::stats::bitrate(reader.total_fetched(), n)
                );
            }
        }
    }
}
