//! Fig. 9 — remote data transfer time (simulated MCC→Anvil Globus pipe),
//! GE-large, 96 blocks / 96 workers, VTOT at τ = 1e-1 … 1e-5.
//!
//! Prints, per scheme and tolerance: fetched bytes, measured retrieval
//! seconds, simulated transfer seconds, total, and the speedup over the
//! raw-data baseline (the paper's dashed line; its measured counterpart is
//! 11.7 s for 4.67 GB). Fixed network costs are scaled with the dataset so
//! the bandwidth-vs-bytes regime matches the paper's (see EXPERIMENTS.md).

use pqr_bench::scaled;
use pqr_datagen::ge::{self, GeConfig};
use pqr_progressive::engine::QoiSpec;
use pqr_progressive::field::Dataset;
use pqr_progressive::refactored::Scheme;
use pqr_qoi::library::velocity_magnitude;
use pqr_transfer::pipeline::baseline_transfer_secs;
use pqr_transfer::{run_pipeline, NetworkModel, PipelineConfig, RemoteStore};

fn main() {
    let block_len = scaled(12_000);
    let raw_blocks = ge::generate(&GeConfig::large().with_block_len(block_len));
    let vel = ["VelocityX", "VelocityY", "VelocityZ"];

    // scale the pipe's fixed costs with the dataset (keeps the paper's
    // bandwidth-dominated regime at laptop sizes)
    let raw_bytes = 96.0 * block_len as f64 * 3.0 * 8.0;
    let factor = raw_bytes / 4.67e9;
    let network = {
        let mut n = NetworkModel::globus_mcc_to_anvil();
        n.latency_s *= factor;
        n.per_request_overhead_s *= factor;
        n
    };

    // Retrieval compute is reconstructed as the 96-core makespan from
    // measured per-block times (the paper has 96 physical Anvil cores; a
    // laptop oversubscribes them and would overstate compute ~12×).
    println!("# Fig. 9 — simulated Globus transfer, GE-large, 96 workers, VTOT");
    println!("scheme\treq_tol\tbytes\tretrieval96_s\ttransfer_s\ttotal_s\tspeedup_vs_raw");

    for scheme in [Scheme::PmgardHb, Scheme::Psz3, Scheme::Psz3Delta] {
        // refactor each block (3 velocity fields + mask) under this scheme
        let mut ranges = Vec::new();
        let refactored: Vec<_> = raw_blocks
            .iter()
            .map(|b| {
                let mut ds = Dataset::new(&b.dims);
                for name in vel {
                    ds.add_field(name, b.field(name).unwrap().to_vec()).unwrap();
                }
                ranges.push(ds.qoi_range(&velocity_magnitude(0, 3)).unwrap());
                let mut rd = ds
                    .refactor_with_bounds(scheme, &pqr_bench::paper_ladder())
                    .unwrap();
                rd.set_mask(ds.zero_mask(&[0, 1, 2])).unwrap();
                rd
            })
            .collect();
        let store = std::sync::Arc::new(RemoteStore::new(refactored));
        let cfg = PipelineConfig {
            workers: 96,
            network,
            ..Default::default()
        };
        let baseline = baseline_transfer_secs(&store, &cfg, 3);
        if scheme == Scheme::PmgardHb {
            println!(
                "raw-baseline\t-\t{}\t0.000\t{baseline:.3}\t{baseline:.3}\t1.00",
                store.raw_bytes()
            );
        }
        for i in 1..=5 {
            let tol = 10f64.powi(-i);
            store.reset_counters();
            let result = run_pipeline(&store, &cfg, |b| {
                vec![QoiSpec::with_range(
                    "VTOT",
                    velocity_magnitude(0, 3),
                    tol,
                    ranges[b],
                )]
            })
            .expect("pipeline");
            assert!(result.all_satisfied(), "{} τ=1e-{i}", scheme.name());
            let total = result.total_secs_at(96);
            println!(
                "{}\t1e-{i}\t{}\t{:.4}\t{:.4}\t{:.4}\t{:.2}",
                scheme.name(),
                result.total_bytes,
                result.makespan_secs(96),
                result.transfer_secs,
                total,
                baseline / total
            );
        }
    }
}
