//! Fig. 3 — impact of the decomposition basis (OB vs HB) on GE-small.
//!
//! For each of the four GE fields, sweep the progressive primary-data
//! bounds and print, per request: the requested tolerance, the estimator's
//! guaranteed bound, and the measured real error — for PMGARD (orthogonal
//! basis, OB) and PMGARD-HB (hierarchical basis, HB). The OB rows show the
//! estimated≫real over-retrieval gap; the HB rows track closely.

use pqr_bench::{ge_small_dataset, primary_bound_series, print_header};
use pqr_mgard::{Basis, MgardRefactorer};
use pqr_util::stats;

fn main() {
    let ds = ge_small_dataset();
    let fields = ["VelocityX", "VelocityZ", "Pressure", "Density"];
    println!("# Fig. 3 — requested vs estimated vs real error, OB vs HB");
    print_header(&[
        "field", "basis", "req_rel", "bitrate", "est_rel", "real_rel",
    ]);

    for field_name in fields {
        let fi = ds.field_index(field_name).expect("field");
        let data = ds.field(fi);
        let n = data.len();
        let range = stats::value_range(data);
        for (basis, tag) in [(Basis::Orthogonal, "OB"), (Basis::Hierarchical, "HB")] {
            let stream = MgardRefactorer::new(basis)
                .refactor(data, &[n])
                .expect("refactor");
            let mut reader = stream.reader();
            for &rel in &primary_bound_series() {
                reader.refine_to(rel * range).expect("refine");
                let est = reader.guaranteed_bound() / range;
                let real = stats::max_abs_diff(data, &reader.reconstruct()) / range;
                println!(
                    "{field_name}\t{tag}\t{:.6e}\t{:.4}\t{:.6e}\t{:.6e}",
                    rel,
                    stats::bitrate(reader.total_fetched(), n),
                    est,
                    real
                );
            }
        }
    }
}
