//! Table III — dataset inventory: dims, field counts, sizes.
//!
//! Prints the generated stand-ins at current `PQR_SCALE` alongside the
//! paper's original specification for comparison.

use pqr_bench::{scaled, to_dataset};
use pqr_datagen::ge::{self, GeConfig};
use pqr_datagen::{hurricane, nyx, s3d};

fn mb(bytes: usize) -> f64 {
    bytes as f64 / 1_000_000.0
}

fn main() {
    println!(
        "# Table III — datasets and QoIs (stand-ins at PQR_SCALE={})",
        pqr_bench::scale()
    );
    println!("dataset\tdims\tnv\ttype\tsize_MB\tpaper_size\tqois");

    let ge_small = ge::concat(&ge::generate(
        &GeConfig::small().with_block_len(scaled(3_400)),
    ));
    println!(
        "GE-small\t200x{{}} ({} pts)\t5\tdouble\t{:.2}\t137.96 MB\tEq.(1)-(6)",
        ge_small.num_elements(),
        mb(ge_small.raw_bytes())
    );

    let hur = hurricane::generate(&hurricane::HurricaneConfig {
        dims: [scaled(25), scaled(120), scaled(120)],
        ..hurricane::HurricaneConfig::small()
    });
    println!(
        "Hurricane\t{:?}\t3\tdouble\t{:.2}\t572.20 MB\tTotal velocity",
        hur.dims,
        mb(hur.raw_bytes())
    );

    let nyx_ds = nyx::generate(&nyx::NyxConfig {
        n: scaled(64),
        ..nyx::NyxConfig::small()
    });
    println!(
        "NYX\t{:?}\t3\tdouble\t{:.2}\t3.00 GB\tTotal velocity",
        nyx_ds.dims,
        mb(nyx_ds.raw_bytes())
    );

    let s3d_ds = s3d::generate(&s3d::S3dConfig {
        dims: [scaled(120), scaled(34), scaled(20)],
        ..s3d::S3dConfig::small()
    });
    println!(
        "S3D\t{:?}\t8\tdouble\t{:.2}\t4.78 GB\tMolar concentration multiplication",
        s3d_ds.dims,
        mb(s3d_ds.raw_bytes())
    );

    let ge_large = ge::generate(&GeConfig::large().with_block_len(scaled(12_000)));
    let total: usize = ge_large.iter().map(|b| b.raw_bytes()).sum();
    println!(
        "GE-large\t96x{{}} ({} blocks)\t5\tdouble\t{:.2}\t7.79 GB\tEq.(1)-(6)",
        ge_large.len(),
        mb(total)
    );

    // sanity: every stand-in loads as a Dataset
    let _ = to_dataset(&ge_small);
    let _ = to_dataset(&hur);
}
