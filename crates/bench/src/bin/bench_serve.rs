//! Shared-state service harness: N concurrent mixed-tolerance sessions on
//! one `DatasetService` (shared decode store) versus N independent cold
//! engines, then emits `BENCH_serve.json` — the recorded service-layer
//! trajectory (CI smoke-checks that the file is well-formed).
//!
//! Arms (identical request traffic in both):
//!
//! * **shared** — one `Archive::open` + one `ProgressStore`; each session
//!   is a view that adopts shared decode state, so the deepest tolerance
//!   is decoded once and every looser request is served without touching
//!   the source.
//! * **cold** — every session opens its own archive and decodes from
//!   scratch (the pre-service workflow).
//!
//! Reported: aggregate wall time / requests-per-second, total source bytes
//! read, fragments decoded, plus the derived `speedup`,
//! `decode_reuse_ratio` (cold decodes ÷ shared decodes) and
//! `bytes_read_ratio`. Sizes scale with `PQR_SCALE`; the output path can
//! be overridden with `PQR_BENCH_OUT`.

use pqr_bench::scaled;
use pqr_core::{Archive, ArchiveBuilder};
use pqr_qoi::library::velocity_magnitude;
use pqr_qoi::QoiExpr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Concurrent sessions per arm (the acceptance target is 8 mixed
/// tolerances).
const SESSIONS: usize = 8;
/// Timing repetitions per arm; the best (least-noise) run is recorded.
const RUNS: usize = 3;

/// The mixed-tolerance request mix: session k issues `TRAFFIC[k %
/// TRAFFIC.len()]`. Two tight sessions anchor the deepest decode; the
/// rest ride it.
const TRAFFIC: [(&str, f64); 8] = [
    ("V", 1e-7),
    ("KE", 1e-2),
    ("Vx2", 1e-4),
    ("V", 1e-4),
    ("KE", 1e-7),
    ("Vx2", 1e-2),
    ("V", 1e-3),
    ("KE", 1e-4),
];

struct Arm {
    wall_ms: f64,
    source_bytes: u64,
    decoded: u64,
}

fn build_archive(path: &std::path::Path) {
    let n = scaled(120_000);
    let mut builder = ArchiveBuilder::new(&[n]);
    for (f, name) in ["Vx", "Vy", "Vz", "P", "T", "rho"].iter().enumerate() {
        // smooth flow + deterministic broadband noise: the noise floor is
        // what makes the deep bitplanes incompressible, like real
        // turbulence data — a tight tolerance then has real decode work
        let mut s = 0x9e37_79b9_7f4a_7c15u64 ^ (f as u64);
        builder = builder.field(
            name,
            (0..n)
                .map(|i| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    let noise = (s as f64 / u64::MAX as f64 - 0.5) * 2.0;
                    let x = i as f64 / n as f64;
                    (x * (7.0 + f as f64)).sin() * 20.0 + (x * 31.0).cos() * 3.0 + noise + 40.0
                })
                .collect(),
        );
    }
    builder
        .qoi("V", velocity_magnitude(0, 3))
        .qoi("KE", velocity_magnitude(0, 3).pow(2).scale(0.5))
        .qoi("Vx2", QoiExpr::var(0).pow(2))
        .build()
        .expect("archive build")
        .save(path)
        .expect("archive save");
}

/// Runs one arm's 8-session burst; `shared` selects service vs cold.
fn run_arm(path: &std::path::Path, shared: bool) -> Arm {
    let mut best = Arm {
        wall_ms: f64::INFINITY,
        source_bytes: 0,
        decoded: 0,
    };
    for _ in 0..RUNS {
        let satisfied = AtomicUsize::new(0);
        let cold_bytes = AtomicU64::new(0);
        let cold_decoded = AtomicU64::new(0);
        // the shared arm's one-time archive open + service construction is
        // timed too, so the comparison charges both arms their full setup
        // (cold sessions each open their own archive inside their thread)
        let t0 = Instant::now();
        let (service, service_archive) = if shared {
            let archive = Archive::open(path).expect("open archive");
            (Some(archive.service().expect("service")), Some(archive))
        } else {
            (None, None)
        };
        std::thread::scope(|s| {
            for k in 0..SESSIONS {
                let (name, tol) = TRAFFIC[k % TRAFFIC.len()];
                let service = service.clone();
                let (satisfied, cold_bytes, cold_decoded) =
                    (&satisfied, &cold_bytes, &cold_decoded);
                s.spawn(move || {
                    let (mut session, archive) = match service {
                        Some(svc) => (svc.session().expect("session"), None),
                        None => {
                            let archive = Archive::open(path).expect("open archive");
                            (archive.session().expect("session"), Some(archive))
                        }
                    };
                    if session.request(name, tol).expect("request").satisfied {
                        satisfied.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(archive) = archive {
                        cold_bytes
                            .fetch_add(archive.source_stats().fetched_bytes, Ordering::Relaxed);
                        cold_decoded.fetch_add(session.fragments_decoded(), Ordering::Relaxed);
                    }
                });
            }
        });
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            satisfied.load(Ordering::Relaxed),
            SESSIONS,
            "every bench session must certify"
        );
        let (source_bytes, decoded) = match (&service, &service_archive) {
            (Some(svc), Some(archive)) => (
                archive.source_stats().fetched_bytes,
                svc.store_stats().fragments_decoded,
            ),
            _ => (
                cold_bytes.load(Ordering::Relaxed),
                cold_decoded.load(Ordering::Relaxed),
            ),
        };
        if wall_ms < best.wall_ms {
            best = Arm {
                wall_ms,
                source_bytes,
                decoded,
            };
        }
    }
    best
}

fn json_arm(a: &Arm) -> String {
    format!(
        "{{\"wall_ms\": {:.2}, \"requests_per_s\": {:.2}, \"source_bytes\": {}, \
         \"fragments_decoded\": {}}}",
        a.wall_ms,
        SESSIONS as f64 / (a.wall_ms / 1e3).max(1e-9),
        a.source_bytes,
        a.decoded
    )
}

fn main() {
    let dir = std::env::temp_dir().join("pqr_bench_serve");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("serve_{}.pqrx", std::process::id()));
    build_archive(&path);

    // cold first, then shared: any OS page-cache warmth favours neither
    // arm's decode count and (if anything) biases wall time against shared
    let cold = run_arm(&path, false);
    let shared = run_arm(&path, true);
    std::fs::remove_file(&path).ok();

    let speedup = cold.wall_ms / shared.wall_ms.max(1e-9);
    let reuse = cold.decoded as f64 / shared.decoded.max(1) as f64;
    let bytes_ratio = cold.source_bytes as f64 / shared.source_bytes.max(1) as f64;
    let json = format!(
        "{{\n  \"schema\": \"pqr-bench-serve/1\",\n  \"sessions\": {SESSIONS},\n  \
         \"traffic\": \"8 mixed tolerances (1e-2..1e-7) over 3 QoIs sharing velocity fields\",\n  \
         \"shared\": {},\n  \"cold\": {},\n  \"speedup\": {speedup:.3},\n  \
         \"decode_reuse_ratio\": {reuse:.3},\n  \"bytes_read_ratio\": {bytes_ratio:.3}\n}}\n",
        json_arm(&shared),
        json_arm(&cold),
    );
    let out = std::env::var("PQR_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::write(&out, &json).expect("write BENCH_serve.json");
    println!("{json}");
    println!(
        "# shared {:.1} ms vs cold {:.1} ms → {speedup:.2}x; decode reuse {reuse:.2}x; wrote {out}",
        shared.wall_ms, cold.wall_ms
    );
}
