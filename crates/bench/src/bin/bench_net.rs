//! Network serving harness: N real-socket clients against one in-process
//! `pqr-serve` server (shared decode store, full wire protocol) versus N
//! per-client cold engines (each its own in-process archive + decode
//! state, no wire at all), then emits `BENCH_net.json` — the recorded
//! serving-layer trajectory (CI smoke-checks that the file is well-formed
//! and that the deterministic counter ratios hold).
//!
//! Arms (identical request traffic in all):
//!
//! * **served_coalesced** — one `Server` over one `DatasetService` with
//!   cross-client round coalescing on: concurrently arriving retrieves of
//!   the dataset are grouped into union rounds, the union schedule
//!   executes once per round under a single decode permit, and every
//!   member projects its reply from the shared epoch snapshot.
//! * **served_uncoalesced** — the same server with coalescing off: every
//!   retrieve acquires its own decode permit and executes individually
//!   (the pre-coalescing serving path, reproducible from this binary via
//!   `--coalesce off`).
//! * **cold** — every client opens its own archive in-process and decodes
//!   from scratch: the pre-serve workflow, with zero protocol overhead.
//!   The comparison is deliberately tilted *against* the served arms;
//!   they win anyway because the deepest tolerance is decoded once for
//!   everyone.
//!
//! Every client issues `--rounds` sequential requests, so later rounds
//! arrive staggered — the gathering window, not the benchmark, decides
//! the round boundaries. Reported per arm: wall time, requests-per-second,
//! per-request latency percentiles (p50/p95/p99), source bytes, fragments
//! decoded, and for served arms the wire traffic, worst permit wait and
//! coalescing counters; plus the derived `speedup` (cold vs coalesced),
//! `coalesce_speedup` (uncoalesced vs coalesced), `decode_reuse_ratio`
//! and `bytes_read_ratio`. Sizes scale with `PQR_SCALE`; the output path
//! can be overridden with `PQR_BENCH_OUT`.
//!
//! Usage: `bench_net [--clients N] [--rounds N] [--coalesce on|off|both]`

use pqr_bench::scaled;
use pqr_core::request::RetrievalRequest;
use pqr_core::{Archive, ArchiveBuilder};
use pqr_qoi::library::velocity_magnitude;
use pqr_qoi::QoiExpr;
use pqr_serve::{Registry, ServeClient, Server, ServerConfig};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Timing repetitions per arm; the best (least-noise) run is recorded.
const RUNS: usize = 3;

/// The mixed-tolerance request mix: client k's round r issues
/// `TRAFFIC[(k + 3 * r) % TRAFFIC.len()]`. Two tight entries anchor the
/// deepest decode; the rest ride it.
const TRAFFIC: [(&str, f64); 8] = [
    ("V", 1e-7),
    ("KE", 1e-2),
    ("Vx2", 1e-4),
    ("V", 1e-4),
    ("KE", 1e-7),
    ("Vx2", 1e-2),
    ("V", 1e-3),
    ("KE", 1e-4),
];

#[derive(Clone, Copy, PartialEq)]
enum CoalesceMode {
    On,
    Off,
    Both,
}

struct Opts {
    clients: usize,
    rounds: usize,
    coalesce: CoalesceMode,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        clients: 32,
        rounds: 2,
        coalesce: CoalesceMode::Both,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--clients" => opts.clients = value("--clients").parse().expect("--clients"),
            "--rounds" => opts.rounds = value("--rounds").parse().expect("--rounds"),
            "--coalesce" => {
                opts.coalesce = match value("--coalesce").as_str() {
                    "on" => CoalesceMode::On,
                    "off" => CoalesceMode::Off,
                    "both" => CoalesceMode::Both,
                    other => panic!("--coalesce takes on|off|both, got '{other}'"),
                }
            }
            other => panic!(
                "unknown argument '{other}' (usage: bench_net [--clients N] [--rounds N] [--coalesce on|off|both])"
            ),
        }
    }
    assert!(opts.clients >= 1 && opts.rounds >= 1);
    opts
}

struct Arm {
    wall_ms: f64,
    /// Per-request wall latencies (ms), unordered.
    latencies_ms: Vec<f64>,
    source_bytes: u64,
    decoded: u64,
    wire_out: u64,
    queue_wait_max_ms: u64,
    coalesced_rounds: u64,
    coalesced_requests: u64,
}

fn build_archive(path: &std::path::Path) {
    let n = scaled(120_000);
    let mut builder = ArchiveBuilder::new(&[n]);
    for (f, name) in ["Vx", "Vy", "Vz", "P", "T", "rho"].iter().enumerate() {
        // smooth flow + deterministic broadband noise, as in bench_serve:
        // the noise floor keeps deep bitplanes incompressible so tight
        // tolerances have real decode work to share
        let mut s = 0x9e37_79b9_7f4a_7c15u64 ^ (f as u64);
        builder = builder.field(
            name,
            (0..n)
                .map(|i| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    let noise = (s as f64 / u64::MAX as f64 - 0.5) * 2.0;
                    let x = i as f64 / n as f64;
                    (x * (7.0 + f as f64)).sin() * 20.0 + (x * 31.0).cos() * 3.0 + noise + 40.0
                })
                .collect(),
        );
    }
    builder
        .qoi("V", velocity_magnitude(0, 3))
        .qoi("KE", velocity_magnitude(0, 3).pow(2).scale(0.5))
        .qoi("Vx2", QoiExpr::var(0).pow(2))
        .build()
        .expect("archive build")
        .save(path)
        .expect("archive save");
}

/// One served-arm run: server start → socket clients (each issuing
/// `rounds` sequential retrieves) → shutdown, all inside the timed region.
fn run_served(path: &std::path::Path, opts: &Opts, coalesce: bool) -> Arm {
    let t0 = Instant::now();
    let mut registry = Registry::new();
    registry
        .register("bench", Archive::open(path).expect("open archive"))
        .expect("register");
    let config = ServerConfig {
        workers: opts.clients,
        pending_queue: opts.clients,
        decode_permits: 4,
        busy_wait_ms: 600_000, // this bench measures sharing, not shedding
        coalesce,
        coalesce_window_ms: 10,
        coalesce_min_batch: (opts.clients / 2).max(2),
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", registry, config).expect("server start");
    let addr = server.local_addr();

    let satisfied = AtomicUsize::new(0);
    let latencies = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for k in 0..opts.clients {
            let (satisfied, latencies) = (&satisfied, &latencies);
            let rounds = opts.rounds;
            s.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                client.open("bench").expect("open").expect_ok("open reply");
                let mut mine = Vec::with_capacity(rounds);
                for r in 0..rounds {
                    let (name, tol) = TRAFFIC[(k + 3 * r) % TRAFFIC.len()];
                    let t = Instant::now();
                    let report = client
                        .retrieve(&RetrievalRequest::new().qoi(name, tol), &[], false)
                        .expect("retrieve")
                        .expect_ok("retrieve reply");
                    mine.push(t.elapsed().as_secs_f64() * 1e3);
                    if report.satisfied {
                        satisfied.fetch_add(1, Ordering::Relaxed);
                    }
                }
                client.close().expect("close");
                latencies.lock().unwrap().extend(mine);
            });
        }
    });
    let snap = server.shutdown();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        satisfied.load(Ordering::Relaxed),
        opts.clients * opts.rounds,
        "every served retrieve must certify"
    );
    assert_eq!(
        snap.shed_busy + snap.shed_admission,
        0,
        "bench must not shed"
    );
    if coalesce {
        assert!(
            snap.coalesced_rounds >= 1 && snap.coalesced_requests >= 2,
            "the coalesced arm must actually coalesce (rounds {}, requests {})",
            snap.coalesced_rounds,
            snap.coalesced_requests
        );
    } else {
        assert_eq!(snap.coalesced_rounds, 0, "coalescing was off");
    }
    Arm {
        wall_ms,
        latencies_ms: latencies.into_inner().unwrap(),
        source_bytes: snap.datasets[0].source.fetched_bytes,
        decoded: snap.datasets[0].store.fragments_decoded,
        wire_out: snap.bytes_out,
        queue_wait_max_ms: snap.queue_wait_ms_max,
        coalesced_rounds: snap.coalesced_rounds,
        coalesced_requests: snap.coalesced_requests,
    }
}

/// One cold-arm run: independent engines, no sockets; each client keeps
/// one session across its rounds (progressive refinement, like a served
/// connection keeps its session).
fn run_cold(path: &std::path::Path, opts: &Opts) -> Arm {
    let satisfied = AtomicUsize::new(0);
    let bytes = AtomicU64::new(0);
    let decoded = AtomicU64::new(0);
    let latencies = Mutex::new(Vec::new());
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for k in 0..opts.clients {
            let (satisfied, bytes, decoded, latencies) = (&satisfied, &bytes, &decoded, &latencies);
            let rounds = opts.rounds;
            s.spawn(move || {
                let archive = Archive::open(path).expect("open archive");
                let mut session = archive.session().expect("session");
                let mut mine = Vec::with_capacity(rounds);
                for r in 0..rounds {
                    let (name, tol) = TRAFFIC[(k + 3 * r) % TRAFFIC.len()];
                    let t = Instant::now();
                    if session.request(name, tol).expect("request").satisfied {
                        satisfied.fetch_add(1, Ordering::Relaxed);
                    }
                    mine.push(t.elapsed().as_secs_f64() * 1e3);
                }
                bytes.fetch_add(archive.source_stats().fetched_bytes, Ordering::Relaxed);
                decoded.fetch_add(session.fragments_decoded(), Ordering::Relaxed);
                latencies.lock().unwrap().extend(mine);
            });
        }
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        satisfied.load(Ordering::Relaxed),
        opts.clients * opts.rounds,
        "every cold request must certify"
    );
    Arm {
        wall_ms,
        latencies_ms: latencies.into_inner().unwrap(),
        source_bytes: bytes.load(Ordering::Relaxed),
        decoded: decoded.load(Ordering::Relaxed),
        wire_out: 0,
        queue_wait_max_ms: 0,
        coalesced_rounds: 0,
        coalesced_requests: 0,
    }
}

fn best_of(mut run: impl FnMut() -> Arm) -> Arm {
    let mut best: Option<Arm> = None;
    for _ in 0..RUNS {
        let arm = run();
        if best.as_ref().is_none_or(|b| arm.wall_ms < b.wall_ms) {
            best = Some(arm);
        }
    }
    best.expect("at least one run")
}

/// Nearest-rank percentile over the arm's per-request latencies.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn json_arm(a: &Arm, requests: usize, served: bool) -> String {
    let mut lat = a.latencies_ms.clone();
    lat.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let base = format!(
        "\"wall_ms\": {:.2}, \"requests_per_s\": {:.2}, \
         \"latency_ms\": {{\"p50\": {:.2}, \"p95\": {:.2}, \"p99\": {:.2}}}, \
         \"source_bytes\": {}, \"fragments_decoded\": {}",
        a.wall_ms,
        requests as f64 / (a.wall_ms / 1e3).max(1e-9),
        percentile(&lat, 50.0),
        percentile(&lat, 95.0),
        percentile(&lat, 99.0),
        a.source_bytes,
        a.decoded
    );
    if served {
        format!(
            "{{{base}, \"wire_bytes_out\": {}, \"queue_wait_ms_max\": {}, \
             \"coalesced_rounds\": {}, \"coalesced_requests\": {}}}",
            a.wire_out, a.queue_wait_max_ms, a.coalesced_rounds, a.coalesced_requests
        )
    } else {
        format!("{{{base}}}")
    }
}

fn main() {
    let opts = parse_opts();
    let requests = opts.clients * opts.rounds;
    let dir = std::env::temp_dir().join("pqr_bench_net");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("net_{}.pqrx", std::process::id()));
    build_archive(&path);

    // cold first, then served: page-cache warmth, if any, biases wall
    // time against the served arms
    let cold = best_of(|| run_cold(&path, &opts));
    let uncoalesced =
        (opts.coalesce != CoalesceMode::On).then(|| best_of(|| run_served(&path, &opts, false)));
    let coalesced =
        (opts.coalesce != CoalesceMode::Off).then(|| best_of(|| run_served(&path, &opts, true)));
    std::fs::remove_file(&path).ok();

    // derived ratios compare cold against the best served arm present
    // (coalesced when it ran, otherwise uncoalesced)
    let served = coalesced.as_ref().or(uncoalesced.as_ref()).expect("an arm");
    let speedup = cold.wall_ms / served.wall_ms.max(1e-9);
    let reuse = cold.decoded as f64 / served.decoded.max(1) as f64;
    let bytes_ratio = cold.source_bytes as f64 / served.source_bytes.max(1) as f64;

    let mut fields = vec![
        "\"schema\": \"pqr-bench-net/2\"".to_string(),
        format!("\"clients\": {}", opts.clients),
        format!("\"rounds\": {}", opts.rounds),
        format!(
            "\"traffic\": \"{} socket clients x {} rounds, mixed tolerances (1e-2..1e-7) over 3 QoIs sharing velocity fields\"",
            opts.clients, opts.rounds
        ),
        format!("\"cold\": {}", json_arm(&cold, requests, false)),
    ];
    if let Some(a) = &uncoalesced {
        fields.push(format!(
            "\"served_uncoalesced\": {}",
            json_arm(a, requests, true)
        ));
    }
    if let Some(a) = &coalesced {
        fields.push(format!(
            "\"served_coalesced\": {}",
            json_arm(a, requests, true)
        ));
    }
    fields.push(format!("\"speedup\": {speedup:.3}"));
    if let (Some(un), Some(co)) = (&uncoalesced, &coalesced) {
        fields.push(format!(
            "\"coalesce_speedup\": {:.3}",
            un.wall_ms / co.wall_ms.max(1e-9)
        ));
    }
    fields.push(format!("\"decode_reuse_ratio\": {reuse:.3}"));
    fields.push(format!("\"bytes_read_ratio\": {bytes_ratio:.3}"));
    let json = format!("{{\n  {}\n}}\n", fields.join(",\n  "));

    let out = std::env::var("PQR_BENCH_OUT").unwrap_or_else(|_| "BENCH_net.json".into());
    std::fs::write(&out, &json).expect("write BENCH_net.json");
    println!("{json}");
    if let (Some(un), Some(co)) = (&uncoalesced, &coalesced) {
        println!(
            "# cold {:.1} ms | uncoalesced {:.1} ms | coalesced {:.1} ms → {speedup:.2}x vs cold, {:.2}x vs uncoalesced; decode reuse {reuse:.2}x; wrote {out}",
            cold.wall_ms,
            un.wall_ms,
            co.wall_ms,
            un.wall_ms / co.wall_ms.max(1e-9)
        );
    } else {
        println!(
            "# cold {:.1} ms vs served {:.1} ms → {speedup:.2}x; decode reuse {reuse:.2}x; wrote {out}",
            cold.wall_ms, served.wall_ms
        );
    }
}
