//! Network serving harness: N real-socket clients against one in-process
//! `pqr-serve` server (shared decode store, full wire protocol) versus N
//! per-client cold engines (each its own in-process archive + decode
//! state, no wire at all), then emits `BENCH_net.json` — the recorded
//! serving-layer trajectory (CI smoke-checks that the file is well-formed
//! and that the deterministic counter ratios hold).
//!
//! Arms (identical request traffic in both):
//!
//! * **served** — one `Server` over one `DatasetService`; every client
//!   opens a TCP connection, speaks the length-prefixed protocol, and
//!   shares the dataset's decode-once store. The timed region includes
//!   server start-up, connection setup, framing, and shutdown — the wire
//!   pays its full cost.
//! * **cold** — every client opens its own archive in-process and decodes
//!   from scratch: the pre-serve workflow, with zero protocol overhead.
//!   The comparison is deliberately tilted *against* the served arm; it
//!   wins anyway because the deepest tolerance is decoded once for
//!   everyone.
//!
//! Reported: aggregate wall time / requests-per-second, total source
//! bytes, fragments decoded, wire traffic, plus the derived `speedup`,
//! `decode_reuse_ratio` and `bytes_read_ratio`. Sizes scale with
//! `PQR_SCALE`; the output path can be overridden with `PQR_BENCH_OUT`.

use pqr_bench::scaled;
use pqr_core::request::RetrievalRequest;
use pqr_core::{Archive, ArchiveBuilder};
use pqr_qoi::library::velocity_magnitude;
use pqr_qoi::QoiExpr;
use pqr_serve::{Registry, ServeClient, Server, ServerConfig};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Concurrent clients per arm (the acceptance target is ≥ 16 mixed-QoI
/// socket clients).
const CLIENTS: usize = 16;
/// Timing repetitions per arm; the best (least-noise) run is recorded.
const RUNS: usize = 3;

/// The mixed-tolerance request mix: client k issues `TRAFFIC[k %
/// TRAFFIC.len()]`. Two tight clients anchor the deepest decode; the rest
/// ride it.
const TRAFFIC: [(&str, f64); 8] = [
    ("V", 1e-7),
    ("KE", 1e-2),
    ("Vx2", 1e-4),
    ("V", 1e-4),
    ("KE", 1e-7),
    ("Vx2", 1e-2),
    ("V", 1e-3),
    ("KE", 1e-4),
];

struct Arm {
    wall_ms: f64,
    source_bytes: u64,
    decoded: u64,
    wire_out: u64,
    queue_wait_max_ms: u64,
}

fn build_archive(path: &std::path::Path) {
    let n = scaled(120_000);
    let mut builder = ArchiveBuilder::new(&[n]);
    for (f, name) in ["Vx", "Vy", "Vz", "P", "T", "rho"].iter().enumerate() {
        // smooth flow + deterministic broadband noise, as in bench_serve:
        // the noise floor keeps deep bitplanes incompressible so tight
        // tolerances have real decode work to share
        let mut s = 0x9e37_79b9_7f4a_7c15u64 ^ (f as u64);
        builder = builder.field(
            name,
            (0..n)
                .map(|i| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    let noise = (s as f64 / u64::MAX as f64 - 0.5) * 2.0;
                    let x = i as f64 / n as f64;
                    (x * (7.0 + f as f64)).sin() * 20.0 + (x * 31.0).cos() * 3.0 + noise + 40.0
                })
                .collect(),
        );
    }
    builder
        .qoi("V", velocity_magnitude(0, 3))
        .qoi("KE", velocity_magnitude(0, 3).pow(2).scale(0.5))
        .qoi("Vx2", QoiExpr::var(0).pow(2))
        .build()
        .expect("archive build")
        .save(path)
        .expect("archive save");
}

/// One served-arm run: server start → 16 socket clients → shutdown, all
/// inside the timed region.
fn run_served(path: &std::path::Path) -> Arm {
    let t0 = Instant::now();
    let mut registry = Registry::new();
    registry
        .register("bench", Archive::open(path).expect("open archive"))
        .expect("register");
    let config = ServerConfig {
        workers: CLIENTS,
        pending_queue: CLIENTS,
        decode_permits: 8,
        busy_wait_ms: 600_000, // this bench measures sharing, not shedding
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", registry, config).expect("server start");
    let addr = server.local_addr();

    let satisfied = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for k in 0..CLIENTS {
            let (name, tol) = TRAFFIC[k % TRAFFIC.len()];
            let satisfied = &satisfied;
            s.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                client.open("bench").expect("open").expect_ok("open reply");
                let report = client
                    .retrieve(&RetrievalRequest::new().qoi(name, tol), &[], false)
                    .expect("retrieve")
                    .expect_ok("retrieve reply");
                client.close().expect("close");
                if report.satisfied {
                    satisfied.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let snap = server.shutdown();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        satisfied.load(Ordering::Relaxed),
        CLIENTS,
        "every served client must certify"
    );
    assert_eq!(
        snap.shed_busy + snap.shed_admission,
        0,
        "bench must not shed"
    );
    Arm {
        wall_ms,
        source_bytes: snap.datasets[0].source.fetched_bytes,
        decoded: snap.datasets[0].store.fragments_decoded,
        wire_out: snap.bytes_out,
        queue_wait_max_ms: snap.queue_wait_ms_max,
    }
}

/// One cold-arm run: 16 independent engines, no sockets.
fn run_cold(path: &std::path::Path) -> Arm {
    let satisfied = AtomicUsize::new(0);
    let bytes = AtomicU64::new(0);
    let decoded = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for k in 0..CLIENTS {
            let (name, tol) = TRAFFIC[k % TRAFFIC.len()];
            let (satisfied, bytes, decoded) = (&satisfied, &bytes, &decoded);
            s.spawn(move || {
                let archive = Archive::open(path).expect("open archive");
                let mut session = archive.session().expect("session");
                if session.request(name, tol).expect("request").satisfied {
                    satisfied.fetch_add(1, Ordering::Relaxed);
                }
                bytes.fetch_add(archive.source_stats().fetched_bytes, Ordering::Relaxed);
                decoded.fetch_add(session.fragments_decoded(), Ordering::Relaxed);
            });
        }
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        satisfied.load(Ordering::Relaxed),
        CLIENTS,
        "every cold client must certify"
    );
    Arm {
        wall_ms,
        source_bytes: bytes.load(Ordering::Relaxed),
        decoded: decoded.load(Ordering::Relaxed),
        wire_out: 0,
        queue_wait_max_ms: 0,
    }
}

fn best_of(mut run: impl FnMut() -> Arm) -> Arm {
    let mut best: Option<Arm> = None;
    for _ in 0..RUNS {
        let arm = run();
        if best.as_ref().is_none_or(|b| arm.wall_ms < b.wall_ms) {
            best = Some(arm);
        }
    }
    best.expect("at least one run")
}

fn json_arm(a: &Arm, served: bool) -> String {
    let base = format!(
        "\"wall_ms\": {:.2}, \"requests_per_s\": {:.2}, \"source_bytes\": {}, \
         \"fragments_decoded\": {}",
        a.wall_ms,
        CLIENTS as f64 / (a.wall_ms / 1e3).max(1e-9),
        a.source_bytes,
        a.decoded
    );
    if served {
        format!(
            "{{{base}, \"wire_bytes_out\": {}, \"queue_wait_ms_max\": {}}}",
            a.wire_out, a.queue_wait_max_ms
        )
    } else {
        format!("{{{base}}}")
    }
}

fn main() {
    let dir = std::env::temp_dir().join("pqr_bench_net");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("net_{}.pqrx", std::process::id()));
    build_archive(&path);

    // cold first, then served: page-cache warmth, if any, biases wall
    // time against the served arm
    let cold = best_of(|| run_cold(&path));
    let served = best_of(|| run_served(&path));
    std::fs::remove_file(&path).ok();

    let speedup = cold.wall_ms / served.wall_ms.max(1e-9);
    let reuse = cold.decoded as f64 / served.decoded.max(1) as f64;
    let bytes_ratio = cold.source_bytes as f64 / served.source_bytes.max(1) as f64;
    let json = format!(
        "{{\n  \"schema\": \"pqr-bench-net/1\",\n  \"clients\": {CLIENTS},\n  \
         \"traffic\": \"16 socket clients, mixed tolerances (1e-2..1e-7) over 3 QoIs sharing velocity fields\",\n  \
         \"served\": {},\n  \"cold\": {},\n  \"speedup\": {speedup:.3},\n  \
         \"decode_reuse_ratio\": {reuse:.3},\n  \"bytes_read_ratio\": {bytes_ratio:.3}\n}}\n",
        json_arm(&served, true),
        json_arm(&cold, false),
    );
    let out = std::env::var("PQR_BENCH_OUT").unwrap_or_else(|_| "BENCH_net.json".into());
    std::fs::write(&out, &json).expect("write BENCH_net.json");
    println!("{json}");
    println!(
        "# served {:.1} ms vs cold {:.1} ms → {speedup:.2}x; decode reuse {reuse:.2}x; wrote {out}",
        served.wall_ms, cold.wall_ms
    );
}
