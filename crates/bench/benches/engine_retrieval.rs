//! Criterion: the full QoI-preserving retrieval loop, plus the Algorithm 4
//! reduction-factor ablation (c = 1.25 / 1.5 / 2.0 — the paper fixes 1.5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pqr_progressive::engine::{EngineConfig, QoiSpec, RetrievalEngine};
use pqr_progressive::field::Dataset;
use pqr_progressive::refactored::Scheme;
use pqr_qoi::library::velocity_magnitude;

fn dataset(n: usize) -> Dataset {
    let mut ds = Dataset::new(&[n]);
    for c in 0..3usize {
        ds.add_field(
            ["Vx", "Vy", "Vz"][c],
            (0..n)
                .map(|i| ((i + c * 37) as f64 * 0.004).sin() * 30.0 + 50.0)
                .collect(),
        )
        .unwrap();
    }
    ds
}

fn bench_retrieve(c: &mut Criterion) {
    let ds = dataset(50_000);
    let expr = velocity_magnitude(0, 3);
    let range = ds.qoi_range(&expr).unwrap();
    let mut g = c.benchmark_group("engine_retrieve");
    g.sample_size(10);
    for scheme in [Scheme::PmgardHb, Scheme::Psz3Delta] {
        // one shared Arc per scheme: engine construction inside the timed
        // loop must not re-clone the whole archive
        let archive = std::sync::Arc::new(
            ds.refactor_with_bounds(
                scheme,
                &(1..=10).map(|i| 10f64.powi(-i)).collect::<Vec<_>>(),
            )
            .unwrap(),
        );
        for tol in [1e-2, 1e-5] {
            g.bench_function(
                BenchmarkId::new(scheme.name(), format!("tol={tol:.0e}")),
                |b| {
                    b.iter(|| {
                        let mut engine =
                            RetrievalEngine::from_source(archive.clone(), EngineConfig::default())
                                .unwrap();
                        let spec = QoiSpec::with_range("VTOT", expr.clone(), tol, range);
                        engine.retrieve(&[spec]).unwrap()
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_reduction_factor_ablation(c: &mut Criterion) {
    let ds = dataset(50_000);
    let expr = velocity_magnitude(0, 3);
    let range = ds.qoi_range(&expr).unwrap();
    let archive = std::sync::Arc::new(ds.refactor(Scheme::PmgardHb).unwrap());
    let mut g = c.benchmark_group("reduction_factor");
    g.sample_size(10);
    for factor in [1.25, 1.5, 2.0] {
        g.bench_function(BenchmarkId::from_parameter(factor), |b| {
            b.iter(|| {
                let cfg = EngineConfig {
                    reduction_factor: factor,
                    ..Default::default()
                };
                let mut engine = RetrievalEngine::from_source(archive.clone(), cfg).unwrap();
                let spec = QoiSpec::with_range("VTOT", expr.clone(), 1e-4, range);
                let r = engine.retrieve(&[spec]).unwrap();
                assert!(r.satisfied);
                r.total_fetched
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_retrieve, bench_reduction_factor_ablation);
criterion_main!(benches);
