//! Criterion: the ZFP-stand-in kernels — block transform throughput,
//! refactor cost vs the other representations, and progressive plane
//! fetching. The compute side of the representation ablation
//! (`--bin ablation`, section 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pqr_zfp::{transform, ZfpRefactorer};

fn field(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64) * 0.001).sin() * 5.0 + ((i as f64) * 0.013).cos())
        .collect()
}

fn bench_transform(c: &mut Criterion) {
    let mut g = c.benchmark_group("zfp_transform");
    for nd in [1usize, 2, 3] {
        let len = 4usize.pow(nd as u32);
        let blk: Vec<i64> = (0..len as i64).map(|i| i * 1_000_003 % 77_777).collect();
        g.bench_function(BenchmarkId::new("forward", format!("{nd}d")), |b| {
            b.iter_batched(
                || blk.clone(),
                |mut v| transform::forward(&mut v, nd),
                criterion::BatchSize::SmallInput,
            )
        });
        let mut coeffs = blk.clone();
        transform::forward(&mut coeffs, nd);
        g.bench_function(BenchmarkId::new("inverse", format!("{nd}d")), |b| {
            b.iter_batched(
                || coeffs.clone(),
                |mut v| transform::inverse(&mut v, nd),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_refactor(c: &mut Criterion) {
    let n = 100_000;
    let data = field(n);
    let mut g = c.benchmark_group("zfp_refactor");
    g.throughput(Throughput::Bytes((n * 8) as u64));
    g.sample_size(20);
    g.bench_function("1d_100k", |b| {
        b.iter(|| ZfpRefactorer::new().refactor(&data, &[n]).unwrap())
    });
    let dims3 = [40usize, 50, 50];
    g.bench_function("3d_100k", |b| {
        b.iter(|| ZfpRefactorer::new().refactor(&data, &dims3).unwrap())
    });
    g.finish();
}

fn bench_retrieve(c: &mut Criterion) {
    let n = 100_000;
    let data = field(n);
    let stream = ZfpRefactorer::new().refactor(&data, &[n]).unwrap();
    let mut g = c.benchmark_group("zfp_retrieve");
    g.throughput(Throughput::Bytes((n * 8) as u64));
    g.sample_size(20);
    for eb in [1e-2, 1e-6, 1e-10] {
        g.bench_function(
            BenchmarkId::new("refine_reconstruct", format!("{eb:.0e}")),
            |b| {
                b.iter(|| {
                    let mut r = stream.reader();
                    r.refine_to(eb).unwrap();
                    r.reconstruct()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_transform, bench_refactor, bench_retrieve);
criterion_main!(benches);
