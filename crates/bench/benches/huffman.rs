//! Criterion: canonical Huffman over quantizer-like symbol distributions —
//! the entropy stage of the SZ3 stand-in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pqr_util::huffman;

/// Quantizer-like distribution: sharply peaked around the centre code.
fn symbols(n: usize, spread: u32) -> Vec<u32> {
    let mut s = 0xfeed_beefu64;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let g = ((s >> 10) % u64::from(2 * spread + 1)) as i64 - i64::from(spread);
            (32768 + g) as u32
        })
        .collect()
}

fn bench_huffman(c: &mut Criterion) {
    let n = 500_000;
    let mut g = c.benchmark_group("huffman");
    g.throughput(Throughput::Elements(n as u64));
    for spread in [2u32, 64, 2048] {
        let syms = symbols(n, spread);
        g.bench_function(BenchmarkId::new("encode", spread), |b| {
            b.iter(|| huffman::encode(&syms, 65536).unwrap())
        });
        let blob = huffman::encode(&syms, 65536).unwrap();
        g.bench_function(BenchmarkId::new("decode", spread), |b| {
            b.iter(|| huffman::decode(&blob).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_huffman);
criterion_main!(benches);
