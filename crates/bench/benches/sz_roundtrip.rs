//! Criterion: SZ3 stand-in compress/decompress throughput by predictor and
//! error bound — the kernel behind PSZ3 / PSZ3-delta refactoring and every
//! snapshot fetch (Table IV's cost driver).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pqr_sz::{SzCompressor, SzConfig};

fn field(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = i as f64 / n as f64;
            (x * 11.0).sin() * 3.0 + (x * 53.0).cos() * 0.4 + 2.0 * x
        })
        .collect()
}

fn bench_compress(c: &mut Criterion) {
    let n = 200_000;
    let data = field(n);
    let mut g = c.benchmark_group("sz_compress");
    g.throughput(Throughput::Bytes((n * 8) as u64));
    for (label, cfg) in [
        ("interp_cubic", SzConfig::default()),
        ("interp_linear", SzConfig::interp_linear()),
        ("lorenzo", SzConfig::lorenzo()),
    ] {
        let comp = SzCompressor::new(cfg);
        g.bench_function(BenchmarkId::new(label, "eb=1e-6"), |b| {
            b.iter(|| comp.compress(&data, &[n], 1e-6).unwrap())
        });
    }
    g.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let n = 200_000;
    let data = field(n);
    let comp = SzCompressor::default();
    let mut g = c.benchmark_group("sz_decompress");
    g.throughput(Throughput::Bytes((n * 8) as u64));
    for eb in [1e-3, 1e-9] {
        let blob = comp.compress(&data, &[n], eb).unwrap();
        g.bench_function(BenchmarkId::from_parameter(format!("eb={eb:.0e}")), |b| {
            b.iter(|| comp.decompress(&blob).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
