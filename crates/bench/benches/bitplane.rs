//! Criterion: bitplane encode + progressive plane decode — PMGARD's
//! fragment coder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pqr_mgard::bitplane::{encode_level, LevelDecoder, PLANES};

fn coeffs(n: usize) -> Vec<f64> {
    let mut s = 0x1234_5678u64;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s as f64 / u64::MAX as f64) * 2.0 - 1.0) * 3.0
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let n = 100_000;
    let data = coeffs(n);
    let mut g = c.benchmark_group("bitplane");
    g.throughput(Throughput::Bytes((n * 8) as u64));
    g.bench_function("encode_level", |b| b.iter(|| encode_level(&data)));
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let n = 100_000;
    let data = coeffs(n);
    let enc = encode_level(&data);
    let mut g = c.benchmark_group("bitplane_decode");
    for planes in [8u32, 24, PLANES] {
        g.bench_function(BenchmarkId::from_parameter(planes), |b| {
            b.iter(|| {
                let mut d = LevelDecoder::new(enc.exponent, enc.count);
                for p in 0..planes as usize {
                    d.push_plane(&enc.planes[p]).unwrap();
                }
                d.coefficients()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
