//! Criterion: the decode acceleration stack in isolation — scalar vs
//! word-parallel bitplane kernels (PMGARD level coder, ZFP negabinary
//! planes) and plan execution at 1 vs N decode workers.
//!
//! The recorded perf trajectory lives in `BENCH_decode.json` (see the
//! `bench_decode` binary); this bench is the interactive magnifying glass
//! over the same kernels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pqr_mgard::bitplane::{encode_level, encode_level_scalar, LevelDecoder};
use pqr_progressive::engine::{EngineConfig, QoiSpec, RetrievalEngine};
use pqr_progressive::field::Dataset;
use pqr_progressive::refactored::Scheme;
use pqr_qoi::library::velocity_magnitude;
use pqr_zfp::{ZfpCursor, ZfpRefactorer};

fn coeffs(n: usize) -> Vec<f64> {
    let mut s = 0x1234_5678u64;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s as f64 / u64::MAX as f64) * 2.0 - 1.0) * 3.0
        })
        .collect()
}

fn bench_mgard_kernels(c: &mut Criterion) {
    let n = 100_000;
    let data = coeffs(n);
    let enc = encode_level(&data);
    let mut g = c.benchmark_group("decode_throughput/mgard");
    g.throughput(Throughput::Bytes((n * 8) as u64));
    g.bench_function("encode/scalar", |b| b.iter(|| encode_level_scalar(&data)));
    g.bench_function("encode/word", |b| b.iter(|| encode_level(&data)));
    let full_decode = |scalar: bool| {
        let mut d = if scalar {
            LevelDecoder::new_scalar(enc.exponent, enc.count)
        } else {
            LevelDecoder::new(enc.exponent, enc.count)
        };
        for p in &enc.planes {
            d.push_plane(p).unwrap();
        }
        d.coefficients()
    };
    g.bench_function("decode/scalar", |b| b.iter(|| full_decode(true)));
    g.bench_function("decode/word", |b| b.iter(|| full_decode(false)));
    g.finish();
}

fn bench_zfp_kernels(c: &mut Criterion) {
    let n = 60_000;
    let data = coeffs(n);
    let stream = ZfpRefactorer::new().refactor(&data, &[n]).unwrap();
    let mut g = c.benchmark_group("decode_throughput/zfp");
    g.throughput(Throughput::Bytes((n * 8) as u64));
    let full_decode = |scalar: bool| {
        let mut cur = if scalar {
            ZfpCursor::new_scalar(stream.meta())
        } else {
            ZfpCursor::new(stream.meta())
        };
        for p in stream.plane_payloads() {
            cur.push_plane(p).unwrap();
        }
        cur.reconstruct()
    };
    g.bench_function("decode/scalar", |b| b.iter(|| full_decode(true)));
    g.bench_function("decode/word", |b| b.iter(|| full_decode(false)));
    g.finish();
}

fn bench_plan_decode_workers(c: &mut Criterion) {
    let n = 20_000;
    let mut ds = Dataset::new(&[n]);
    for (f, name) in ["Vx", "Vy", "Vz"].iter().enumerate() {
        ds.add_field(
            name,
            (0..n)
                .map(|i| ((i + f * 37) as f64 * 0.011).sin() * 25.0 + 40.0)
                .collect(),
        )
        .unwrap();
    }
    let archive = std::sync::Arc::new(ds.refactor(Scheme::PmgardHb).unwrap());
    let spec = QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-6, &ds).unwrap();
    let mut g = c.benchmark_group("decode_throughput/plan");
    g.throughput(Throughput::Bytes((3 * n * 8) as u64));
    for workers in [1usize, 4] {
        g.bench_function(format!("retrieve/{workers}t"), |b| {
            b.iter(|| {
                let cfg = EngineConfig {
                    workers,
                    ..Default::default()
                };
                let mut engine = RetrievalEngine::from_source(archive.clone(), cfg).unwrap();
                engine.retrieve(std::slice::from_ref(&spec)).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_mgard_kernels,
    bench_zfp_kernels,
    bench_plan_decode_workers
);
criterion_main!(benches);
