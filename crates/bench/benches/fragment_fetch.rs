//! Criterion: fragment access through each storage backend — resident
//! dataset, serialized in-memory container, file-backed byte-range reads,
//! and a cached remote store (cold vs warm) — so the LRU cache's effect is
//! measurable against the raw backend costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pqr_progressive::engine::{EngineConfig, QoiSpec, RetrievalEngine};
use pqr_progressive::field::Dataset;
use pqr_progressive::fragstore::{
    CachedSource, FileSource, FragmentCache, FragmentSource, InMemorySource,
};
use pqr_progressive::refactored::Scheme;
use pqr_qoi::library::velocity_magnitude;
use pqr_transfer::RemoteStore;
use std::sync::Arc;

fn dataset(n: usize) -> Dataset {
    let mut ds = Dataset::new(&[n]);
    for c in 0..3usize {
        ds.add_field(
            ["Vx", "Vy", "Vz"][c],
            (0..n)
                .map(|i| ((i + c * 41) as f64 * 0.006).sin() * 25.0 + 40.0)
                .collect(),
        )
        .unwrap();
    }
    ds
}

/// One full loose-tolerance retrieval through `source` — the unit of work
/// whose fragment-fetch cost the backends differ in.
fn retrieve_once(source: Arc<dyn FragmentSource>, spec: &QoiSpec) -> usize {
    let mut engine = RetrievalEngine::from_source(source, EngineConfig::default()).unwrap();
    let report = engine.retrieve(std::slice::from_ref(spec)).unwrap();
    assert!(report.satisfied);
    report.total_fetched
}

fn bench_fragment_fetch(c: &mut Criterion) {
    let ds = dataset(30_000);
    let expr = velocity_magnitude(0, 3);
    let range = ds.qoi_range(&expr).unwrap();
    let archive = ds.refactor(Scheme::PmgardHb).unwrap();
    let spec = QoiSpec::with_range("VTOT", expr, 1e-3, range);

    let bytes = archive.to_bytes();
    let dir = std::env::temp_dir().join("pqr_fragment_fetch_bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("bench_{}.pqrx", std::process::id()));
    std::fs::write(&path, &bytes).unwrap();

    let resident = Arc::new(archive.clone());
    let mem = Arc::new(InMemorySource::new(bytes).unwrap());
    let file = Arc::new(FileSource::open(&path).unwrap());
    let store = Arc::new(RemoteStore::new(vec![archive.clone()]).with_cache(64 << 20));

    let mut g = c.benchmark_group("fragment_fetch");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("backend", "resident"), |b| {
        b.iter(|| retrieve_once(resident.clone(), &spec))
    });
    g.bench_function(BenchmarkId::new("backend", "in_memory"), |b| {
        b.iter(|| retrieve_once(mem.clone(), &spec))
    });
    g.bench_function(BenchmarkId::new("backend", "file"), |b| {
        b.iter(|| retrieve_once(file.clone(), &spec))
    });
    // cold: a fresh cache per retrieval — every fetch misses
    g.bench_function(BenchmarkId::new("backend", "file_cached_cold"), |b| {
        b.iter(|| {
            let cold = CachedSource::new(
                FileSource::open(&path).unwrap(),
                Arc::new(FragmentCache::new(64 << 20)),
            );
            retrieve_once(Arc::new(cold), &spec)
        })
    });
    // warm: one shared cache across retrievals — steady-state all hits
    let warm = Arc::new(CachedSource::new(
        FileSource::open(&path).unwrap(),
        Arc::new(FragmentCache::new(64 << 20)),
    ));
    retrieve_once(warm.clone(), &spec);
    g.bench_function(BenchmarkId::new("backend", "file_cached_warm"), |b| {
        b.iter(|| retrieve_once(warm.clone(), &spec))
    });
    // remote store with its cache warmed by the first pass
    let remote = Arc::new(store.block_source(0).unwrap());
    retrieve_once(remote.clone(), &spec);
    g.bench_function(BenchmarkId::new("backend", "remote_cached_warm"), |b| {
        b.iter(|| retrieve_once(remote.clone(), &spec))
    });
    g.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_fragment_fetch);
criterion_main!(benches);
