//! Criterion: plan/execute retrieval — one QoI versus three QoIs deriving
//! from shared fields, per storage backend. The 3-QoI batched plan
//! schedules each shared field's fragments once, so its cost should sit
//! far closer to the 1-QoI arm than to 3× it; the per-fragment
//! (`batch_io: false`) arm isolates what range coalescing buys on files.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pqr_progressive::engine::{EngineConfig, QoiSpec, RetrievalEngine};
use pqr_progressive::field::Dataset;
use pqr_progressive::fragstore::{FileSource, FragmentSource, InMemorySource};
use pqr_progressive::plan::{PlanExecutor, RetrievalPlan};
use pqr_progressive::refactored::Scheme;
use pqr_qoi::library::{species_product, velocity_magnitude};
use pqr_qoi::QoiExpr;

fn dataset(n: usize) -> Dataset {
    let mut ds = Dataset::new(&[n]);
    for c in 0..3usize {
        ds.add_field(
            ["Vx", "Vy", "Vz"][c],
            (0..n)
                .map(|i| ((i + c * 37) as f64 * 0.007).sin() * 22.0 + 35.0)
                .collect(),
        )
        .unwrap();
    }
    ds
}

/// The 3-QoI target mix: all three read `Vx`, two read `Vy`/`Vz`.
fn specs(ds: &Dataset, many: bool) -> Vec<QoiSpec> {
    let mut v = vec![QoiSpec::relative("VTOT", velocity_magnitude(0, 3), 1e-4, ds).unwrap()];
    if many {
        v.push(QoiSpec::relative("Vx2", QoiExpr::var(0).pow(2), 1e-4, ds).unwrap());
        v.push(QoiSpec::relative("VxVy", species_product(0, 1), 1e-3, ds).unwrap());
    }
    v
}

fn execute_plan(
    source: std::sync::Arc<dyn FragmentSource>,
    specs: &[QoiSpec],
    cfg: EngineConfig,
) -> usize {
    let mut engine = RetrievalEngine::from_source(source, cfg).unwrap();
    let plan = RetrievalPlan::resolve(&engine, specs.to_vec(), None).unwrap();
    let report = PlanExecutor::new(&mut engine).execute(&plan).unwrap();
    assert!(report.satisfied);
    report.total_fetched
}

fn bench_multi_qoi_plan(c: &mut Criterion) {
    let ds = dataset(20_000);
    let archive = ds.refactor(Scheme::PmgardHb).unwrap();
    let bytes = archive.to_bytes();
    let dir = std::env::temp_dir().join("pqr_multi_qoi_plan_bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("bench_{}.pqrx", std::process::id()));
    std::fs::write(&path, &bytes).unwrap();
    let resident = std::sync::Arc::new(archive.clone());
    let mem = std::sync::Arc::new(InMemorySource::new(bytes).unwrap());
    let file = std::sync::Arc::new(FileSource::open(&path).unwrap());

    let mut g = c.benchmark_group("multi_qoi_plan");
    g.sample_size(10);
    for (arm, many) in [("1qoi", false), ("3qoi_shared", true)] {
        let sp = specs(&ds, many);
        g.bench_function(BenchmarkId::new(arm, "resident"), |b| {
            b.iter(|| execute_plan(resident.clone(), &sp, EngineConfig::default()))
        });
        g.bench_function(BenchmarkId::new(arm, "in_memory"), |b| {
            b.iter(|| execute_plan(mem.clone(), &sp, EngineConfig::default()))
        });
        g.bench_function(BenchmarkId::new(arm, "file_batched"), |b| {
            b.iter(|| execute_plan(file.clone(), &sp, EngineConfig::default()))
        });
        g.bench_function(BenchmarkId::new(arm, "file_per_fragment"), |b| {
            b.iter(|| {
                execute_plan(
                    file.clone(),
                    &sp,
                    EngineConfig {
                        batch_io: false,
                        ..Default::default()
                    },
                )
            })
        });
    }
    g.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_multi_qoi_plan);
criterion_main!(benches);
