//! Criterion: bounded QoI evaluation — the per-point cost of the §IV
//! estimator that Algorithm 2 pays on every scan, for each GE QoI, plus
//! the √-estimator ablation (paper formula vs exact supremum) and the
//! theorem-vs-interval estimator ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pqr_qoi::{ge, BoundConfig, Estimator, SqrtMode};

fn bench_ge_qois(c: &mut Criterion) {
    let x = [30.0, 40.0, 5.0, 101_325.0, 1.2];
    let eps = [1e-3, 1e-3, 1e-3, 0.5, 1e-5];
    let cfg = BoundConfig::default();
    let mut g = c.benchmark_group("qoi_eval_bounded");
    g.throughput(Throughput::Elements(1));
    for (name, expr) in ge::all() {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| expr.eval_bounded(&x, &eps, &cfg))
        });
    }
    g.finish();
}

fn bench_sqrt_mode_ablation(c: &mut Criterion) {
    let expr = ge::v_total();
    let x = [30.0, 40.0, 5.0, 0.0, 0.0];
    let eps = [1e-3; 5];
    let mut g = c.benchmark_group("sqrt_mode");
    for (label, mode) in [("paper", SqrtMode::Paper), ("exact", SqrtMode::Exact)] {
        let cfg = BoundConfig {
            sqrt_mode: mode,
            ..Default::default()
        };
        g.bench_function(label, |b| b.iter(|| expr.eval_bounded(&x, &eps, &cfg)));
    }
    g.finish();
}

fn bench_estimator_ablation(c: &mut Criterion) {
    // per-point cost of the generic interval estimator vs the theorems,
    // on the deepest GE composition (PT)
    let expr = ge::pt();
    let x = [30.0, 40.0, 5.0, 101_325.0, 1.2];
    let eps = [1e-3, 1e-3, 1e-3, 0.5, 1e-5];
    let mut g = c.benchmark_group("estimator");
    for (label, est) in [
        ("theorems", Estimator::Theorems),
        ("interval", Estimator::Interval),
    ] {
        let cfg = BoundConfig {
            estimator: est,
            ..Default::default()
        };
        g.bench_function(label, |b| b.iter(|| expr.eval_bounded(&x, &eps, &cfg)));
    }
    g.finish();
}

fn bench_scan_like_loop(c: &mut Criterion) {
    // the shape of Algorithm 2's inner loop: eval 6 QoIs over a point block
    let qois = ge::all();
    let cfg = BoundConfig::default();
    let n = 10_000;
    let points: Vec<[f64; 5]> = (0..n)
        .map(|i| {
            let t = i as f64 * 0.001;
            [
                30.0 + t.sin(),
                40.0 + t.cos(),
                5.0 + (2.0 * t).sin(),
                101_325.0 * (1.0 + 0.01 * (3.0 * t).cos()),
                1.2 + 0.01 * t.sin(),
            ]
        })
        .collect();
    let eps = [1e-3, 1e-3, 1e-3, 0.5, 1e-5];
    let mut g = c.benchmark_group("scan_loop");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("six_qois_per_point", |b| {
        b.iter(|| {
            let mut worst = 0.0f64;
            for p in &points {
                for (_, q) in &qois {
                    let est = q.eval_bounded(p, &eps, &cfg).bound;
                    if est > worst {
                        worst = est;
                    }
                }
            }
            worst
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ge_qois,
    bench_sqrt_mode_ablation,
    bench_estimator_ablation,
    bench_scan_like_loop
);
criterion_main!(benches);
