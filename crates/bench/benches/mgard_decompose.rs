//! Criterion: multilevel decompose/recompose, HB vs OB — the Fig. 3
//! ablation's compute side (removing the L2 projection speeds refactoring,
//! §V-B).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pqr_mgard::transform::{decompose, recompose};
use pqr_mgard::Basis;

fn field(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64) * 0.001).sin() * 5.0 + ((i as f64) * 0.013).cos())
        .collect()
}

fn bench_transform(c: &mut Criterion) {
    let n = 500_000;
    let data = field(n);
    let mut g = c.benchmark_group("mgard_transform");
    g.throughput(Throughput::Bytes((n * 8) as u64));
    for (label, basis) in [("HB", Basis::Hierarchical), ("OB", Basis::Orthogonal)] {
        g.bench_function(BenchmarkId::new("decompose", label), |b| {
            b.iter_batched(
                || data.clone(),
                |mut v| decompose(&mut v, &[n], basis),
                criterion::BatchSize::LargeInput,
            )
        });
        let mut coeffs = data.clone();
        decompose(&mut coeffs, &[n], basis);
        g.bench_function(BenchmarkId::new("recompose", label), |b| {
            b.iter_batched(
                || coeffs.clone(),
                |mut v| recompose(&mut v, &[n], basis),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_3d(c: &mut Criterion) {
    let dims = [64usize, 64, 64];
    let n: usize = dims.iter().product();
    let data = field(n);
    let mut g = c.benchmark_group("mgard_transform_3d");
    g.throughput(Throughput::Bytes((n * 8) as u64));
    for (label, basis) in [("HB", Basis::Hierarchical), ("OB", Basis::Orthogonal)] {
        g.bench_function(BenchmarkId::new("decompose", label), |b| {
            b.iter_batched(
                || data.clone(),
                |mut v| decompose(&mut v, &dims, basis),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_transform, bench_3d);
criterion_main!(benches);
