//! Canonical Huffman coding over `u32` symbols.
//!
//! This is the entropy stage of the SZ3 stand-in (`pqr-sz`): quantization
//! codes are Huffman-coded exactly as in SZ/SZ3. The implementation is
//! canonical-code based so only the code lengths need to be serialized.
//!
//! Code lengths are capped at [`MAX_CODE_LEN`] by flattening the tree with
//! the classic depth-limited reassignment; for the symbol distributions the
//! quantizer produces (sharply peaked around the zero code) this never costs
//! measurable rate.

use crate::bitio::{BitReader, BitWriter};
use crate::byteio::{ByteReader, ByteWriter};
use crate::error::{PqrError, Result};
use std::collections::BinaryHeap;

/// Maximum admitted code length (bits). 32 keeps decode tables small and
/// lets codes fit in a `u32`.
pub const MAX_CODE_LEN: u32 = 32;

/// A built Huffman code book: per-symbol code length and canonical code.
#[derive(Debug, Clone)]
pub struct CodeBook {
    /// Code length per symbol (0 = symbol absent).
    pub lengths: Vec<u32>,
    /// Canonical code per symbol, MSB-aligned within `lengths[i]` bits.
    pub codes: Vec<u32>,
}

#[derive(PartialEq, Eq)]
struct HeapNode {
    weight: u64,
    idx: usize,
}

impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for min-heap behaviour. Tie-break
        // on index for determinism.
        other
            .weight
            .cmp(&self.weight)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes code lengths with a Huffman tree over symbol frequencies.
fn code_lengths(freqs: &[u64]) -> Vec<u32> {
    let n = freqs.len();
    let present: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    let mut lengths = vec![0u32; n];
    match present.len() {
        0 => return lengths,
        1 => {
            lengths[present[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Internal tree: nodes 0..m are leaves (present symbols), then internals.
    let m = present.len();
    let mut weight = Vec::with_capacity(2 * m);
    let mut parent = vec![usize::MAX; 2 * m];
    let mut heap = BinaryHeap::with_capacity(m);
    for (leaf, &sym) in present.iter().enumerate() {
        weight.push(freqs[sym]);
        heap.push(HeapNode {
            weight: freqs[sym],
            idx: leaf,
        });
    }
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        let node = weight.len();
        weight.push(a.weight + b.weight);
        parent[a.idx] = node;
        parent[b.idx] = node;
        heap.push(HeapNode {
            weight: a.weight + b.weight,
            idx: node,
        });
    }

    // Depth of each leaf = chain length to the root.
    for (leaf, &sym) in present.iter().enumerate() {
        let mut d = 0u32;
        let mut cur = leaf;
        while parent[cur] != usize::MAX {
            cur = parent[cur];
            d += 1;
        }
        lengths[sym] = d;
    }

    limit_lengths(&mut lengths, MAX_CODE_LEN);
    lengths
}

/// Enforces a maximum code length while keeping the Kraft sum ≤ 1.
fn limit_lengths(lengths: &mut [u32], max_len: u32) {
    if lengths.iter().all(|&l| l <= max_len) {
        return;
    }
    // Clamp, then repair the Kraft inequality by deepening the shallowest
    // repairable codes (standard length-limited fixup).
    let mut kraft: f64 = 0.0;
    for l in lengths.iter_mut() {
        if *l > max_len {
            *l = max_len;
        }
        if *l > 0 {
            kraft += (0.5f64).powi(*l as i32);
        }
    }
    while kraft > 1.0 + 1e-12 {
        // Find the longest code shorter than max_len and lengthen it.
        let mut best: Option<usize> = None;
        for (i, &l) in lengths.iter().enumerate() {
            if l > 0 && l < max_len {
                let better = match best {
                    None => true,
                    Some(b) => lengths[b] < l,
                };
                if better {
                    best = Some(i);
                }
            }
        }
        let Some(i) = best else { break };
        kraft -= (0.5f64).powi(lengths[i] as i32);
        lengths[i] += 1;
        kraft += (0.5f64).powi(lengths[i] as i32);
    }
}

/// Assigns canonical codes from lengths: symbols sorted by (length, symbol).
fn canonical_codes(lengths: &[u32]) -> Vec<u32> {
    let mut order: Vec<usize> = (0..lengths.len()).filter(|&i| lengths[i] > 0).collect();
    order.sort_by_key(|&i| (lengths[i], i));
    let mut codes = vec![0u32; lengths.len()];
    let mut code = 0u32;
    let mut prev_len = 0u32;
    for &sym in &order {
        let len = lengths[sym];
        code <<= len - prev_len;
        codes[sym] = code;
        code += 1;
        prev_len = len;
    }
    codes
}

impl CodeBook {
    /// Builds a canonical code book from symbol frequencies.
    pub fn from_freqs(freqs: &[u64]) -> Self {
        let lengths = code_lengths(freqs);
        let codes = canonical_codes(&lengths);
        Self { lengths, codes }
    }

    /// Rebuilds the code book from serialized lengths.
    pub fn from_lengths(lengths: Vec<u32>) -> Self {
        let codes = canonical_codes(&lengths);
        Self { lengths, codes }
    }
}

/// Encodes `symbols` (values `< alphabet`) into a self-describing byte blob.
///
/// Layout: `alphabet:u32`, `count:u64`, run-length-coded lengths, padded
/// bitstream. Returns an error if any symbol is out of range.
pub fn encode(symbols: &[u32], alphabet: u32) -> Result<Vec<u8>> {
    let mut freqs = vec![0u64; alphabet as usize];
    for &s in symbols {
        let i = s as usize;
        if i >= freqs.len() {
            return Err(PqrError::InvalidRequest(format!(
                "symbol {s} out of alphabet {alphabet}"
            )));
        }
        freqs[i] += 1;
    }
    let book = CodeBook::from_freqs(&freqs);

    let mut w = ByteWriter::new();
    w.put_u32(alphabet);
    w.put_u64(symbols.len() as u64);

    // Serialize lengths with a tiny run-length scheme: (len:u8, run:u32)*.
    let mut runs: Vec<(u32, u32)> = Vec::new();
    for &l in &book.lengths {
        match runs.last_mut() {
            Some((ll, r)) if *ll == l && *r < u32::MAX => *r += 1,
            _ => runs.push((l, 1)),
        }
    }
    w.put_u32(runs.len() as u32);
    for (l, r) in &runs {
        w.put_u8(*l as u8);
        w.put_u32(*r);
    }

    let mut bits = BitWriter::with_capacity_bits(symbols.len() * 4);
    for &s in symbols {
        let len = book.lengths[s as usize];
        debug_assert!(len > 0, "encoding absent symbol");
        bits.put_bits(u64::from(book.codes[s as usize]), len);
    }
    w.put_bytes(&bits.finish());
    Ok(w.finish())
}

/// Largest alphabet [`decode`] will accept. Quantizer alphabets in this
/// workspace are `2·radius` (≤ ~2²⁰); a larger claim in a stream header is
/// corruption, and rejecting it keeps hostile headers from forcing
/// multi-gigabyte length-table allocations.
pub const MAX_ALPHABET: usize = 1 << 24;

/// Decodes a blob produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<Vec<u32>> {
    let mut r = ByteReader::new(bytes);
    let alphabet = r.get_u32()? as usize;
    let count = r.get_u64()? as usize;
    let nruns = r.get_u32()? as usize;
    if alphabet > MAX_ALPHABET {
        return Err(PqrError::CorruptStream(format!(
            "claimed alphabet {alphabet} exceeds limit"
        )));
    }
    let mut lengths = Vec::with_capacity(alphabet.min(1 << 16));
    for _ in 0..nruns {
        let l = u32::from(r.get_u8()?);
        let run = r.get_u32()? as usize;
        if l > MAX_CODE_LEN {
            return Err(PqrError::CorruptStream(format!("code length {l}")));
        }
        if run > alphabet - lengths.len() {
            return Err(PqrError::CorruptStream(
                "length table exceeds alphabet".into(),
            ));
        }
        lengths.resize(lengths.len() + run, l);
    }
    if lengths.len() != alphabet {
        return Err(PqrError::CorruptStream(format!(
            "length table covers {} of {alphabet} symbols",
            lengths.len()
        )));
    }
    let book = CodeBook::from_lengths(lengths);
    let payload = r.get_bytes()?;

    // Canonical decoding via first-code tables per length.
    let max_len = book.lengths.iter().copied().max().unwrap_or(0);
    if max_len == 0 {
        return if count == 0 {
            Ok(Vec::new())
        } else {
            Err(PqrError::CorruptStream("no codes but nonzero count".into()))
        };
    }
    // symbols sorted by (length, symbol); first_code/first_index per length.
    let mut order: Vec<usize> = (0..book.lengths.len())
        .filter(|&i| book.lengths[i] > 0)
        .collect();
    order.sort_by_key(|&i| (book.lengths[i], i));
    let mut first_code = vec![0u64; (max_len + 2) as usize];
    let mut first_idx = vec![0usize; (max_len + 2) as usize];
    {
        let mut code = 0u64;
        let mut i = 0usize;
        for len in 1..=max_len {
            code <<= 1;
            first_code[len as usize] = code;
            first_idx[len as usize] = i;
            while i < order.len() && book.lengths[order[i]] == len {
                code += 1;
                i += 1;
            }
        }
    }
    // count of codes at each length, for bounds checks
    let mut count_at = vec![0usize; (max_len + 2) as usize];
    for &s in &order {
        count_at[book.lengths[s] as usize] += 1;
    }

    // Every symbol consumes at least one payload bit, so a count beyond the
    // payload's bit length can only come from a corrupt header.
    if count > payload.len().saturating_mul(8) {
        return Err(PqrError::CorruptStream(format!(
            "claimed symbol count {count} exceeds payload"
        )));
    }
    let mut bits = BitReader::new(payload);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let mut code = 0u64;
        let mut len = 0u32;
        loop {
            if bits.remaining_bits() == 0 && len > 0 {
                return Err(PqrError::CorruptStream("huffman payload truncated".into()));
            }
            code = (code << 1) | u64::from(bits.get_bit());
            len += 1;
            if len > max_len {
                return Err(PqrError::CorruptStream("invalid huffman code".into()));
            }
            let fc = first_code[len as usize];
            let cnt = count_at[len as usize];
            if cnt > 0 && code >= fc && code < fc + cnt as u64 {
                let idx = first_idx[len as usize] + (code - fc) as usize;
                out.push(order[idx] as u32);
                break;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let syms = vec![0u32, 1, 1, 2, 2, 2, 2, 3];
        let blob = encode(&syms, 4).unwrap();
        assert_eq!(decode(&blob).unwrap(), syms);
    }

    #[test]
    fn roundtrip_single_symbol_stream() {
        let syms = vec![5u32; 1000];
        let blob = encode(&syms, 8).unwrap();
        assert_eq!(decode(&blob).unwrap(), syms);
        // Single-symbol stream costs ~1 bit/symbol + header.
        assert!(blob.len() < 1000 / 8 + 64);
    }

    #[test]
    fn roundtrip_empty() {
        let blob = encode(&[], 16).unwrap();
        assert!(decode(&blob).unwrap().is_empty());
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 95% zeros — entropy ≈ 0.29 bits/symbol.
        let mut syms = vec![0u32; 9500];
        syms.extend(std::iter::repeat_n(1u32, 300));
        syms.extend(std::iter::repeat_n(2u32, 200));
        let blob = encode(&syms, 65536).unwrap();
        assert_eq!(decode(&blob).unwrap(), syms);
        assert!(blob.len() < 10_000 / 4, "blob {} too large", blob.len());
    }

    #[test]
    fn out_of_range_symbol_rejected() {
        assert!(encode(&[4], 4).is_err());
    }

    #[test]
    fn corrupt_payload_detected() {
        let syms: Vec<u32> = (0..64).map(|i| i % 7).collect();
        let blob = encode(&syms, 7).unwrap();
        let truncated = &blob[..blob.len() - 2];
        assert!(decode(truncated).is_err());
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freqs = vec![10, 3, 0, 7, 1, 1, 25, 0, 2];
        let book = CodeBook::from_freqs(&freqs);
        let present: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
        for &a in &present {
            for &b in &present {
                if a == b {
                    continue;
                }
                let (la, lb) = (book.lengths[a], book.lengths[b]);
                if la <= lb {
                    let prefix = book.codes[b] >> (lb - la);
                    assert_ne!(prefix, book.codes[a], "code {a} is prefix of {b}");
                }
            }
        }
    }

    #[test]
    fn kraft_inequality_holds() {
        let freqs: Vec<u64> = (1..200u64).collect();
        let book = CodeBook::from_freqs(&freqs);
        let kraft: f64 = book
            .lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| (0.5f64).powi(l as i32))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft = {kraft}");
    }
}
