//! Wall-clock timing helpers for the table/figure harnesses.

use std::time::{Duration, Instant};

/// A simple resumable stopwatch.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    accumulated: Duration,
    started: Option<Instant>,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// A stopped stopwatch at zero.
    pub fn new() -> Self {
        Self {
            accumulated: Duration::ZERO,
            started: None,
        }
    }

    /// A running stopwatch started now.
    pub fn started() -> Self {
        Self {
            accumulated: Duration::ZERO,
            started: Some(Instant::now()),
        }
    }

    /// Starts (or restarts) the clock; no-op if already running.
    pub fn start(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    /// Stops the clock, banking elapsed time.
    pub fn stop(&mut self) {
        if let Some(t0) = self.started.take() {
            self.accumulated += t0.elapsed();
        }
    }

    /// Total accumulated time (including the current run, if running).
    pub fn elapsed(&self) -> Duration {
        match self.started {
            Some(t0) => self.accumulated + t0.elapsed(),
            None => self.accumulated,
        }
    }

    /// Total accumulated time in seconds.
    pub fn secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Times a closure, returning `(result, seconds)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_accumulates_across_runs() {
        let mut sw = Stopwatch::new();
        sw.start();
        std::thread::sleep(Duration::from_millis(5));
        sw.stop();
        let first = sw.elapsed();
        assert!(first >= Duration::from_millis(4));
        sw.start();
        std::thread::sleep(Duration::from_millis(5));
        sw.stop();
        assert!(sw.elapsed() > first);
    }

    #[test]
    fn stopped_stopwatch_does_not_advance() {
        let mut sw = Stopwatch::started();
        sw.stop();
        let a = sw.elapsed();
        std::thread::sleep(Duration::from_millis(3));
        assert_eq!(sw.elapsed(), a);
    }

    #[test]
    fn time_it_returns_result() {
        let (v, secs) = time_it(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn double_start_is_noop() {
        let mut sw = Stopwatch::new();
        sw.start();
        sw.start();
        sw.stop();
        // Would panic / double count if start stacked; just ensure sane value.
        assert!(sw.secs() < 1.0);
    }
}
