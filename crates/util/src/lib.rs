//! # pqr-util — shared kernels for the PQR workspace
//!
//! Low-level building blocks used by every other crate in the
//! progressive-QoI-retrieval (PQR) reproduction:
//!
//! * [`bitio`] — MSB-first bit-level reader/writer used by the bitplane and
//!   Huffman coders.
//! * [`bitplane_simd`] — word-parallel bitplane primitives (64×64 bit-matrix
//!   transpose, packed-word bit windows) behind the fast coder paths.
//! * [`byteio`] — little-endian byte cursors for segment (de)serialisation.
//! * [`cache`] — byte-budgeted LRU cache shared by the fragment-storage
//!   backends (hit/miss accounting for the transfer experiments).
//! * [`huffman`] — canonical Huffman coding over integer symbols (the entropy
//!   stage of the SZ3 stand-in).
//! * [`rle`] — zero-run run-length coding (the lossless backend standing in
//!   for zstd, and the bitplane post-pass).
//! * [`stats`] — L∞/L2 error metrics, value ranges, bitrate accounting.
//! * [`par`] — chunked parallel map/reduce built on std scoped threads
//!   (rayon is not on the approved dependency list).
//! * [`timer`] — wall-clock helpers for the table/figure harnesses.
//! * [`error`] — the shared error type.

pub mod bitio;
pub mod bitplane_simd;
pub mod byteio;
pub mod cache;
pub mod error;
pub mod huffman;
pub mod par;
pub mod rle;
pub mod stats;
pub mod timer;

pub use error::{PqrError, Result};
