//! Error metrics, value ranges, and bitrate accounting.
//!
//! These implement the paper's quality-assessment conventions (§III-C):
//! distortion is the maximal absolute error divided by the value range
//! ("relative L∞ error"), and bitrate is retrieved bytes × 8 / element count.

/// Maximum absolute pointwise difference between two equal-length slices.
///
/// Panics if the slices differ in length (that is a programming error, not a
/// data error).
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// `(min, max)` of a slice; `(0, 0)` for an empty slice.
pub fn min_max(data: &[f64]) -> (f64, f64) {
    if data.is_empty() {
        return (0.0, 0.0);
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in data {
        if x < lo {
            lo = x;
        }
        if x > hi {
            hi = x;
        }
    }
    (lo, hi)
}

/// Value range `max − min`; 0 for constant or empty data.
pub fn value_range(data: &[f64]) -> f64 {
    let (lo, hi) = min_max(data);
    hi - lo
}

/// Relative L∞ error: `max |aᵢ−bᵢ| / range(a)`. If the reference range is 0
/// the absolute error is returned (matches how the paper's tools degrade).
pub fn rel_linf(reference: &[f64], approx: &[f64]) -> f64 {
    let e = max_abs_diff(reference, approx);
    let r = value_range(reference);
    if r > 0.0 {
        e / r
    } else {
        e
    }
}

/// Root-mean-square error.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let s: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (s / a.len() as f64).sqrt()
}

/// Peak signal-to-noise ratio in dB, using the reference value range as peak.
pub fn psnr(reference: &[f64], approx: &[f64]) -> f64 {
    let r = value_range(reference);
    let e = rmse(reference, approx);
    if e == 0.0 {
        return f64::INFINITY;
    }
    20.0 * (r / e).log10()
}

/// Bitrate in bits per element for `bytes` retrieved over `elements` points.
pub fn bitrate(bytes: usize, elements: usize) -> f64 {
    if elements == 0 {
        return 0.0;
    }
    bytes as f64 * 8.0 / elements as f64
}

/// Compression ratio relative to `f64` storage.
pub fn compression_ratio_f64(bytes: usize, elements: usize) -> f64 {
    if bytes == 0 {
        return f64::INFINITY;
    }
    (elements * 8) as f64 / bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_abs_diff_basic() {
        assert_eq!(max_abs_diff(&[1.0, 2.0, 3.0], &[1.5, 2.0, 1.0]), 2.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    fn min_max_and_range() {
        assert_eq!(min_max(&[3.0, -1.0, 2.0]), (-1.0, 3.0));
        assert_eq!(value_range(&[3.0, -1.0, 2.0]), 4.0);
        assert_eq!(value_range(&[5.0; 10]), 0.0);
        assert_eq!(value_range(&[]), 0.0);
    }

    #[test]
    fn rel_linf_normalises_by_range() {
        let reference = [0.0, 10.0];
        let approx = [1.0, 10.0];
        assert!((rel_linf(&reference, &approx) - 0.1).abs() < 1e-15);
    }

    #[test]
    fn rel_linf_constant_reference_falls_back_to_absolute() {
        let reference = [2.0, 2.0];
        let approx = [2.5, 2.0];
        assert_eq!(rel_linf(&reference, &approx), 0.5);
    }

    #[test]
    fn psnr_of_exact_reconstruction_is_infinite() {
        let x = [1.0, 2.0, 3.0];
        assert!(psnr(&x, &x).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_error() {
        let reference: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let small: Vec<f64> = reference.iter().map(|x| x + 0.01).collect();
        let large: Vec<f64> = reference.iter().map(|x| x + 1.0).collect();
        assert!(psnr(&reference, &small) > psnr(&reference, &large));
    }

    #[test]
    fn bitrate_and_ratio() {
        assert_eq!(bitrate(100, 100), 8.0);
        assert_eq!(bitrate(0, 0), 0.0);
        assert_eq!(compression_ratio_f64(80, 100), 10.0);
        assert!(compression_ratio_f64(0, 100).is_infinite());
    }

    #[test]
    fn rmse_matches_hand_computation() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert!((rmse(&a, &b) - (12.5f64).sqrt()).abs() < 1e-12);
    }
}
