//! Shared error type for the PQR workspace.

use std::fmt;

/// Errors surfaced by PQR components.
///
/// The library is deliberately conservative: any malformed stream, impossible
/// request, or violated precondition is reported as an error instead of a
/// panic so that retrieval pipelines embedded in services degrade gracefully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PqrError {
    /// A serialized segment/stream was truncated or corrupt.
    CorruptStream(String),
    /// A request that can never be satisfied (e.g. negative tolerance).
    InvalidRequest(String),
    /// A precondition of an error-bound theorem was violated and cannot be
    /// recovered by further refinement (e.g. division by an exactly-zero
    /// field value outside the outlier mask).
    UnboundableQoi(String),
    /// Mismatched shapes between fields, masks or QoI variable counts.
    ShapeMismatch(String),
    /// Feature not supported by the chosen progressive representation.
    Unsupported(String),
}

impl fmt::Display for PqrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PqrError::CorruptStream(m) => write!(f, "corrupt stream: {m}"),
            PqrError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            PqrError::UnboundableQoi(m) => write!(f, "unboundable QoI: {m}"),
            PqrError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            PqrError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for PqrError {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, PqrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_all_variants() {
        let cases = [
            (PqrError::CorruptStream("x".into()), "corrupt stream: x"),
            (PqrError::InvalidRequest("y".into()), "invalid request: y"),
            (PqrError::UnboundableQoi("z".into()), "unboundable QoI: z"),
            (PqrError::ShapeMismatch("s".into()), "shape mismatch: s"),
            (PqrError::Unsupported("u".into()), "unsupported: u"),
        ];
        for (e, want) in cases {
            assert_eq!(e.to_string(), want);
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PqrError>();
    }
}
