//! Zero-run run-length coding.
//!
//! Two codecs live here:
//!
//! * [`encode_bytes`]/[`decode_bytes`] — a byte-oriented zero-run codec used
//!   as the lossless backend of the SZ3 stand-in (standing in for zstd: the
//!   Huffman stage already removed entropy, long zero runs are what's left).
//! * [`encode_bits`]/[`decode_bits`] — a bit-oriented Elias-gamma run codec
//!   used on bitplanes, where high planes of smooth-field coefficients are
//!   overwhelmingly zero.

use crate::bitio::{BitReader, BitWriter};
use crate::byteio::{ByteReader, ByteWriter};
use crate::error::{PqrError, Result};

/// Run trigger: after this many identical literal bytes, a varint with the
/// remaining run length follows. Classic "packed RLE" — no escape byte, so
/// any byte value (0x00 and 0xFF runs from Huffman streams alike) collapses.
const RUN_TRIGGER: usize = 3;

/// Compresses runs of any repeated byte: a run of `b × N` (N ≥ 3) is coded
/// as `b b b varint(N−3)`. Shorter repeats pass through verbatim.
pub fn encode_bytes(input: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(input.len() / 2 + 16);
    w.put_u64(input.len() as u64);
    let mut i = 0;
    while i < input.len() {
        let b = input[i];
        let mut run = 1usize;
        while i + run < input.len() && input[i + run] == b {
            run += 1;
        }
        if run >= RUN_TRIGGER {
            for _ in 0..RUN_TRIGGER {
                w.put_u8(b);
            }
            put_varint(&mut w, (run - RUN_TRIGGER) as u64);
        } else {
            for _ in 0..run {
                w.put_u8(b);
            }
        }
        i += run;
    }
    w.finish()
}

/// Largest decoded size [`decode_bytes`] will accept from a stream's length
/// header. Every blob in this workspace is a per-variable entropy stream and
/// stays far below this; a larger claim is treated as corruption so hostile
/// headers cannot trigger exabyte allocations.
pub const MAX_DECODED_BYTES: usize = 1 << 31;

/// Decompresses a blob from [`encode_bytes`].
pub fn decode_bytes(input: &[u8]) -> Result<Vec<u8>> {
    let mut r = ByteReader::new(input);
    let n = r.get_u64()? as usize;
    if n > MAX_DECODED_BYTES {
        return Err(PqrError::CorruptStream(format!(
            "claimed decoded size {n} exceeds limit"
        )));
    }
    // Capacity hint only: bounded by the input size so a corrupt header that
    // passes the limit check still cannot force a large pre-allocation.
    let mut out = Vec::with_capacity(n.min(r.remaining().saturating_mul(4) + 64));
    let mut repeat = 0usize; // consecutive identical bytes seen so far
    let mut last: u16 = 256; // impossible byte value
    while out.len() < n {
        let b = r.get_u8()?;
        out.push(b);
        if u16::from(b) == last {
            repeat += 1;
        } else {
            last = u16::from(b);
            repeat = 1;
        }
        if repeat == RUN_TRIGGER {
            let extra = get_varint(&mut r)? as usize;
            if extra > n - out.len() {
                return Err(PqrError::CorruptStream("byte run overflows output".into()));
            }
            out.try_reserve(extra).map_err(|_| {
                PqrError::CorruptStream(format!("cannot allocate run of {extra} bytes"))
            })?;
            out.resize(out.len() + extra, b);
            repeat = 0;
            last = 256;
        }
    }
    Ok(out)
}

fn put_varint(w: &mut ByteWriter, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            w.put_u8(b);
            break;
        }
        w.put_u8(b | 0x80);
    }
}

fn get_varint(r: &mut ByteReader<'_>) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = r.get_u8()?;
        if shift >= 64 {
            return Err(PqrError::CorruptStream("varint too long".into()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encodes a bit vector as alternating zero/one run lengths in Elias-gamma.
///
/// The stream starts with the first bit value, then gamma-coded run lengths.
/// Ideal for sparse bitplanes (mostly-zero planes shrink dramatically); for
/// dense planes the caller should fall back to raw packing — see
/// [`encode_bits_auto`].
pub fn encode_bits(bits: &[bool]) -> Vec<u8> {
    let mut w = BitWriter::with_capacity_bits(bits.len() / 4 + 64);
    if bits.is_empty() {
        return w.finish();
    }
    w.put_bit(bits[0]);
    let mut run_val = bits[0];
    let mut run_len = 0u64;
    for &b in bits {
        if b == run_val {
            run_len += 1;
        } else {
            put_gamma(&mut w, run_len);
            run_val = b;
            run_len = 1;
        }
    }
    put_gamma(&mut w, run_len);
    w.finish()
}

/// Decodes `n` bits from an [`encode_bits`] stream.
pub fn decode_bits(bytes: &[u8], n: usize) -> Result<Vec<bool>> {
    let mut out = Vec::with_capacity(n);
    if n == 0 {
        return Ok(out);
    }
    let mut r = BitReader::new(bytes);
    let mut val = r.get_bit();
    while out.len() < n {
        if r.remaining_bits() == 0 {
            return Err(PqrError::CorruptStream("bit-run stream truncated".into()));
        }
        let run = get_gamma(&mut r)? as usize;
        if run == 0 || out.len() + run > n {
            return Err(PqrError::CorruptStream("bad bit-run length".into()));
        }
        out.resize(out.len() + run, val);
        val = !val;
    }
    Ok(out)
}

/// Mode byte for [`encode_bits_auto`]: raw bit packing.
const MODE_RAW: u8 = 0;
/// Mode byte for [`encode_bits_auto`]: gamma run-length coding.
const MODE_RLE: u8 = 1;

/// Exact size in bits of the gamma code for `v ≥ 1`.
#[inline]
fn gamma_bits(v: u64) -> u64 {
    let n = u64::from(64 - v.leading_zeros());
    2 * n - 1
}

/// Encodes bits with whichever of {raw packing, run-length} is smaller.
/// The first byte is the mode tag. The run-length size is computed exactly
/// with a cheap counting pass first, so dense planes never pay for a gamma
/// encoding that would be thrown away (bitplane encoding is the refactor
/// hot path).
pub fn encode_bits_auto(bits: &[bool]) -> Vec<u8> {
    let raw_len = bits.len().div_ceil(8);
    let rle_smaller = if bits.is_empty() {
        false
    } else {
        // exact RLE size: 1 bit for the initial value + Σ gamma(run)
        let mut rle_bits = 1u64;
        let mut run_val = bits[0];
        let mut run_len = 0u64;
        for &b in bits {
            if b == run_val {
                run_len += 1;
            } else {
                rle_bits += gamma_bits(run_len);
                run_val = b;
                run_len = 1;
            }
            if rle_bits > 8 * raw_len as u64 {
                break; // already worse than raw
            }
        }
        rle_bits += gamma_bits(run_len.max(1));
        rle_bits.div_ceil(8) < raw_len as u64
    };
    if rle_smaller {
        let rle = encode_bits(bits);
        let mut out = Vec::with_capacity(rle.len() + 1);
        out.push(MODE_RLE);
        out.extend_from_slice(&rle);
        out
    } else {
        let mut w = BitWriter::with_capacity_bits(bits.len());
        for &b in bits {
            w.put_bit(b);
        }
        let mut out = Vec::with_capacity(raw_len + 1);
        out.push(MODE_RAW);
        out.extend_from_slice(&w.finish());
        out
    }
}

/// Decodes `n` bits from an [`encode_bits_auto`] stream.
pub fn decode_bits_auto(bytes: &[u8], n: usize) -> Result<Vec<bool>> {
    if bytes.is_empty() {
        return if n == 0 {
            Ok(Vec::new())
        } else {
            Err(PqrError::CorruptStream("empty auto-bit stream".into()))
        };
    }
    match bytes[0] {
        MODE_RLE => decode_bits(&bytes[1..], n),
        MODE_RAW => {
            if (bytes.len() - 1) * 8 < n {
                return Err(PqrError::CorruptStream("raw bit stream truncated".into()));
            }
            let mut r = BitReader::new(&bytes[1..]);
            Ok((0..n).map(|_| r.get_bit()).collect())
        }
        m => Err(PqrError::CorruptStream(format!("unknown bit mode {m}"))),
    }
}

// ---------------------------------------------------------------------------
// Word-parallel bit codecs
//
// Same wire formats as `encode_bits_auto`/`decode_bits_auto`, but operating
// on the LSB-first packed-word layout of `crate::bitplane_simd` instead of
// `Vec<bool>`: runs are counted 64 bits per `trailing_zeros`, raw planes
// move byte-at-a-time through `reverse_bits`, and RLE runs fill whole words.
// Byte-identical streams and identical error behaviour are asserted by the
// property tests below — these are the fast paths of the bitplane coders,
// not a new format.
// ---------------------------------------------------------------------------

/// Calls `f(value, run_length)` for each maximal bit run of the `n`-bit
/// packed sequence, in order; `f` returns `false` to stop early.
fn for_each_word_run(words: &[u64], n: usize, mut f: impl FnMut(bool, u64) -> bool) {
    if n == 0 {
        return;
    }
    let mut val = words[0] & 1 == 1;
    let mut run = 0u64;
    let mut pos = 0usize;
    while pos < n {
        let off = pos % 64;
        let avail = (64 - off).min(n - pos);
        // z bit t is 0 exactly when logical bit pos+t equals `val`
        let w = words[pos / 64] >> off;
        let z = if val { !w } else { w };
        let same = (z.trailing_zeros() as usize).min(avail);
        run += same as u64;
        pos += same;
        if same < avail {
            if !f(val, run) {
                return;
            }
            val = !val;
            run = 0;
        }
    }
    f(val, run);
}

/// Sets bits `[pos, pos + len)` of an LSB-first packed word slice.
fn fill_ones(words: &mut [u64], pos: usize, len: usize) {
    let mut w = pos / 64;
    let mut off = pos % 64;
    let mut left = len;
    while left > 0 {
        let take = (64 - off).min(left);
        let mask = if take == 64 {
            u64::MAX
        } else {
            ((1u64 << take) - 1) << off
        };
        words[w] |= mask;
        left -= take;
        w += 1;
        off = 0;
    }
}

/// Word `i` of the whole bit buffer `src` logically shifted right by `s`
/// bits (reads past the end as zero).
#[inline]
fn shifted_word(src: &[u64], i: usize, s: usize) -> u64 {
    let (ws, bs) = (s / 64, s % 64);
    let lo = src.get(i + ws).copied().unwrap_or(0);
    if bs == 0 {
        lo
    } else {
        let hi = src.get(i + ws + 1).copied().unwrap_or(0);
        (lo >> bs) | (hi << (64 - bs))
    }
}

/// Zeroes every bit at logical index `>= k` of the packed buffer.
fn zero_bits_from(words: &mut [u64], k: usize) {
    let (w, b) = (k / 64, k % 64);
    if w >= words.len() {
        return;
    }
    if b > 0 {
        words[w] &= (1u64 << b) - 1;
        for slot in &mut words[w + 1..] {
            *slot = 0;
        }
    } else {
        for slot in &mut words[w..] {
            *slot = 0;
        }
    }
}

/// Whether the gamma run-length coding of the `n`-bit packed sequence is
/// strictly smaller than raw packing — the mode decision of
/// [`encode_bits_auto`], computed word-parallel.
///
/// The exact RLE size is `1 + Σ gamma(runᵢ)` and
/// `gamma(r) = 2⌊log₂ r⌋ + 1`, so with `R` runs the total is
/// `1 + R + 2·Σ_{k≥1} #{runs of length ≥ 2^k}`. `R` falls out of one
/// popcount pass over the pair-equality mask, and each `#{runs ≥ 2^k}`
/// term is the popcount of `starts & A` for a doubling cascade of
/// "`2^k − 1` consecutive equal pairs" masks — dense planes (the common
/// case for low bitplanes) cross the worse-than-raw threshold after two
/// or three cascade levels, sparse planes exhaust the cascade after a
/// handful, so the decision costs a few word passes instead of one
/// `trailing_zeros` step per run. The decision (including the partial-sum
/// early exit) is identical to the scalar coder's: every partial sum is a
/// lower bound on the exact size, and the full cascade computes it
/// exactly.
fn rle_smaller_words(words: &[u64], n: usize) -> bool {
    debug_assert!(n > 0);
    let raw_len = n.div_ceil(8) as u64;
    let limit = 8 * raw_len;
    let nw = n.div_ceil(64);
    // pair-equality mask: bit i set iff logical bits i and i+1 agree
    // (defined for the n−1 adjacent pairs; tail bits forced to zero so
    // garbage beyond n and the final run cannot leak in)
    let mut eq = vec![0u64; nw];
    for (i, slot) in eq.iter_mut().enumerate() {
        let x = words[i];
        let nxt = words.get(i + 1).copied().unwrap_or(0);
        *slot = !(x ^ ((x >> 1) | (nxt << 63)));
    }
    zero_bits_from(&mut eq, n - 1);
    let equal_pairs: u64 = eq.iter().map(|w| u64::from(w.count_ones())).sum();
    let runs = 1 + (n as u64 - 1 - equal_pairs);
    let mut rle_bits = 1 + runs; // 1 initial-value bit + 1 gamma bit per run
    if rle_bits > limit {
        return false;
    }
    if runs <= (nw as u64).max(64) {
        // sparse plane: the per-run walk is O(words + runs), cheaper than
        // the cascade's log(max-run) full passes
        let mut rle_bits = 1u64;
        for_each_word_run(words, n, |_, run| {
            rle_bits += gamma_bits(run.max(1));
            true
        });
        return rle_bits.div_ceil(8) < raw_len;
    }
    // run-start mask: bit 0, plus every bit whose preceding pair differs
    let mut starts = vec![0u64; nw];
    let mut carry = 1u64;
    for (i, slot) in starts.iter_mut().enumerate() {
        let t = !eq[i];
        *slot = (t << 1) | carry;
        carry = t >> 63;
    }
    zero_bits_from(&mut starts, n);
    // doubling cascade: `a` holds "j consecutive equal pairs from here",
    // visiting j = 2^k − 1 so popcount(starts & a) = #{runs ≥ 2^k}
    let mut a = eq;
    let mut j = 1usize;
    loop {
        let c: u64 = starts
            .iter()
            .zip(&a)
            .map(|(&s, &w)| u64::from((s & w).count_ones()))
            .sum();
        if c == 0 {
            break; // no run reaches 2^k ⇒ the gamma sum is complete
        }
        rle_bits += 2 * c;
        if rle_bits > limit {
            return false; // partial sum already worse than raw
        }
        // A_{2j+1}(i) = A_j(i) ∧ A_j(i+j) ∧ A_j(i+j+1)
        if 2 * j + 1 >= n {
            break;
        }
        for i in 0..nw {
            let v = a[i] & shifted_word(&a, i, j) & shifted_word(&a, i, j + 1);
            a[i] = v;
        }
        j = 2 * j + 1;
    }
    rle_bits.div_ceil(8) < raw_len
}

/// [`encode_bits_auto`] over the packed-word layout: byte-identical output
/// for the sequence whose logical bit `i` is `words[i / 64] >> (i % 64) & 1`.
/// Bits of `words` beyond `n` are ignored.
pub fn encode_bits_auto_words(words: &[u64], n: usize) -> Vec<u8> {
    debug_assert!(words.len() >= n.div_ceil(64));
    let raw_len = n.div_ceil(8);
    let rle_smaller = n != 0 && rle_smaller_words(words, n);
    if rle_smaller {
        let mut w = BitWriter::with_capacity_bits(n / 4 + 64);
        w.put_bit(words[0] & 1 == 1);
        for_each_word_run(words, n, |_, run| {
            put_gamma(&mut w, run);
            true
        });
        let rle = w.finish();
        let mut out = Vec::with_capacity(rle.len() + 1);
        out.push(MODE_RLE);
        out.extend_from_slice(&rle);
        out
    } else {
        // MSB-first raw packing: logical bits 8k..8k+8 sit byte-aligned in
        // the LSB-first words, so each output byte is one reverse_bits
        let mut out = Vec::with_capacity(raw_len + 1);
        out.push(MODE_RAW);
        for k in 0..raw_len {
            let chunk = (words[k / 8] >> ((k % 8) * 8)) as u8;
            let rem = n - 8 * k;
            let masked = if rem >= 8 {
                chunk
            } else {
                chunk & ((1u8 << rem) - 1)
            };
            out.push(masked.reverse_bits());
        }
        out
    }
}

/// [`decode_bits_auto`] into the packed-word layout: identical acceptance
/// and error behaviour, with bits beyond `n` in the last word left zero.
pub fn decode_bits_auto_words(bytes: &[u8], n: usize) -> Result<Vec<u64>> {
    if bytes.is_empty() {
        return if n == 0 {
            Ok(Vec::new())
        } else {
            Err(PqrError::CorruptStream("empty auto-bit stream".into()))
        };
    }
    match bytes[0] {
        MODE_RLE => decode_bits_words(&bytes[1..], n),
        MODE_RAW => {
            if (bytes.len() - 1) * 8 < n {
                return Err(PqrError::CorruptStream("raw bit stream truncated".into()));
            }
            let mut words = vec![0u64; n.div_ceil(64)];
            for (k, &b) in bytes[1..1 + n.div_ceil(8)].iter().enumerate() {
                words[k / 8] |= u64::from(b.reverse_bits()) << ((k % 8) * 8);
            }
            mask_tail(&mut words, n);
            Ok(words)
        }
        m => Err(PqrError::CorruptStream(format!("unknown bit mode {m}"))),
    }
}

/// Zeroes the bits beyond `n` in the last word (hostile raw padding must
/// not leak into word-level significance tracking).
fn mask_tail(words: &mut [u64], n: usize) {
    if !n.is_multiple_of(64) {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << (n % 64)) - 1;
        }
    }
}

/// [`decode_bits`] into the packed-word layout (same stream, same errors).
fn decode_bits_words(bytes: &[u8], n: usize) -> Result<Vec<u64>> {
    let mut words = vec![0u64; n.div_ceil(64)];
    if n == 0 {
        return Ok(words);
    }
    let mut r = BitReader::new(bytes);
    let mut val = r.get_bit();
    let mut pos = 0usize;
    while pos < n {
        if r.remaining_bits() == 0 {
            return Err(PqrError::CorruptStream("bit-run stream truncated".into()));
        }
        let run = get_gamma(&mut r)?;
        if run == 0 || run > (n - pos) as u64 {
            return Err(PqrError::CorruptStream("bad bit-run length".into()));
        }
        if val {
            fill_ones(&mut words, pos, run as usize);
        }
        pos += run as usize;
        val = !val;
    }
    Ok(words)
}

fn put_gamma(w: &mut BitWriter, v: u64) {
    debug_assert!(v >= 1);
    let nbits = 64 - v.leading_zeros();
    for _ in 0..nbits - 1 {
        w.put_bit(false);
    }
    w.put_bits(v, nbits);
}

fn get_gamma(r: &mut BitReader<'_>) -> Result<u64> {
    let mut zeros = 0u32;
    while !r.get_bit() {
        zeros += 1;
        if zeros > 64 {
            return Err(PqrError::CorruptStream("gamma code too long".into()));
        }
        if r.remaining_bits() == 0 {
            return Err(PqrError::CorruptStream("gamma code truncated".into()));
        }
    }
    let rest = r.get_bits(zeros);
    Ok((1u64 << zeros) | rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip_mixed() {
        let mut data = vec![1u8, 2, 3];
        data.extend(vec![0u8; 1000]);
        data.extend(vec![9u8, 0, 0, 7]);
        let enc = encode_bytes(&data);
        assert!(enc.len() < data.len() / 4);
        assert_eq!(decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn byte_roundtrip_ff_runs() {
        // all-ones Huffman bitstreams produce 0xFF runs — must collapse too
        let data = vec![0xffu8; 10_000];
        let enc = encode_bytes(&data);
        assert!(enc.len() < 32, "enc len {}", enc.len());
        assert_eq!(decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn byte_roundtrip_no_zeros() {
        let data: Vec<u8> = (1..=255).cycle().take(4096).collect();
        let enc = encode_bytes(&data);
        assert_eq!(decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn byte_roundtrip_runs_at_trigger_boundaries() {
        for run in 1..=10usize {
            let mut data = vec![7u8; run];
            data.push(8);
            data.extend(vec![9u8; run]);
            let enc = encode_bytes(&data);
            assert_eq!(decode_bytes(&enc).unwrap(), data, "run={run}");
        }
    }

    #[test]
    fn byte_roundtrip_empty() {
        let enc = encode_bytes(&[]);
        assert!(decode_bytes(&enc).unwrap().is_empty());
    }

    #[test]
    fn bit_roundtrip_sparse() {
        let mut bits = vec![false; 10_000];
        for i in (0..10_000).step_by(997) {
            bits[i] = true;
        }
        let enc = encode_bits(&bits);
        assert!(enc.len() < 10_000 / 8 / 4, "enc len {}", enc.len());
        assert_eq!(decode_bits(&enc, bits.len()).unwrap(), bits);
    }

    #[test]
    fn bit_roundtrip_dense_via_auto() {
        let bits: Vec<bool> = (0..4096).map(|i| i % 2 == 0).collect();
        let enc = encode_bits_auto(&bits);
        // Alternating bits defeat RLE; auto must pick raw (≤ n/8 + 1 + slack).
        assert!(enc.len() <= 4096 / 8 + 2);
        assert_eq!(decode_bits_auto(&enc, bits.len()).unwrap(), bits);
    }

    #[test]
    fn bit_roundtrip_all_ones() {
        let bits = vec![true; 777];
        let enc = encode_bits_auto(&bits);
        assert!(enc.len() < 16);
        assert_eq!(decode_bits_auto(&enc, 777).unwrap(), bits);
    }

    #[test]
    fn truncated_bit_stream_is_error() {
        let bits = vec![true; 100];
        let enc = encode_bits(&bits);
        assert!(decode_bits(&enc, 200).is_err());
    }

    /// Deterministic bit patterns spanning sparse, dense and run-heavy
    /// shapes — the regimes where the auto codec picks different modes.
    fn test_patterns() -> Vec<Vec<bool>> {
        let mut out = vec![
            Vec::new(),
            vec![true],
            vec![false],
            vec![true; 64],
            vec![false; 64],
            vec![true; 1000],
            (0..4096).map(|i| i % 2 == 0).collect(),
            (0..777).map(|i| i % 97 == 0).collect(),
            (0..513).map(|i| (i / 64) % 2 == 0).collect(),
            // one giant run then a dense alternating tail: forces the
            // cascade decision down many doubling levels before the
            // alternation pushes the exact size over the raw limit
            (0..3000).map(|i| i < 1500 || i % 2 == 0).collect(),
            // run lengths straddling powers of two (gamma-width edges)
            (0..1024)
                .map(|i| !matches!(i, 63 | 64 | 127 | 255 | 256 | 511 | 512))
                .collect(),
            // many runs of exactly 64 bits (word-aligned transitions)
            (0..4096).map(|i| (i / 63) % 2 == 0).collect(),
        ];
        let mut s = 0x2468_ace0u64;
        for density in [2u64, 5, 17, 63] {
            out.push(
                (0..2000)
                    .map(|_| {
                        s ^= s << 13;
                        s ^= s >> 7;
                        s ^= s << 17;
                        s % 64 < density
                    })
                    .collect(),
            );
        }
        out
    }

    #[test]
    fn word_encode_is_byte_identical_to_scalar() {
        for bits in test_patterns() {
            let words = crate::bitplane_simd::pack_bits(&bits);
            assert_eq!(
                encode_bits_auto_words(&words, bits.len()),
                encode_bits_auto(&bits),
                "pattern len {}",
                bits.len()
            );
        }
    }

    #[test]
    fn word_encode_ignores_garbage_past_n() {
        // callers may hand a buffer whose tail bits are stale; the stream
        // must depend on the first n bits only
        let bits: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let mut words = crate::bitplane_simd::pack_bits(&bits);
        let clean = encode_bits_auto_words(&words, 100);
        if let Some(w) = words.last_mut() {
            *w |= !0u64 << 36; // poison bits 100.. of the last word
        }
        assert_eq!(encode_bits_auto_words(&words, 100), clean);
    }

    #[test]
    fn word_decode_matches_scalar_on_valid_streams() {
        for bits in test_patterns() {
            let enc = encode_bits_auto(&bits);
            let words = decode_bits_auto_words(&enc, bits.len()).unwrap();
            assert_eq!(crate::bitplane_simd::unpack_bits(&words, bits.len()), bits);
            // tail bits beyond n stay zero (significance tracking relies
            // on it)
            if bits.len() % 64 != 0 {
                if let Some(last) = words.last() {
                    assert_eq!(last >> (bits.len() % 64), 0);
                }
            }
        }
    }

    #[test]
    fn word_decode_fails_exactly_when_scalar_does() {
        // truncations, mode corruption and length lies must fail (or
        // succeed) identically through both decoders
        for bits in test_patterns() {
            let enc = encode_bits_auto(&bits);
            let n = bits.len();
            let mut hostile: Vec<(Vec<u8>, usize)> = Vec::new();
            for cut in [0usize, 1, enc.len() / 2, enc.len().saturating_sub(1)] {
                hostile.push((enc[..cut.min(enc.len())].to_vec(), n));
            }
            hostile.push((enc.clone(), n + 1)); // claim one bit too many
            hostile.push((enc.clone(), n * 2 + 64));
            if !enc.is_empty() {
                let mut bad = enc.clone();
                bad[0] = 9; // unknown mode
                hostile.push((bad, n));
            }
            for (bytes, want) in hostile {
                let scalar = decode_bits_auto(&bytes, want);
                let word = decode_bits_auto_words(&bytes, want);
                assert_eq!(
                    scalar.is_err(),
                    word.is_err(),
                    "divergence for len {} want {want}",
                    bytes.len()
                );
                if let (Ok(s), Ok(w)) = (&scalar, &word) {
                    assert_eq!(s, &crate::bitplane_simd::unpack_bits(w, want));
                }
            }
        }
    }

    #[test]
    fn word_raw_decode_masks_hostile_padding() {
        // a raw stream's final-byte padding is attacker-controlled; the
        // word decoder must not leak it past n
        let bits: Vec<bool> = (0..9).map(|i| i % 2 == 0).collect(); // defeats RLE
        let mut enc = encode_bits_auto(&bits);
        assert_eq!(enc[0], MODE_RAW);
        *enc.last_mut().unwrap() |= 0x7f; // set the padding
        let words = decode_bits_auto_words(&enc, 9).unwrap();
        assert_eq!(words[0], 0b1_0101_0101);
    }

    #[test]
    fn varint_roundtrip_extremes() {
        let mut w = ByteWriter::new();
        for v in [0u64, 1, 127, 128, 16_383, u64::MAX] {
            put_varint(&mut w, v);
        }
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        for v in [0u64, 1, 127, 128, 16_383, u64::MAX] {
            assert_eq!(get_varint(&mut r).unwrap(), v);
        }
    }
}
