//! MSB-first bit-level I/O.
//!
//! Used by the bitplane encoder (`pqr-mgard`) and the Huffman coder. Bits are
//! packed most-significant-bit first within each byte, which keeps the
//! encoded planes byte-aligned per plane and makes the streams easy to
//! inspect in tests.

/// Accumulates bits MSB-first into a byte vector.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Current partial byte (bits already placed at the top).
    cur: u8,
    /// Number of valid bits in `cur` (0..8).
    nbits: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with space reserved for `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bits / 8 + 1),
            cur: 0,
            nbits: 0,
        }
    }

    /// Appends a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.cur = (self.cur << 1) | u8::from(bit);
        self.nbits += 1;
        if self.nbits == 8 {
            self.buf.push(self.cur);
            self.cur = 0;
            self.nbits = 0;
        }
    }

    /// Appends the low `n` bits of `v`, most-significant first. `n <= 64`.
    #[inline]
    pub fn put_bits(&mut self, v: u64, n: u32) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.put_bit((v >> i) & 1 == 1);
        }
    }

    /// Total number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Flushes the partial byte (zero-padded) and returns the byte stream.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.cur <<= 8 - self.nbits;
            self.buf.push(self.cur);
        }
        self.buf
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Next bit index (absolute, from the start of `buf`).
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice. Reading past the end yields zeros; use
    /// [`BitReader::remaining_bits`] to detect truncation where it matters.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Reads one bit; returns `false` past the end of the stream.
    #[inline]
    pub fn get_bit(&mut self) -> bool {
        let byte = self.pos / 8;
        if byte >= self.buf.len() {
            self.pos += 1;
            return false;
        }
        let shift = 7 - (self.pos % 8) as u32;
        self.pos += 1;
        (self.buf[byte] >> shift) & 1 == 1
    }

    /// Reads `n` bits MSB-first into the low bits of the result. `n <= 64`.
    #[inline]
    pub fn get_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | u64::from(self.get_bit());
        }
        v
    }

    /// Number of bits left before the physical end of the buffer.
    pub fn remaining_bits(&self) -> usize {
        (self.buf.len() * 8).saturating_sub(self.pos)
    }

    /// Absolute bit position.
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_bits() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.put_bit(b);
        }
        assert_eq!(w.len_bits(), 9);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.get_bit(), b);
        }
    }

    #[test]
    fn roundtrip_multi_bit_values() {
        let mut w = BitWriter::new();
        w.put_bits(0b1011, 4);
        w.put_bits(0xdead_beef, 32);
        w.put_bits(1, 1);
        w.put_bits(u64::MAX, 64);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(4), 0b1011);
        assert_eq!(r.get_bits(32), 0xdead_beef);
        assert_eq!(r.get_bits(1), 1);
        assert_eq!(r.get_bits(64), u64::MAX);
    }

    #[test]
    fn reading_past_end_returns_zeros() {
        let bytes = BitWriter::new().finish();
        assert!(bytes.is_empty());
        let mut r = BitReader::new(&bytes);
        assert!(!r.get_bit());
        assert_eq!(r.get_bits(16), 0);
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn zero_bit_write_is_noop() {
        let mut w = BitWriter::new();
        w.put_bits(0xff, 0);
        assert_eq!(w.len_bits(), 0);
        assert!(w.finish().is_empty());
    }

    #[test]
    fn position_tracks_reads() {
        let mut w = BitWriter::new();
        w.put_bits(0xabcd, 16);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        r.get_bits(5);
        assert_eq!(r.position(), 5);
        assert_eq!(r.remaining_bits(), 11);
    }
}
