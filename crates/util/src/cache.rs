//! Byte-budgeted LRU cache for fetched fragments.
//!
//! Fragment-addressed storage backends ([`FragmentSource`] implementors in
//! `pqr-progressive`) sit behind slow media — disk ranges or a simulated
//! WAN — so repeated fetches of the same fragment should be served locally.
//! This cache is deliberately generic over the key: callers compose keys
//! from whatever addresses their fragments (block, field, fragment index),
//! and several sources may share one cache instance through an `Arc`.
//!
//! Values are `Arc<Vec<u8>>` so a hit hands out a reference-counted view
//! without copying the payload. Eviction is least-recently-used by a
//! monotonic access tick, bounded by a *byte* budget rather than an entry
//! count — fragment sizes vary by orders of magnitude (a 20-byte coarse
//! bitplane vs. a megabyte snapshot), so counting entries would make the
//! memory ceiling meaningless.
//!
//! [`FragmentSource`]: https://docs.rs/pqr-progressive

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::{Arc, Mutex, MutexGuard};

/// Running tallies of cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Bytes served from the cache (sum of hit payload sizes).
    pub hit_bytes: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Payload bytes currently resident.
    pub bytes: usize,
}

#[derive(Debug)]
struct Entry {
    data: Arc<Vec<u8>>,
    tick: u64,
}

#[derive(Debug)]
struct Inner<K> {
    map: HashMap<K, Entry>,
    /// Access tick → key, oldest first. Ticks are unique, so this is a
    /// total recency order and eviction pops the first entry.
    recency: BTreeMap<u64, K>,
    tick: u64,
    bytes: usize,
    hits: u64,
    misses: u64,
    hit_bytes: u64,
    evictions: u64,
}

/// A thread-safe least-recently-used cache with a byte-size budget.
///
/// ```
/// use pqr_util::cache::LruCache;
/// use std::sync::Arc;
///
/// let cache: LruCache<u32> = LruCache::new(1024);
/// assert!(cache.get(&7).is_none());
/// cache.insert(7, Arc::new(vec![1, 2, 3]));
/// assert_eq!(cache.get(&7).unwrap().as_slice(), &[1, 2, 3]);
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// ```
#[derive(Debug)]
pub struct LruCache<K> {
    cap_bytes: usize,
    inner: Mutex<Inner<K>>,
}

impl<K: Eq + Hash + Clone> LruCache<K> {
    /// Creates a cache that holds at most `cap_bytes` of payload.
    pub fn new(cap_bytes: usize) -> Self {
        Self {
            cap_bytes,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                recency: BTreeMap::new(),
                tick: 0,
                bytes: 0,
                hits: 0,
                misses: 0,
                hit_bytes: 0,
                evictions: 0,
            }),
        }
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.cap_bytes
    }

    fn lock(&self) -> MutexGuard<'_, Inner<K>> {
        // a panicking holder never leaves Inner half-updated (no unwinding
        // calls between field writes), so poisoning is recoverable
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up `key`, refreshing its recency on a hit. Counts hit/miss.
    pub fn get(&self, key: &K) -> Option<Arc<Vec<u8>>> {
        let mut g = self.lock();
        g.tick += 1;
        let tick = g.tick;
        match g.map.get_mut(key) {
            Some(entry) => {
                let old = std::mem::replace(&mut entry.tick, tick);
                let data = Arc::clone(&entry.data);
                g.recency.remove(&old);
                g.recency.insert(tick, key.clone());
                g.hits += 1;
                g.hit_bytes += data.len() as u64;
                Some(data)
            }
            None => {
                g.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) an entry, evicting least-recently-used entries
    /// until the byte budget holds. A value larger than the whole budget is
    /// not cached at all — evicting everything for an entry that cannot be
    /// reused profitably would just thrash — but it still **displaces** any
    /// existing entry under the same key: the cache must never keep serving
    /// a stale payload the caller just replaced, and the displaced bytes
    /// must leave the resident tally (same-key overwrites, smaller or
    /// larger, keep `stats().bytes` exact).
    pub fn insert(&self, key: K, value: Arc<Vec<u8>>) {
        let mut g = self.lock();
        g.tick += 1;
        let tick = g.tick;
        // drop any previous entry first so replacement accounting cannot
        // drift, whatever the new value's size
        let displaced = if let Some(old) = g.map.remove(&key) {
            g.bytes -= old.data.len();
            g.recency.remove(&old.tick);
            true
        } else {
            false
        };
        if value.len() > self.cap_bytes {
            // the stale entry (if any) is gone and counts as evicted; the
            // oversized value itself is not admitted
            if displaced {
                g.evictions += 1;
            }
            return;
        }
        g.bytes += value.len();
        g.recency.insert(tick, key.clone());
        g.map.insert(key, Entry { data: value, tick });
        while g.bytes > self.cap_bytes {
            let Some((_, victim)) = g.recency.pop_first() else {
                break;
            };
            if let Some(e) = g.map.remove(&victim) {
                g.bytes -= e.data.len();
                g.evictions += 1;
            }
        }
    }

    /// Drops every entry (stats are kept).
    pub fn clear(&self) {
        let mut g = self.lock();
        g.map.clear();
        g.recency.clear();
        g.bytes = 0;
    }

    /// Current tallies.
    pub fn stats(&self) -> CacheStats {
        let g = self.lock();
        CacheStats {
            hits: g.hits,
            misses: g.misses,
            hit_bytes: g.hit_bytes,
            evictions: g.evictions,
            entries: g.map.len(),
            bytes: g.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize, fill: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![fill; n])
    }

    #[test]
    fn hit_and_miss_counting() {
        let c: LruCache<&'static str> = LruCache::new(100);
        assert!(c.get(&"a").is_none());
        c.insert("a", blob(10, 1));
        assert_eq!(c.get(&"a").unwrap().len(), 10);
        assert!(c.get(&"b").is_none());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.hit_bytes, 10);
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, 10);
    }

    #[test]
    fn evicts_least_recently_used_by_bytes() {
        let c: LruCache<u32> = LruCache::new(30);
        c.insert(1, blob(10, 1));
        c.insert(2, blob(10, 2));
        c.insert(3, blob(10, 3));
        // touch 1 so 2 becomes the LRU
        assert!(c.get(&1).is_some());
        c.insert(4, blob(10, 4));
        assert!(c.get(&2).is_none(), "LRU entry should have been evicted");
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_some());
        assert!(c.get(&4).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= 30);
    }

    #[test]
    fn oversized_values_are_not_cached() {
        let c: LruCache<u32> = LruCache::new(8);
        c.insert(1, blob(9, 0));
        assert!(c.get(&1).is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn replacing_a_key_updates_bytes() {
        let c: LruCache<u32> = LruCache::new(100);
        c.insert(1, blob(40, 0));
        c.insert(1, blob(10, 1));
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, 10);
        assert_eq!(c.get(&1).unwrap()[0], 1);
    }

    #[test]
    fn same_key_overwrite_with_larger_payload_keeps_bytes_exact() {
        let c: LruCache<u32> = LruCache::new(100);
        c.insert(1, blob(10, 0));
        c.insert(2, blob(10, 2));
        c.insert(1, blob(60, 1)); // grow in place, still under budget
        let s = c.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.bytes, 70, "resident bytes must track the overwrite");
        assert_eq!(c.get(&1).unwrap().len(), 60);
        assert_eq!(c.get(&1).unwrap()[0], 1, "old payload must not survive");
        // growing past the budget evicts the LRU neighbour, not the tally
        c.insert(1, blob(95, 3));
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, 95);
        assert!(c.get(&2).is_none(), "LRU entry evicted to make room");
        assert_eq!(c.get(&1).unwrap()[0], 3);
    }

    #[test]
    fn oversized_overwrite_displaces_the_stale_entry() {
        let c: LruCache<u32> = LruCache::new(50);
        c.insert(1, blob(20, 0));
        assert_eq!(c.stats().bytes, 20);
        // an over-budget replacement cannot be admitted, but it must not
        // leave the cache serving the superseded payload either
        c.insert(1, blob(51, 1));
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.bytes, 0, "displaced bytes must leave the tally");
        assert_eq!(s.evictions, 1, "the displaced entry counts as evicted");
        assert!(c.get(&1).is_none(), "stale payload must be gone");
    }

    #[test]
    fn stats_track_hits_misses_evictions_and_residency() {
        let c: LruCache<u32> = LruCache::new(25);
        c.insert(1, blob(10, 1));
        c.insert(2, blob(10, 2));
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_none());
        c.insert(3, blob(10, 3)); // evicts key 2 (LRU)
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hit_bytes, 10);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert_eq!(s.bytes, 20);
    }

    #[test]
    fn clear_keeps_stats() {
        let c: LruCache<u32> = LruCache::new(100);
        c.insert(1, blob(5, 0));
        assert!(c.get(&1).is_some());
        c.clear();
        assert!(c.get(&1).is_none());
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.bytes, 0);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let c: Arc<LruCache<usize>> = Arc::new(LruCache::new(1 << 16));
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..200 {
                        let k = (t * 13 + i) % 32;
                        if c.get(&k).is_none() {
                            c.insert(k, Arc::new(vec![k as u8; 64]));
                        }
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 8 * 200);
        assert!(s.entries <= 32);
        for k in 0..32usize {
            if let Some(v) = c.get(&k) {
                assert!(v.iter().all(|&b| b == k as u8));
            }
        }
    }

    #[test]
    fn concurrent_inserts_under_pressure_keep_byte_accounting_exact() {
        // the compressed-fragment RAM tier hammers one cache from many
        // refinement threads with a budget far below the offered bytes, so
        // the eviction loop runs constantly; the invariant is that the
        // resident tally never drifts from the surviving entries and never
        // exceeds the budget, no matter how inserts interleave
        let cap = 4 << 10;
        let c: Arc<LruCache<(u64, u32)>> = Arc::new(LruCache::new(cap));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..400u32 {
                        // overlapping key ranges force cross-thread
                        // overwrites, varied sizes force evictions
                        let k = (t % 4, i % 64);
                        let len = 64 + ((t as usize * 37 + i as usize * 11) % 512);
                        c.insert(k, Arc::new(vec![(t as u8) ^ (i as u8); len]));
                        if i % 3 == 0 {
                            c.get(&k);
                        }
                    }
                });
            }
        });
        let s = c.stats();
        assert!(s.bytes <= cap, "resident {} over budget {cap}", s.bytes);
        // recount what actually survived: stats().bytes must equal the sum
        // of resident payload lengths (no double-count, no leak)
        let mut actual = 0usize;
        let mut entries = 0usize;
        for a in 0..4u64 {
            for b in 0..64u32 {
                if let Some(v) = c.get(&(a, b)) {
                    actual += v.len();
                    entries += 1;
                }
            }
        }
        assert_eq!(s.bytes, actual, "tally must match resident payloads");
        assert_eq!(s.entries, entries);
        assert!(s.evictions > 0, "pressure this heavy must evict");
    }

    #[test]
    fn concurrent_oversized_overwrites_never_leak_bytes() {
        // the PR 3 oversized path (displace-but-don't-admit) raced from
        // many threads against admissible overwrites of the same keys:
        // whichever insert lands last, the tally must match the survivors
        let cap = 256;
        let c: Arc<LruCache<u32>> = Arc::new(LruCache::new(cap));
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..300u32 {
                        let k = i % 8;
                        let len = if (t + i) % 3 == 0 {
                            cap + 1 + (i as usize % 64) // never admissible
                        } else {
                            16 + (i as usize % 32)
                        };
                        c.insert(k, Arc::new(vec![t as u8; len]));
                    }
                });
            }
        });
        let s = c.stats();
        assert!(s.bytes <= cap);
        let mut actual = 0usize;
        for k in 0..8u32 {
            if let Some(v) = c.get(&k) {
                assert!(v.len() <= cap, "an oversized payload was admitted");
                actual += v.len();
            }
        }
        assert_eq!(s.bytes, actual, "tally must match resident payloads");
    }

    #[test]
    fn zero_capacity_caches_nothing_without_panicking() {
        let c: LruCache<u32> = LruCache::new(0);
        c.insert(1, blob(1, 0));
        assert!(c.get(&1).is_none());
        // zero-length values do fit a zero budget
        c.insert(2, blob(0, 0));
        assert!(c.get(&2).is_some());
    }
}
