//! Chunked parallel map/reduce on scoped threads.
//!
//! The retrieval engine scans every data point for every QoI each iteration
//! (Algorithm 2, lines 14–24); these helpers parallelise such embarrassingly
//! parallel scans without pulling in rayon (not on the approved dependency
//! list). Work is split into contiguous chunks, one logical chunk per worker,
//! so per-point state stays cache-friendly. `std::thread::scope` guarantees
//! workers only borrow — no `Arc`, no data races (if it compiles, it's safe).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of worker threads to use: `PQR_THREADS` env override, else the
/// available parallelism, else 1.
///
/// Resolved once and cached — this sits on the plan executor's per-round
/// dispatch path, and `std::env::var` takes a process-global lock on every
/// call. Changing `PQR_THREADS` after the first call has no effect; code
/// that needs a per-call worker count (tests, benches) should thread an
/// explicit count instead (e.g. `EngineConfig::workers`).
pub fn worker_count() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        if let Ok(s) = std::env::var("PQR_THREADS") {
            if let Ok(n) = s.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Minimum element count below which parallel dispatch is not worth the
/// thread spawn cost for pointwise scans.
const PAR_THRESHOLD: usize = 4096;

/// Applies `f` to each index chunk `[start, end)` of `0..len` in parallel and
/// reduces the per-chunk results with `reduce`.
pub fn par_chunk_reduce<R, F, G>(len: usize, identity: R, f: F, reduce: G) -> R
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
    G: Fn(R, R) -> R,
{
    let workers = worker_count().min(len.max(1));
    if workers <= 1 || len < PAR_THRESHOLD {
        return reduce(identity, f(0, len));
    }
    let chunk = len.div_ceil(workers);
    let mut results: Vec<R> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let start = w * chunk;
            let end = ((w + 1) * chunk).min(len);
            if start >= end {
                break;
            }
            let f = &f;
            handles.push(s.spawn(move || f(start, end)));
        }
        for h in handles {
            results.push(h.join().expect("pqr worker panicked"));
        }
    });
    let mut acc = identity;
    for r in results {
        acc = reduce(acc, r);
    }
    acc
}

/// Fills `out[i] = f(i)` in parallel over contiguous chunks.
pub fn par_map_into<T, F>(out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let len = out.len();
    let workers = worker_count().min(len.max(1));
    if workers <= 1 || len < PAR_THRESHOLD {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    let chunk = len.div_ceil(workers);
    std::thread::scope(|s| {
        let mut rest = out;
        let mut base = 0usize;
        let f = &f;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let start = base;
            s.spawn(move || {
                for (off, slot) in head.iter_mut().enumerate() {
                    *slot = f(start + off);
                }
            });
            rest = tail;
            base += take;
        }
    });
}

/// Fills contiguous chunks of `out` on `workers` threads: `f(start, chunk)`
/// writes the values for indices `start..start + chunk.len()` into `chunk`.
///
/// The chunk split is a deterministic function of `out.len()` and `workers`
/// only, and each chunk is written by exactly one closure call — so any
/// per-element pure fill is bit-identical at every worker count. With
/// `workers <= 1` (or a small `out`) the whole slice is filled in one call
/// on the calling thread — the exact serial loop callers compare against.
pub fn par_chunk_fill<T, F>(out: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = out.len();
    let workers = workers.max(1).min(len.max(1));
    if workers <= 1 || len < PAR_THRESHOLD {
        f(0, out);
        return;
    }
    let chunk = len.div_ceil(workers);
    std::thread::scope(|s| {
        let mut rest = out;
        let mut base = 0usize;
        let f = &f;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let start = base;
            s.spawn(move || f(start, head));
            rest = tail;
            base += take;
        }
    });
}

/// A dynamic index dispenser for irregular per-item costs (used by the
/// 96-block transfer pipeline where block sizes vary).
pub struct IndexDispenser {
    next: AtomicUsize,
    len: usize,
}

impl IndexDispenser {
    /// Dispenser over `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            len,
        }
    }

    /// Next unclaimed index, or `None` when exhausted.
    pub fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.len).then_some(i)
    }
}

/// Runs `work(i)` for every `i` in `0..len` on `workers` threads with dynamic
/// load balancing; results come back indexed by `i`.
pub fn par_dynamic<T, F>(len: usize, workers: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(len.max(1));
    if workers <= 1 {
        return (0..len).map(&work).collect();
    }
    let dispenser = IndexDispenser::new(len);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|s| {
        for _ in 0..workers {
            let dispenser = &dispenser;
            let collected = &collected;
            let work = &work;
            s.spawn(move || {
                let mut local: Vec<(usize, T)> = Vec::new();
                while let Some(i) = dispenser.claim() {
                    local.push((i, work(i)));
                }
                collected
                    .lock()
                    .expect("collector poisoned")
                    .append(&mut local);
            });
        }
    });
    let mut pairs = collected.into_inner().expect("collector poisoned");
    pairs.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), len);
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// Runs `work(i, &mut items[i])` for every item on `workers` threads with
/// dynamic load balancing; results come back indexed by `i`.
///
/// The mutable-element sibling of [`par_dynamic`], for fan-out over
/// independently owned stateful units (the plan executor advances one
/// decode cursor per field this way). With `workers <= 1` the items are
/// processed sequentially in index order — callers relying on
/// `PQR_THREADS=1` determinism get exactly the serial loop.
pub fn par_dynamic_mut<T, R, F>(items: &mut [T], workers: usize, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, t)| work(i, t))
            .collect();
    }
    let len = items.len();
    // one uncontended Mutex per element hands each worker exclusive &mut
    // access without unsafe slice partitioning
    let slots: Vec<Mutex<Option<&mut T>>> = items.iter_mut().map(|t| Mutex::new(Some(t))).collect();
    let dispenser = IndexDispenser::new(len);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|s| {
        for _ in 0..workers {
            let dispenser = &dispenser;
            let slots = &slots;
            let collected = &collected;
            let work = &work;
            s.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                while let Some(i) = dispenser.claim() {
                    let item = slots[i]
                        .lock()
                        .expect("slot poisoned")
                        .take()
                        .expect("each index claimed once");
                    local.push((i, work(i, item)));
                }
                collected
                    .lock()
                    .expect("collector poisoned")
                    .append(&mut local);
            });
        }
    });
    let mut pairs = collected.into_inner().expect("collector poisoned");
    pairs.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(pairs.len(), len);
    pairs.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_reduce_sums_correctly() {
        let data: Vec<f64> = (0..100_000).map(|i| i as f64).collect();
        let total = par_chunk_reduce(
            data.len(),
            0.0f64,
            |s, e| data[s..e].iter().sum::<f64>(),
            |a, b| a + b,
        );
        let expect: f64 = data.iter().sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn chunk_reduce_small_input_sequential_path() {
        let v = par_chunk_reduce(10, 0usize, |s, e| e - s, |a, b| a + b);
        assert_eq!(v, 10);
    }

    #[test]
    fn chunk_reduce_max() {
        let data: Vec<f64> = (0..50_000).map(|i| ((i * 37) % 1000) as f64).collect();
        let m = par_chunk_reduce(
            data.len(),
            f64::NEG_INFINITY,
            |s, e| data[s..e].iter().copied().fold(f64::NEG_INFINITY, f64::max),
            f64::max,
        );
        assert_eq!(m, 999.0);
    }

    #[test]
    fn map_into_matches_sequential() {
        let mut par = vec![0u64; 100_000];
        par_map_into(&mut par, |i| (i as u64).wrapping_mul(0x9e3779b97f4a7c15));
        for (i, &v) in par.iter().enumerate() {
            assert_eq!(v, (i as u64).wrapping_mul(0x9e3779b97f4a7c15));
        }
    }

    #[test]
    fn chunk_fill_matches_serial_any_worker_count() {
        let fill = |workers| {
            let mut out = vec![0.0f64; 10_000];
            par_chunk_fill(&mut out, workers, |start, chunk| {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = ((start + k) as f64).sqrt().sin();
                }
            });
            out
        };
        let serial = fill(1);
        for w in [2, 4, 7] {
            assert_eq!(fill(w), serial);
        }
    }

    #[test]
    fn dispenser_claims_each_index_once() {
        let d = IndexDispenser::new(1000);
        let counts: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let d = &d;
                let counts = &counts;
                s.spawn(move || {
                    while let Some(i) = d.claim() {
                        counts[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_dynamic_preserves_order() {
        let out = par_dynamic(500, 8, |i| i * i);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn par_dynamic_mut_mutates_every_item_once() {
        let mut items: Vec<u64> = (0..500).collect();
        let out = par_dynamic_mut(&mut items, 8, |i, v| {
            *v += 1;
            *v * i as u64
        });
        for (i, &v) in items.iter().enumerate() {
            assert_eq!(v, i as u64 + 1);
            assert_eq!(out[i], v * i as u64);
        }
    }

    #[test]
    fn par_dynamic_mut_single_worker_matches_parallel() {
        let run = |workers| {
            let mut items: Vec<u64> = (0..200).map(|i| i * 3).collect();
            let out = par_dynamic_mut(&mut items, workers, |i, v| {
                *v = v.wrapping_mul(0x9e3779b97f4a7c15) ^ i as u64;
                *v
            });
            (items, out)
        };
        assert_eq!(run(1), run(7));
    }

    #[test]
    fn par_dynamic_mut_empty() {
        let mut items: Vec<u8> = Vec::new();
        let out: Vec<()> = par_dynamic_mut(&mut items, 4, |_, _| ());
        assert!(out.is_empty());
    }

    #[test]
    fn par_dynamic_zero_len() {
        let out: Vec<usize> = par_dynamic(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn par_dynamic_single_worker_matches() {
        let a = par_dynamic(100, 1, |i| i + 1);
        let b = par_dynamic(100, 7, |i| i + 1);
        assert_eq!(a, b);
    }
}
