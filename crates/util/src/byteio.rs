//! Little-endian byte cursors for segment (de)serialisation.
//!
//! Progressive segments are stored as self-describing byte blobs; these
//! cursors keep the format code free of ad-hoc index arithmetic and turn
//! truncation into a recoverable [`PqrError::CorruptStream`].

use crate::error::{PqrError, Result};

/// Append-only little-endian writer.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte slice (`u64` length).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends raw bytes without a length prefix.
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.put_u64(x);
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian reader over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        // `pos <= len` is an invariant, so the subtraction cannot underflow;
        // comparing this way keeps a hostile `n` from overflowing `pos + n`.
        if n > self.buf.len() - self.pos {
            return Err(PqrError::CorruptStream(format!(
                "need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.get_u64()? as usize;
        self.take(n)
    }

    /// Reads `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>> {
        let n = self.get_u64()? as usize;
        if n > self.buf.len() / 8 + 1 {
            return Err(PqrError::CorruptStream(format!(
                "f64 vec length {n} exceeds stream"
            )));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.get_f64()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>> {
        let n = self.get_u64()? as usize;
        if n > self.buf.len() / 8 + 1 {
            return Err(PqrError::CorruptStream(format!(
                "u64 vec length {n} exceeds stream"
            )));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.get_u64()?);
        }
        Ok(v)
    }

    /// Validates an element count read from the stream against the bytes
    /// that could plausibly back it: each element must occupy at least
    /// `min_entry_bytes` of the remaining input. Deserializers call this
    /// before `Vec::with_capacity(n)` so a hostile header cannot drive a
    /// multi-gigabyte preallocation.
    pub fn check_count(&self, n: usize, min_entry_bytes: usize) -> Result<usize> {
        debug_assert!(min_entry_bytes > 0);
        if n > self.remaining() / min_entry_bytes {
            return Err(PqrError::CorruptStream(format!(
                "count {n} implies at least {min_entry_bytes} B each but only {} B remain",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// Validates an array shape read from an untrusted stream and returns its
/// element count (counting zero extents as 1, so degenerate empty shapes
/// stay representable). Rejects shapes whose product overflows or exceeds
/// the [`MAX_ELEMENTS`] policy ceiling, so hostile dims cannot panic
/// element-count arithmetic. Deserializers share this so the plausibility
/// rule cannot drift between codecs.
///
/// This is a *policy* bound, not a full defense: readers eagerly allocate
/// O(elements) state, so a well-formed stream declaring a huge (but
/// accepted) shape still costs memory proportional to that shape — the
/// ceiling caps the damage at "large", not "absurd".
pub fn check_dims(dims: &[usize]) -> Result<usize> {
    dims.iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d.max(1)))
        .filter(|&n| n <= MAX_ELEMENTS)
        .ok_or_else(|| PqrError::CorruptStream(format!("implausible dims {dims:?}")))
}

/// Largest element count [`check_dims`] accepts: 2^33 ≈ 8.6 G elements
/// (a 64 GiB raw `f64` field) — comfortably above the paper's largest
/// dataset (GE-large, ≈1 G points) with room for growth.
pub const MAX_ELEMENTS: usize = 1 << 33;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(65000);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64(-1.5e-300);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 65000);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), -1.5e-300);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_slices() {
        let mut w = ByteWriter::new();
        w.put_bytes(b"hello");
        w.put_f64_slice(&[1.0, f64::NEG_INFINITY, 0.0]);
        w.put_u64_slice(&[3, 2, 1]);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        let f = r.get_f64_vec().unwrap();
        assert_eq!(f.len(), 3);
        assert_eq!(f[0], 1.0);
        assert!(f[1].is_infinite() && f[1] < 0.0);
        assert_eq!(r.get_u64_vec().unwrap(), vec![3, 2, 1]);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_u64(123);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes[..4]);
        assert!(matches!(r.get_u64(), Err(PqrError::CorruptStream(_))));
    }

    #[test]
    fn bogus_length_prefix_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd element count
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_f64_vec().is_err());
    }

    #[test]
    fn nan_roundtrips_bit_exact() {
        let nan = f64::from_bits(0x7ff8_0000_0000_0001);
        let mut w = ByteWriter::new();
        w.put_f64(nan);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_f64().unwrap().to_bits(), nan.to_bits());
    }
}
