//! Word-parallel bitplane primitives: bit-matrix transpose and packed-word
//! bit windows.
//!
//! The bitplane coders (`pqr-mgard`'s per-level planes, `pqr-zfp`'s
//! negabinary planes) conceptually manipulate an `N × planes` bit matrix:
//! refactoring slices it plane-major (one row per bitplane), decoding
//! accumulates it back coefficient-major. The scalar reference walks that
//! matrix one bit at a time; the kernels here move 64 bits per word op:
//!
//! * [`transpose64`] converts between the two orientations for a 64×64
//!   tile (~6 shift/mask rounds instead of 4096 bit extracts), which is the
//!   workhorse of the word-parallel `encode_level`/`LevelDecoder` pair and
//!   of the ZFP digit regrouping.
//! * [`extract_bits`]/[`deposit_bits`] move short unaligned windows in and
//!   out of packed LSB-first word buffers (ZFP block rows are 4/16/64 bits
//!   wide and rarely word-aligned).
//!
//! Bit layout convention shared by every consumer: logical bit `i` of a
//! packed sequence lives at `words[i / 64] >> (i % 64) & 1` (LSB-first
//! within a word). [`crate::rle`]'s word codecs translate between this
//! layout and the MSB-first wire format, so streams stay byte-identical to
//! the scalar coders.

/// Transposes a 64×64 bit matrix in place: after the call,
/// `a[r] >> c & 1` equals the former `a[c] >> r & 1`.
///
/// Recursive block-swap (Hacker's Delight 7-3) adapted to LSB-first column
/// labeling: each round swaps the off-diagonal blocks of every 2j×2j tile.
pub fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Extracts `n ≤ 64` bits starting at logical bit `pos` from an LSB-first
/// packed word slice, returning them in the low bits of the result. Bits
/// past the end of `words` read as zero.
#[inline]
pub fn extract_bits(words: &[u64], pos: usize, n: usize) -> u64 {
    debug_assert!(n <= 64);
    if n == 0 {
        return 0;
    }
    let w = pos / 64;
    let off = pos % 64;
    let lo = words.get(w).copied().unwrap_or(0) >> off;
    let v = if off != 0 && off + n > 64 {
        lo | (words.get(w + 1).copied().unwrap_or(0) << (64 - off))
    } else {
        lo
    };
    if n == 64 {
        v
    } else {
        v & ((1u64 << n) - 1)
    }
}

/// ORs the low `n ≤ 64` bits of `v` into an LSB-first packed word slice at
/// logical bit `pos`. The destination window must currently be zero (the
/// call ORs, it does not clear) and must lie within `words`.
#[inline]
pub fn deposit_bits(words: &mut [u64], pos: usize, v: u64, n: usize) {
    debug_assert!(n <= 64);
    if n == 0 {
        return;
    }
    let v = if n == 64 { v } else { v & ((1u64 << n) - 1) };
    let w = pos / 64;
    let off = pos % 64;
    words[w] |= v << off;
    if off != 0 && off + n > 64 {
        words[w + 1] |= v >> (64 - off);
    }
}

/// Packs bools into the LSB-first word layout (interop/test helper).
pub fn pack_bits(bits: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; bits.len().div_ceil(64)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            words[i / 64] |= 1u64 << (i % 64);
        }
    }
    words
}

/// Unpacks `n` bits of the LSB-first word layout into bools.
pub fn unpack_bits(words: &[u64], n: usize) -> Vec<bool> {
    (0..n)
        .map(|i| (words[i / 64] >> (i % 64)) & 1 == 1)
        .collect()
}

/// True when the `PQR_SCALAR_KERNELS` env var requests the scalar
/// reference bitplane paths instead of the word-parallel kernels.
///
/// Read on every call (not cached): callers consult it at stream/decoder
/// construction time only, and harnesses flip it between measurement arms.
/// The decoded values and encoded streams are byte-identical either way —
/// this knob exists for benchmarking and for cross-checking the kernels in
/// CI, not for correctness.
pub fn scalar_kernels() -> bool {
    std::env::var("PQR_SCALAR_KERNELS").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng_words(n: usize, mut s: u64) -> Vec<u64> {
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            })
            .collect()
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (r, c) indexing mirrors the matrix statement
    fn transpose64_is_exact_bit_transpose() {
        let src = rng_words(64, 0xdead_beef);
        let mut a: [u64; 64] = src.clone().try_into().unwrap();
        transpose64(&mut a);
        for r in 0..64 {
            for c in 0..64 {
                assert_eq!((a[r] >> c) & 1, (src[c] >> r) & 1, "mismatch at ({r}, {c})");
            }
        }
    }

    #[test]
    fn transpose64_is_an_involution() {
        let src = rng_words(64, 0x1357_9bdf);
        let mut a: [u64; 64] = src.clone().try_into().unwrap();
        transpose64(&mut a);
        transpose64(&mut a);
        assert_eq!(a.to_vec(), src);
    }

    #[test]
    fn extract_deposit_roundtrip_unaligned() {
        let mut s = 0x0f0f_1234u64;
        for _ in 0..200 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let pos = (s % 300) as usize;
            let n = 1 + (s >> 32) as usize % 64;
            let v = s.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut words = vec![0u64; 6];
            deposit_bits(&mut words, pos, v, n);
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            assert_eq!(extract_bits(&words, pos, n), masked, "pos={pos} n={n}");
            // nothing outside the window was touched
            let mut total = 0u32;
            for w in &words {
                total += w.count_ones();
            }
            assert_eq!(total, masked.count_ones());
        }
    }

    #[test]
    fn extract_bits_past_end_reads_zero() {
        let words = vec![u64::MAX];
        assert_eq!(extract_bits(&words, 60, 4), 0xf);
        assert_eq!(extract_bits(&words, 60, 8), 0xf); // tail beyond slice = 0
        assert_eq!(extract_bits(&words, 128, 16), 0);
        assert_eq!(extract_bits(&words, 0, 0), 0);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let bits: Vec<bool> = (0..257).map(|i| (i * 7) % 3 == 0).collect();
        let words = pack_bits(&bits);
        assert_eq!(words.len(), 5);
        assert_eq!(unpack_bits(&words, bits.len()), bits);
    }
}
