//! Property-based tests for the lossless codecs: any input, exact
//! roundtrips, no panics on hostile streams.

use pqr_util::bitio::{BitReader, BitWriter};
use pqr_util::{huffman, rle};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn byte_rle_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let enc = rle::encode_bytes(&data);
        prop_assert_eq!(rle::decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn byte_rle_roundtrip_runny(
        runs in proptest::collection::vec((any::<u8>(), 0usize..600), 0..20)
    ) {
        let mut data = Vec::new();
        for (b, len) in runs {
            data.extend(std::iter::repeat_n(b, len));
        }
        let enc = rle::encode_bytes(&data);
        prop_assert_eq!(rle::decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn bit_rle_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..4096)) {
        let enc = rle::encode_bits_auto(&bits);
        prop_assert_eq!(rle::decode_bits_auto(&enc, bits.len()).unwrap(), bits);
    }

    #[test]
    fn huffman_roundtrip(
        syms in proptest::collection::vec(0u32..500, 0..4096),
    ) {
        let blob = huffman::encode(&syms, 500).unwrap();
        prop_assert_eq!(huffman::decode(&blob).unwrap(), syms);
    }

    #[test]
    fn huffman_skewed_roundtrip(
        zeros in 0usize..2000,
        tail in proptest::collection::vec(0u32..65536, 0..100),
    ) {
        let mut syms = vec![32768u32; zeros];
        syms.extend(tail);
        let blob = huffman::encode(&syms, 65536).unwrap();
        prop_assert_eq!(huffman::decode(&blob).unwrap(), syms);
    }

    #[test]
    fn bitio_roundtrip(values in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..200)) {
        let mut w = BitWriter::new();
        for &(v, n) in &values {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            w.put_bits(masked, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &values {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            prop_assert_eq!(r.get_bits(n), masked);
        }
    }

    #[test]
    fn hostile_streams_never_panic(junk in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = rle::decode_bytes(&junk);
        let _ = rle::decode_bits_auto(&junk, 100);
        let _ = huffman::decode(&junk);
    }
}
