//! Property test of the plan/execute API's contract (`prop_plan_equivalence`):
//! for random archives, schemes, QoI mixes and tolerances, a multi-QoI
//! [`RetrievalRequest`] must certify the **same per-target outcomes** as
//! the legacy path — each target satisfied exactly when an independent
//! `Session::request` at the same tolerance satisfies, with the certified
//! bound within the same tolerance — while reading **no more** than the
//! legacy total bytes, across the in-memory, file-backed and cached
//! backends.
//!
//! The same cases also pin the parallel decode pipeline: executing the
//! request with sequential decode and plain prefetch (`workers: 1`,
//! `overlap_io: false`) versus 8 decode workers with the overlapped
//! prefetcher must produce byte-identical reconstructions, identical
//! `PlanReport` bounds/certifications, and identical byte accounting.

use pqr_core::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Psz3),
        Just(Scheme::Psz3Delta),
        Just(Scheme::PmgardHb),
        Just(Scheme::PmgardOb),
        Just(Scheme::Pzfp),
    ]
}

/// Target mixes that all derive from field 0 (and some from field 1), so
/// a batched plan always has a shared field to dedup.
fn arb_targets() -> impl Strategy<Value = Vec<&'static str>> {
    prop_oneof![
        Just(vec!["V", "Vx2"]),
        Just(vec!["V", "Vx2", "VxVy"]),
        Just(vec!["Vx2", "VxVy"]),
        Just(vec!["V", "VxVy", "Vx2"]),
    ]
}

fn build_archive_bytes(n: usize, seed: u64, scheme: Scheme) -> Vec<u8> {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut field = |phase: f64| -> Vec<f64> {
        (0..n)
            .map(|i| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s as f64 / u64::MAX as f64 - 0.5) * 2.0 + ((i as f64) * phase).sin() * 9.0 + 20.0
            })
            .collect()
    };
    ArchiveBuilder::new(&[n])
        .field("Vx", field(0.013))
        .field("Vy", field(0.029))
        .qoi("V", velocity_magnitude(0, 2))
        .qoi("Vx2", QoiExpr::var(0).pow(2))
        .qoi("VxVy", species_product(0, 1))
        .scheme(scheme)
        .snapshot_bounds(&(1..=8).map(|i| 10f64.powi(-i)).collect::<Vec<_>>())
        .build()
        .unwrap()
        .to_bytes()
}

fn temp_archive(bytes: &[u8], tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pqr_prop_plan");
    std::fs::create_dir_all(&dir).unwrap();
    let unique = format!(
        "{tag}_{}_{}.pqrx",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    );
    let path = dir.join(unique);
    std::fs::write(&path, bytes).unwrap();
    path
}

/// The three lazily-served backends under test, rebuilt per use so every
/// arm starts cold.
fn open_backend(bytes: &[u8], path: &std::path::Path, which: usize) -> Archive {
    match which {
        0 => Archive::from_fragment_source(InMemorySource::new(bytes.to_vec()).unwrap()).unwrap(),
        1 => Archive::open(path).unwrap(),
        _ => {
            let cache = Arc::new(FragmentCache::new(8 << 20));
            Archive::from_fragment_source(CachedSource::new(FileSource::open(path).unwrap(), cache))
                .unwrap()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(18))]

    #[test]
    fn prop_plan_equivalence(
        n in 128usize..512,
        seed in 0u64..1000,
        scheme in arb_scheme(),
        targets in arb_targets(),
        tol_exp in -5..-1i32,
        backend in 0usize..3,
    ) {
        let bytes = build_archive_bytes(n, seed, scheme);
        let path = temp_archive(&bytes, scheme.name());
        // stagger tolerances so targets genuinely differ
        let tols: Vec<f64> = (0..targets.len())
            .map(|k| 10f64.powi(tol_exp - k as i32))
            .collect();

        // batched plan: one session, all targets at once
        let batched = open_backend(&bytes, &path, backend);
        let mut session = batched.session().unwrap();
        let mut request = RetrievalRequest::new();
        for (name, &tol) in targets.iter().zip(&tols) {
            request = request.qoi(name, tol);
        }
        let plan = session.plan(&request).unwrap();
        prop_assert!(
            plan.shared_fields().contains(&0),
            "field 0 must be shared by construction"
        );
        let report = session.execute(&request).unwrap();
        let batched_bytes = session.total_fetched();

        // parallel decode + overlapped I/O must be invisible in results:
        // sequential/plain-prefetch vs 8 workers/overlapped, byte for byte
        let run_parallel_arm = |workers: usize, overlap_io: bool| {
            let mut archive = open_backend(&bytes, &path, backend);
            archive.set_engine_config(EngineConfig {
                workers,
                overlap_io,
                ..Default::default()
            });
            let mut s = archive.session().unwrap();
            let r = s.execute(&request).unwrap();
            let recons: Vec<Vec<f64>> = ["Vx", "Vy"]
                .iter()
                .map(|f| s.reconstruction(f).unwrap().to_vec())
                .collect();
            let bounds: Vec<u64> = r.field_bounds.iter().map(|b| b.to_bits()).collect();
            let ests: Vec<u64> = r.targets.iter().map(|t| t.max_est_error.to_bits()).collect();
            let sats: Vec<bool> = r.targets.iter().map(|t| t.satisfied).collect();
            (recons, bounds, ests, sats, r.bytes_fetched, s.total_fetched())
        };
        let sequential = run_parallel_arm(1, false);
        let parallel = run_parallel_arm(8, true);
        prop_assert_eq!(
            &sequential, &parallel,
            "{}: parallel decode pipeline changed results", scheme.name()
        );

        // shared-store arm: the targets issued as K session requests
        // through one DatasetService, run sequentially, must be
        // byte-identical — per-request certified bounds, reconstructions
        // and cumulative byte accounting — to the same request series on
        // one fresh persistent engine (the service's sharing layer is
        // invisible in results); and the K sessions run *concurrently*
        // must certify identically while never decoding a fragment twice
        {
            let service_archive = open_backend(&bytes, &path, backend);
            let service = service_archive.service().unwrap();
            let legacy_archive = open_backend(&bytes, &path, backend);
            let mut persistent = legacy_archive.session().unwrap();
            for (name, &tol) in targets.iter().zip(&tols) {
                let mut s = service.session().unwrap();
                let rs = s.request(name, tol).unwrap();
                let rl = persistent.request(name, tol).unwrap();
                prop_assert_eq!(rs.satisfied, rl.satisfied, "{}: {}@{}", scheme.name(), name, tol);
                prop_assert_eq!(
                    rs.max_est_errors[0].to_bits(),
                    rl.max_est_errors[0].to_bits(),
                    "{}: {}@{} certified bound drifted", scheme.name(), name, tol
                );
                prop_assert_eq!(rs.total_fetched, rl.total_fetched);
                prop_assert_eq!(s.fragments_decoded(), 0);
                for f in ["Vx", "Vy"] {
                    prop_assert!(
                        s.reconstruction(f).unwrap() == persistent.reconstruction(f).unwrap(),
                        "{}: {}@{} field {} drifted", scheme.name(), name, tol, f
                    );
                }
            }
            prop_assert_eq!(
                service_archive.source_stats().fetched_bytes,
                legacy_archive.source_stats().fetched_bytes,
                "{}: sharing layer changed source traffic", scheme.name()
            );

            // concurrent arm: same targets, racing sessions
            let concurrent_archive = open_backend(&bytes, &path, backend);
            let concurrent = concurrent_archive.service().unwrap();
            let outcomes: Vec<(bool, u64)> = std::thread::scope(|scope| {
                let handles: Vec<_> = targets
                    .iter()
                    .zip(&tols)
                    .map(|(name, &tol)| {
                        let svc = concurrent.clone();
                        let name = name.to_string();
                        scope.spawn(move || {
                            let mut s = svc.session().unwrap();
                            let r = s.request(&name, tol).unwrap();
                            (r.satisfied, s.fragments_decoded())
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for ((name, &tol), (sat, decoded)) in targets.iter().zip(&tols).zip(&outcomes) {
                // satisfiability is a property of the archive + request,
                // not of scheduling: the concurrent run must certify
                // exactly where the sequential one did
                let solo = open_backend(&bytes, &path, backend);
                let mut s = solo.session().unwrap();
                let expect = s.request(name, tol).unwrap().satisfied;
                prop_assert_eq!(*sat, expect, "{}: {}@{} concurrent", scheme.name(), name, tol);
                prop_assert_eq!(*decoded, 0u64);
            }
            // racing sessions never read more than independent cold ones
            let mut cold_sum = 0u64;
            for (name, &tol) in targets.iter().zip(&tols) {
                let solo = open_backend(&bytes, &path, backend);
                let mut s = solo.session().unwrap();
                s.request(name, tol).unwrap();
                cold_sum += solo.source_stats().fetched_bytes;
            }
            prop_assert!(
                concurrent_archive.source_stats().fetched_bytes <= cold_sum,
                "{}: concurrent sharing read more than cold sum", scheme.name()
            );
        }

        // legacy: every target as an independent request on its own
        // fresh session (the pre-plan workflow the plan API replaces)
        let mut legacy_bytes = 0usize;
        let mut legacy = Vec::new();
        for (name, &tol) in targets.iter().zip(&tols) {
            let solo = open_backend(&bytes, &path, backend);
            let mut s = solo.session().unwrap();
            let r = s.request(name, tol).unwrap();
            legacy_bytes += s.total_fetched();
            legacy.push(r);
        }
        std::fs::remove_file(&path).ok();

        // same per-target certification, bounds within the same tolerance
        prop_assert_eq!(report.targets.len(), legacy.len());
        for (t, l) in report.targets.iter().zip(&legacy) {
            prop_assert_eq!(
                t.satisfied, l.satisfied,
                "{}: batched and legacy must certify alike", t.name
            );
            if t.satisfied {
                prop_assert!(t.max_est_error <= t.tol_abs);
                prop_assert!(l.max_est_errors[0] <= t.tol_abs);
            }
        }
        // ...while never reading more than the legacy total
        prop_assert!(
            batched_bytes <= legacy_bytes,
            "{}: batched {batched_bytes} B > legacy {legacy_bytes} B",
            scheme.name()
        );
    }
}
