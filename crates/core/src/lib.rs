//! # pqr-core — the high-level PQR API
//!
//! One import, three steps: **build** an archive from your fields,
//! **register** the QoIs your analyses derive, **retrieve** with guaranteed
//! QoI error control — moving only as many bytes as the tolerance requires.
//!
//! ```
//! use pqr_core::prelude::*;
//!
//! // 1. archive side: refactor fields + register QoIs (ranges are computed
//! //    here, while the original data is still available)
//! let n = 1000;
//! let vx: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin() * 30.0 + 50.0).collect();
//! let vy: Vec<f64> = (0..n).map(|i| (i as f64 * 0.013).cos() * 20.0).collect();
//! let archive = ArchiveBuilder::new(&[n])
//!     .field("Vx", vx)
//!     .field("Vy", vy)
//!     .qoi("V", velocity_magnitude(0, 2))
//!     .scheme(Scheme::PmgardHb)
//!     .build()
//!     .unwrap();
//!
//! // 2. retrieval side: open a session and execute a (possibly
//! //    multi-target) retrieval request — targets sharing fields schedule
//! //    those fields' fragments once; `session.request("V", 1e-4)` is the
//! //    single-target convenience form of the same pipeline
//! let mut session = archive.session().unwrap();
//! let report = session
//!     .execute(&RetrievalRequest::new().qoi("V", 1e-4))
//!     .unwrap();
//! assert!(report.satisfied);
//! assert!(report.targets[0].max_est_error <= report.targets[0].tol_abs);
//!
//! // 3. consume: reconstructed fields and derived QoI values, both within
//! //    the guaranteed bounds
//! let v = session.qoi_values("V").unwrap();
//! assert_eq!(v.len(), n);
//! assert!(session.total_fetched() < archive.refactored().raw_bytes());
//! ```
//!
//! The lower-level building blocks (compressors, decompositions, the
//! retrieval engine, dataset generators, the transfer simulator) are
//! re-exported from their crates — see [`prelude`].

pub mod archive;
pub mod prelude;
pub mod request;

pub use archive::{Archive, ArchiveBuilder, DatasetService, Session};
pub use request::{merge_requests, RequestTarget, RetrievalRequest, ToleranceMode};
