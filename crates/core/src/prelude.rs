//! Everything a typical PQR user needs, one `use` away.
//!
//! ```
//! use pqr_core::prelude::*;
//! let q = velocity_magnitude(0, 3);
//! assert_eq!(q.arity(), 3);
//! ```

pub use crate::archive::{Archive, ArchiveBuilder, DatasetService, Session};
pub use crate::request::{merge_requests, RequestTarget, RetrievalRequest, ToleranceMode};

pub use pqr_progressive::engine::{EngineConfig, QoiSpec, RetrievalEngine, RetrievalReport};
pub use pqr_progressive::field::{Dataset, RefactoredDataset};
pub use pqr_progressive::fragstore::{
    CachedSource, FileSource, FragmentCache, FragmentId, FragmentSource, FragmentStage,
    InMemorySource, Manifest, SourceStats,
};
pub use pqr_progressive::mask::ZeroMask;
pub use pqr_progressive::pager::{parse_budget, StoreBudget};
pub use pqr_progressive::plan::{PlanExecutor, PlanReport, RetrievalPlan, TargetReport};
pub use pqr_progressive::refactored::{RefactoredField, Scheme};
pub use pqr_progressive::store::{FieldSnapshot, ProgressStore, StoreStats};

pub use pqr_qoi::ge::{self as ge_qoi};
pub use pqr_qoi::library::{
    arrhenius, kinetic_energy, momentum, rate_of_progress, species_product, species_product_many,
    velocity_magnitude,
};
pub use pqr_qoi::{BoundConfig, Bounded, Estimator, QoiExpr, SqrtMode};

pub use pqr_mgard::{Basis, MgardRefactorer, MgardStream};
pub use pqr_sz::{Predictor, SzCompressor, SzConfig};
pub use pqr_zfp::{ZfpRefactorer, ZfpStream};

pub use pqr_transfer::{run_pipeline, FetchCounters, NetworkModel, PipelineConfig, RemoteStore};

pub use pqr_util::error::{PqrError, Result};
pub use pqr_util::stats;
