//! Multi-target retrieval requests: the builder side of the plan/execute
//! API.
//!
//! A [`RetrievalRequest`] names one *or many* registered QoIs with
//! per-target tolerances (relative by default, absolute on demand),
//! optional per-target regions of interest, and an optional overall byte
//! budget. [`Session::execute`](crate::Session::execute) resolves it
//! against the archive's QoI registry into a
//! [`RetrievalPlan`](pqr_progressive::plan::RetrievalPlan) — targets that
//! derive from the same fields schedule those fields' fragments **once**
//! — and drives the batched executor.
//!
//! ```
//! use pqr_core::prelude::*;
//!
//! let n = 600;
//! let vx: Vec<f64> = (0..n).map(|i| (i as f64 * 0.02).sin() * 30.0).collect();
//! let vy: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).cos() * 15.0).collect();
//! let archive = ArchiveBuilder::new(&[n])
//!     .field("Vx", vx)
//!     .field("Vy", vy)
//!     .qoi("V", velocity_magnitude(0, 2))
//!     .qoi("Vx2", QoiExpr::var(0).pow(2))
//!     .build()
//!     .unwrap();
//! let mut session = archive.session().unwrap();
//! let report = session
//!     .execute(&RetrievalRequest::new().qoi("V", 1e-4).qoi("Vx2", 1e-3))
//!     .unwrap();
//! assert!(report.satisfied);
//! assert_eq!(report.targets.len(), 2);
//! ```

use pqr_util::byteio::{ByteReader, ByteWriter};
use pqr_util::error::{PqrError, Result};

/// How a target's tolerance is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToleranceMode {
    /// Tolerance is a fraction of the QoI's refactor-time value range
    /// (the paper's relative QoI error metric).
    Relative,
    /// Tolerance is an absolute ceiling on the QoI error.
    Absolute,
}

/// One `(QoI, tolerance)` target of a [`RetrievalRequest`].
#[derive(Debug, Clone)]
pub struct RequestTarget {
    /// Registered QoI name (resolved against the archive's registry).
    pub name: String,
    /// The tolerance, interpreted per [`RequestTarget::mode`].
    pub tolerance: f64,
    /// Relative or absolute tolerance.
    pub mode: ToleranceMode,
    /// Optional half-open linearized index range the tolerance applies to.
    pub region: Option<(usize, usize)>,
}

/// A batched multi-QoI retrieval request (builder).
///
/// Targets accumulate in order; [`RetrievalRequest::region`] and the
/// tolerance-mode helpers apply to the most recently added target, so a
/// request reads top-to-bottom like the analysis it describes.
#[derive(Debug, Clone, Default)]
pub struct RetrievalRequest {
    targets: Vec<RequestTarget>,
    byte_budget: Option<usize>,
}

impl RetrievalRequest {
    /// An empty request (invalid to execute until a target is added).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a target at a **relative** tolerance (fraction of the QoI's
    /// value range — the paper's τ).
    pub fn qoi(mut self, name: &str, tol_rel: f64) -> Self {
        self.targets.push(RequestTarget {
            name: name.to_string(),
            tolerance: tol_rel,
            mode: ToleranceMode::Relative,
            region: None,
        });
        self
    }

    /// Adds a target at an **absolute** tolerance.
    pub fn qoi_abs(mut self, name: &str, tol_abs: f64) -> Self {
        self.targets.push(RequestTarget {
            name: name.to_string(),
            tolerance: tol_abs,
            mode: ToleranceMode::Absolute,
            region: None,
        });
        self
    }

    /// Restricts the most recently added target to the half-open
    /// linearized index range `lo..hi` (region of interest). No-op on an
    /// empty request.
    pub fn region(mut self, lo: usize, hi: usize) -> Self {
        if let Some(t) = self.targets.last_mut() {
            t.region = Some((lo, hi));
        }
        self
    }

    /// Caps the bytes this request may newly fetch. The cap is
    /// round-granular: execution stops scheduling further refinement
    /// rounds once exceeded and reports the still-unmet targets as
    /// unsatisfied (`budget_exhausted` set on the report).
    ///
    /// On a shared-store session
    /// ([`DatasetService`](crate::archive::DatasetService)), "fetched
    /// bytes" count the bytes *backing the adopted state*: if a concurrent
    /// session deepens the store mid-execution, this session's tally jumps
    /// to the deeper state's cost even though it triggered no reads, and a
    /// tight budget can report exhausted early. Byte budgets are therefore
    /// most meaningful on independent sessions (`Archive::session`) or
    /// sequential service traffic; the service-level source truth lives in
    /// `DatasetService::source_stats`.
    pub fn byte_budget(mut self, bytes: usize) -> Self {
        self.byte_budget = Some(bytes);
        self
    }

    /// The accumulated targets, in request order.
    pub fn targets(&self) -> &[RequestTarget] {
        &self.targets
    }

    /// The byte budget, if any.
    pub fn budget(&self) -> Option<usize> {
        self.byte_budget
    }

    /// True when no target has been added yet.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Adds an already-built target (used by [`merge_requests`]).
    pub fn target(mut self, target: RequestTarget) -> Self {
        self.targets.push(target);
        self
    }

    /// Serialises the request into the `PQRQ` wire blob consumed by
    /// [`RetrievalRequest::from_wire_bytes`]. Tolerances travel as IEEE-754
    /// bit patterns, so the round trip is byte-identical — the serving
    /// layer relies on this to keep remote and in-process executions on
    /// the same refinement trajectory.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(64 + self.targets.len() * 48);
        w.put_raw(WIRE_REQUEST_MAGIC);
        w.put_u8(WIRE_REQUEST_VERSION);
        w.put_u64(self.targets.len() as u64);
        for t in &self.targets {
            w.put_bytes(t.name.as_bytes());
            w.put_f64(t.tolerance);
            w.put_u8(match t.mode {
                ToleranceMode::Relative => 0,
                ToleranceMode::Absolute => 1,
            });
            match t.region {
                Some((lo, hi)) => {
                    w.put_u8(1);
                    w.put_u64(lo as u64);
                    w.put_u64(hi as u64);
                }
                None => w.put_u8(0),
            }
        }
        match self.byte_budget {
            Some(b) => {
                w.put_u8(1);
                w.put_u64(b as u64);
            }
            None => w.put_u8(0),
        }
        w.finish()
    }

    /// Parses a `PQRQ` wire blob. Hostile inputs (bad magic, truncated
    /// body, implausible target counts) fail with
    /// [`PqrError::CorruptStream`] before any large allocation.
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        if r.get_raw(4)? != WIRE_REQUEST_MAGIC {
            return Err(PqrError::CorruptStream(
                "bad request magic (want PQRQ)".into(),
            ));
        }
        let version = r.get_u8()?;
        if version != WIRE_REQUEST_VERSION {
            return Err(PqrError::CorruptStream(format!(
                "unsupported request version {version}"
            )));
        }
        // Each target costs at least name-len(8) + tol(8) + mode(1) +
        // region-tag(1) = 18 bytes on the wire.
        let raw_n = r.get_u64()? as usize;
        let n = r.check_count(raw_n, 18)?;
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let name = String::from_utf8(r.get_bytes()?.to_vec())
                .map_err(|_| PqrError::CorruptStream("non-UTF-8 target name".into()))?;
            let tolerance = r.get_f64()?;
            let mode = match r.get_u8()? {
                0 => ToleranceMode::Relative,
                1 => ToleranceMode::Absolute,
                m => {
                    return Err(PqrError::CorruptStream(format!(
                        "unknown tolerance mode {m}"
                    )))
                }
            };
            let region = match r.get_u8()? {
                0 => None,
                1 => {
                    let lo = r.get_u64()? as usize;
                    let hi = r.get_u64()? as usize;
                    Some((lo, hi))
                }
                tag => return Err(PqrError::CorruptStream(format!("unknown region tag {tag}"))),
            };
            targets.push(RequestTarget {
                name,
                tolerance,
                mode,
                region,
            });
        }
        let byte_budget = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_u64()? as usize),
            tag => return Err(PqrError::CorruptStream(format!("unknown budget tag {tag}"))),
        };
        Ok(Self {
            targets,
            byte_budget,
        })
    }
}

/// Magic prefix of a serialised [`RetrievalRequest`].
pub const WIRE_REQUEST_MAGIC: &[u8; 4] = b"PQRQ";
/// Current request wire version.
pub const WIRE_REQUEST_VERSION: u8 = 1;

/// The **union** of several requests: every target of every request, in
/// first-seen order, deduplicated by exact wire identity (name, tolerance
/// bit pattern, mode, region). Executing the union once drives shared
/// decode state at least as deep as executing each request separately
/// would — what the serving layer's cross-client round coalescing runs per
/// batch before fanning per-client replies from the shared state. Byte
/// budgets are deliberately dropped: a budget is a per-client contract
/// that has no union semantics, so the serving layer excludes budgeted
/// requests from coalescing before calling this.
pub fn merge_requests(requests: &[RetrievalRequest]) -> RetrievalRequest {
    let mut seen = std::collections::HashSet::new();
    let mut union = RetrievalRequest::new();
    for req in requests {
        for t in req.targets() {
            let key = (
                t.name.clone(),
                t.tolerance.to_bits(),
                t.mode == ToleranceMode::Absolute,
                t.region,
            );
            if seen.insert(key) {
                union = union.target(t.clone());
            }
        }
    }
    union
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_targets_in_order() {
        let r = RetrievalRequest::new()
            .qoi("a", 1e-3)
            .qoi_abs("b", 0.5)
            .region(10, 20)
            .qoi("c", 1e-6)
            .byte_budget(4096);
        assert_eq!(r.targets().len(), 3);
        assert_eq!(r.targets()[0].name, "a");
        assert_eq!(r.targets()[0].mode, ToleranceMode::Relative);
        assert_eq!(r.targets()[0].region, None);
        assert_eq!(r.targets()[1].mode, ToleranceMode::Absolute);
        assert_eq!(r.targets()[1].region, Some((10, 20)));
        assert_eq!(r.targets()[2].region, None);
        assert_eq!(r.budget(), Some(4096));
        assert!(!r.is_empty());
        assert!(RetrievalRequest::new().is_empty());
    }

    #[test]
    fn region_on_empty_request_is_a_noop() {
        let r = RetrievalRequest::new().region(0, 10);
        assert!(r.is_empty());
    }

    #[test]
    fn wire_roundtrip_is_byte_identical() {
        let r = RetrievalRequest::new()
            .qoi("V", 1e-4)
            .qoi_abs("T", 0.25)
            .region(100, 2000)
            .qoi("p2", f64::from_bits(0x3ff8_0000_0000_0001))
            .byte_budget(1 << 20);
        let wire = r.to_wire_bytes();
        let back = RetrievalRequest::from_wire_bytes(&wire).unwrap();
        assert_eq!(back.to_wire_bytes(), wire);
        assert_eq!(back.targets().len(), 3);
        assert_eq!(back.targets()[1].region, Some((100, 2000)));
        assert_eq!(back.targets()[2].tolerance.to_bits(), 0x3ff8_0000_0000_0001);
        assert_eq!(back.budget(), Some(1 << 20));
    }

    #[test]
    fn wire_roundtrip_without_budget() {
        let r = RetrievalRequest::new().qoi("x", 1e-2);
        let back = RetrievalRequest::from_wire_bytes(&r.to_wire_bytes()).unwrap();
        assert_eq!(back.budget(), None);
        assert_eq!(back.targets()[0].mode, ToleranceMode::Relative);
    }

    #[test]
    fn hostile_wire_inputs_fail_cleanly() {
        // Bad magic.
        assert!(RetrievalRequest::from_wire_bytes(b"NOPE\x01\0\0\0\0\0\0\0\0\0").is_err());
        // Truncated body.
        let wire = RetrievalRequest::new().qoi("a", 1e-3).to_wire_bytes();
        assert!(RetrievalRequest::from_wire_bytes(&wire[..wire.len() - 3]).is_err());
        // Implausible target count must be rejected before allocation.
        let mut w = ByteWriter::new();
        w.put_raw(WIRE_REQUEST_MAGIC);
        w.put_u8(WIRE_REQUEST_VERSION);
        w.put_u64(u64::MAX / 2);
        assert!(RetrievalRequest::from_wire_bytes(&w.finish()).is_err());
        // Unknown version.
        let mut w = ByteWriter::new();
        w.put_raw(WIRE_REQUEST_MAGIC);
        w.put_u8(99);
        w.put_u64(0);
        w.put_u8(0);
        assert!(RetrievalRequest::from_wire_bytes(&w.finish()).is_err());
    }
}
