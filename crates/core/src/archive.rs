//! Archive + session: the ergonomic wrapper over the retrieval machinery.
//!
//! An [`Archive`] comes in two flavours sharing one retrieval code path:
//!
//! * **resident** — built by [`ArchiveBuilder`] or fully materialised by
//!   [`Archive::from_bytes`]; the refactored fragments live in memory.
//! * **lazy** — opened from a file with [`Archive::open`]; only the
//!   manifest (shape, directories, QoI registry, mask) is read up front,
//!   and every session fetches fragment byte ranges on demand. A loose
//!   tolerance therefore reads only a fraction of the archive from disk.
//!
//! [`Session`]s are **owned**: they hold shared (`Arc`) handles to the
//! archive's fragment source and QoI registry, carry no borrows, and can
//! move across threads. For concurrent traffic, [`Archive::service`]
//! builds a [`DatasetService`] — a cheaply-cloneable handle whose sessions
//! additionally share one
//! [`ProgressStore`], so the
//! deepest-decoded prefix of each field is decoded once and serves every
//! looser request for free.

use crate::request::{RequestTarget, RetrievalRequest, ToleranceMode};
use pqr_progressive::engine::{EngineConfig, QoiSpec, RetrievalEngine, RetrievalReport};
use pqr_progressive::field::{Dataset, RefactoredDataset};
use pqr_progressive::fragstore::{
    FileSource, FragmentSource, InMemorySource, Manifest, SourceStats,
};
use pqr_progressive::pager::StoreBudget;
use pqr_progressive::plan::{PlanExecutor, PlanReport, RetrievalPlan};
use pqr_progressive::refactored::{default_snapshot_bounds, Scheme};
use pqr_progressive::store::{ProgressStore, StoreStats};
use pqr_qoi::QoiExpr;
use pqr_util::error::{PqrError, Result};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

/// Builder for [`Archive`]: fields + QoIs + representation choices.
pub struct ArchiveBuilder {
    dataset: Dataset,
    scheme: Scheme,
    rel_bounds: Vec<f64>,
    qois: Vec<(String, QoiExpr)>,
    mask_fields: Option<Vec<String>>,
    engine: EngineConfig,
}

impl ArchiveBuilder {
    /// Starts a builder for fields of the given shape.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dataset: Dataset::new(dims),
            scheme: Scheme::default(),
            rel_bounds: default_snapshot_bounds(),
            qois: Vec::new(),
            mask_fields: None,
            engine: EngineConfig::default(),
        }
    }

    /// Adds a field. Panics on shape mismatch at [`ArchiveBuilder::build`].
    pub fn field(mut self, name: &str, data: Vec<f64>) -> Self {
        // defer errors to build() so the builder stays chainable
        let _ = self.dataset.add_field(name, data);
        self
    }

    /// Adds a single-precision field, widened to f64. The paper's §VI notes
    /// the method "directly applies to single-precision floating-point
    /// data"; widening is exact, so every guarantee downstream holds against
    /// the f32 values bit-for-bit.
    pub fn field_f32(self, name: &str, data: &[f32]) -> Self {
        self.field(name, data.iter().map(|&v| f64::from(v)).collect())
    }

    /// Registers a QoI; its value range is computed at build time.
    pub fn qoi(mut self, name: &str, expr: QoiExpr) -> Self {
        self.qois.push((name.to_string(), expr));
        self
    }

    /// Chooses the progressive representation (default: PMGARD-HB).
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Overrides the snapshot bound ladder (snapshot schemes only).
    pub fn snapshot_bounds(mut self, rel_bounds: &[f64]) -> Self {
        self.rel_bounds = rel_bounds.to_vec();
        self
    }

    /// Enables the zero-outlier mask over the named fields (§V-A).
    pub fn mask(mut self, field_names: &[&str]) -> Self {
        self.mask_fields = Some(field_names.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Overrides retrieval engine knobs for sessions on this archive.
    pub fn engine_config(mut self, cfg: EngineConfig) -> Self {
        self.engine = cfg;
        self
    }

    /// Refactors everything and computes QoI metadata.
    pub fn build(self) -> Result<Archive> {
        let mut qoi_meta = BTreeMap::new();
        for (name, expr) in &self.qois {
            let range = self.dataset.qoi_range(expr)?;
            qoi_meta.insert(name.clone(), (expr.clone(), range));
        }
        let mut refactored = self
            .dataset
            .refactor_with_bounds(self.scheme, &self.rel_bounds)?;
        if let Some(names) = &self.mask_fields {
            let idx: Vec<usize> = names
                .iter()
                .map(|n| {
                    self.dataset.field_index(n).ok_or_else(|| {
                        PqrError::InvalidRequest(format!("mask field '{n}' not found"))
                    })
                })
                .collect::<Result<_>>()?;
            refactored.set_mask(self.dataset.zero_mask(&idx))?;
        }
        Ok(Archive {
            store: ArchiveStore::Resident(Arc::new(refactored)),
            qois: Arc::new(qoi_meta),
            engine: self.engine,
        })
    }

    /// Refactors and streams the archive straight to `path` — the
    /// parallel-ingest counterpart of [`ArchiveBuilder::build`] +
    /// [`Archive::save`]. Fields encode across `workers` threads (`0`
    /// resolves to the `PQR_THREADS` worker count) and, with `overlap_io`,
    /// completed fields' fragments hit the disk while later fields are
    /// still encoding. The container is byte-identical for every
    /// workers/overlap combination; reopen it with [`Archive::open`].
    /// Returns the total bytes written.
    pub fn build_to_path(
        self,
        path: impl AsRef<Path>,
        workers: usize,
        overlap_io: bool,
    ) -> Result<u64> {
        let mut qoi_meta = BTreeMap::new();
        for (name, expr) in &self.qois {
            let range = self.dataset.qoi_range(expr)?;
            qoi_meta.insert(name.clone(), (expr.clone(), range));
        }
        let mask_idx = match &self.mask_fields {
            Some(names) => Some(
                names
                    .iter()
                    .map(|n| {
                        self.dataset.field_index(n).ok_or_else(|| {
                            PqrError::InvalidRequest(format!("mask field '{n}' not found"))
                        })
                    })
                    .collect::<Result<Vec<_>>>()?,
            ),
            None => None,
        };
        self.dataset.refactor_to_path(
            self.scheme,
            &self.rel_bounds,
            mask_idx.as_deref(),
            &registry_to_bytes(&qoi_meta),
            path,
            workers,
            overlap_io,
        )
    }
}

/// Where an archive's fragment bytes live. Both flavours are behind `Arc`
/// so sessions and services own shared handles instead of borrows.
enum ArchiveStore {
    /// Fully materialised in memory (builder-built or deserialized).
    Resident(Arc<RefactoredDataset>),
    /// Served on demand from a fragment source (lazily opened file).
    Lazy(Arc<dyn FragmentSource>),
}

/// The shared QoI registry: name → (expression, refactor-time range).
type QoiRegistry = BTreeMap<String, (QoiExpr, f64)>;

/// A refactored archive with its QoI registry (Fig. 1's storage-side box).
pub struct Archive {
    store: ArchiveStore,
    qois: Arc<QoiRegistry>,
    engine: EngineConfig,
}

impl Archive {
    /// The fragment source every session of this archive fetches through.
    pub fn source(&self) -> &dyn FragmentSource {
        match &self.store {
            ArchiveStore::Resident(rd) => rd.as_ref(),
            ArchiveStore::Lazy(src) => src.as_ref(),
        }
    }

    /// A shared handle to the archive's fragment source — what owned
    /// sessions and services fetch through.
    pub fn shared_source(&self) -> Arc<dyn FragmentSource> {
        match &self.store {
            ArchiveStore::Resident(rd) => Arc::clone(rd) as Arc<dyn FragmentSource>,
            ArchiveStore::Lazy(src) => Arc::clone(src),
        }
    }

    /// The archive manifest: shape, per-field schemes/ranges/directories,
    /// mask presence — available without fetching any payload fragment.
    pub fn manifest(&self) -> Result<Manifest> {
        self.source().manifest()
    }

    /// Cumulative fetch tallies of the underlying source (zeros for
    /// resident archives, which do not track memory copies).
    pub fn source_stats(&self) -> SourceStats {
        self.source().stats()
    }

    /// The underlying refactored dataset of a *resident* archive.
    ///
    /// # Panics
    ///
    /// Panics for lazily opened archives ([`Archive::open`]), whose
    /// fragments intentionally stay on storage — use [`Archive::manifest`]
    /// for metadata or a [`Session`] to retrieve data.
    pub fn refactored(&self) -> &RefactoredDataset {
        match &self.store {
            ArchiveStore::Resident(rd) => rd.as_ref(),
            ArchiveStore::Lazy(_) => {
                panic!("lazily opened archive holds no resident dataset; use manifest()/session()")
            }
        }
    }

    /// Registered QoI names.
    pub fn qoi_names(&self) -> Vec<&str> {
        self.qois.keys().map(String::as_str).collect()
    }

    /// The refactor-time value range of a registered QoI.
    pub fn qoi_range(&self, name: &str) -> Option<f64> {
        self.qois.get(name).map(|(_, r)| *r)
    }

    /// The expression of a registered QoI.
    pub fn qoi_expr(&self, name: &str) -> Option<&QoiExpr> {
        self.qois.get(name).map(|(e, _)| e)
    }

    /// Overrides the engine configuration used by future sessions — e.g. to
    /// switch the error estimator on a deserialized archive (which always
    /// restores with defaults).
    pub fn set_engine_config(&mut self, cfg: EngineConfig) {
        self.engine = cfg;
    }

    /// Opens an **owned, independent** retrieval session (progressive
    /// across requests): a cold engine with its own decode state, sharing
    /// only the fragment source. Sessions on lazily opened archives fetch
    /// fragment byte ranges on demand.
    ///
    /// Sessions that should *share* decode state (many clients, mixed
    /// tolerances, decode-once) come from [`Archive::service`] instead.
    pub fn session(&self) -> Result<Session> {
        Ok(Session {
            engine: RetrievalEngine::from_source(self.shared_source(), self.engine)?,
            qois: Arc::clone(&self.qois),
        })
    }

    /// Reopens a session at a previously saved progress point (from
    /// [`Session::save_progress`]): the replay is deterministic, so the
    /// resumed session continues with identical reconstructions and byte
    /// accounting.
    pub fn resume_session(&self, progress: &[u8]) -> Result<Session> {
        Ok(Session {
            engine: RetrievalEngine::resume_from_source(
                self.shared_source(),
                self.engine,
                progress,
            )?,
            qois: Arc::clone(&self.qois),
        })
    }

    /// Builds the shared-state retrieval service for this archive: a
    /// cheaply-cloneable [`DatasetService`] handle whose sessions all read
    /// through one [`ProgressStore`] (per-field master decode state). The
    /// store is opened here — one metadata fetch per field — and every
    /// bitplane decoded by any session is decoded exactly once for all of
    /// them; a session requesting a tolerance the store already reached
    /// touches neither the source nor a decoder.
    ///
    /// Decoded state is charged against a [`StoreBudget`]: the engine
    /// config's `store_budget_bytes` if set, otherwise the
    /// `PQR_STORE_BUDGET` environment variable (unset ⇒ unbounded). Over
    /// budget, cold fields demote to their progress marker and rehydrate
    /// bit-identically on demand. To share one budget across several
    /// datasets (as `pqr serve` does), use [`Archive::service_with_budget`].
    pub fn service(&self) -> Result<DatasetService> {
        let budget = match self.engine.store_budget_bytes {
            Some(limit) => Arc::new(StoreBudget::with_limit(limit)),
            None => Arc::new(StoreBudget::from_env()?),
        };
        self.service_with_budget(budget)
    }

    /// [`Archive::service`] charging decoded state against an explicit
    /// (possibly shared) [`StoreBudget`] — the serving layer hands one
    /// budget to every registered dataset so eviction pressure is global.
    pub fn service_with_budget(&self, budget: Arc<StoreBudget>) -> Result<DatasetService> {
        let source = self.shared_source();
        let store = Arc::new(ProgressStore::open_with(Arc::clone(&source), budget)?);
        Ok(DatasetService {
            inner: Arc::new(ServiceInner {
                source,
                store,
                qois: Arc::clone(&self.qois),
                engine: self.engine,
            }),
        })
    }

    /// Builds the [`QoiSpec`] for a registered QoI at a relative tolerance.
    pub fn spec(&self, name: &str, tol_rel: f64) -> Result<QoiSpec> {
        let (expr, range) = self
            .qois
            .get(name)
            .ok_or_else(|| PqrError::InvalidRequest(format!("unknown QoI '{name}'")))?;
        Ok(QoiSpec::with_range(name, expr.clone(), tol_rel, *range))
    }

    /// Serializes the whole archive into the fragment-addressed container
    /// format: refactored fields, mask, and the QoI registry (expressions +
    /// refactor-time ranges) ride the manifest, so a lazily opened archive
    /// reconstructs the exact estimator without touching a payload fragment
    /// (Fig. 1's metadata path).
    ///
    /// Lazily opened archives are materialised first (every fragment is
    /// fetched), which defeats their purpose — serialize resident archives.
    ///
    /// # Panics
    ///
    /// Panics if a *lazy* archive's backing source fails mid-materialise
    /// (e.g. the file was truncated after open) — use [`Archive::save`],
    /// whose fallible path reports such errors instead.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.serialize()
            .expect("lazy archive source failed mid-materialise")
    }

    fn serialize(&self) -> Result<Vec<u8>> {
        let registry = registry_to_bytes(&self.qois);
        Ok(match &self.store {
            ArchiveStore::Resident(rd) => rd.to_bytes_with_meta(&registry),
            ArchiveStore::Lazy(src) => {
                RefactoredDataset::from_source(src.as_ref())?.to_bytes_with_meta(&registry)
            }
        })
    }

    /// Writes the archive to a file (see [`Archive::to_bytes`]); reopen it
    /// lazily with [`Archive::open`]. Unlike [`Archive::to_bytes`], a lazy
    /// archive whose source fails mid-materialise returns the error.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        std::fs::write(path.as_ref(), self.serialize()?).map_err(|e| {
            PqrError::InvalidRequest(format!("cannot write '{}': {e}", path.as_ref().display()))
        })
    }

    /// Restores (fully materialises) an archive from [`Archive::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let src = InMemorySource::new(bytes.to_vec())?;
        let qois = registry_from_bytes(&src.manifest()?.app_meta)?;
        Ok(Self {
            store: ArchiveStore::Resident(Arc::new(RefactoredDataset::from_source(&src)?)),
            qois: Arc::new(qois),
            engine: EngineConfig::default(),
        })
    }

    /// Opens an archive file **lazily**: reads only the manifest (and the
    /// QoI registry embedded in it); sessions then fetch fragment byte
    /// ranges on demand, so a loose-tolerance retrieval reads far fewer
    /// disk bytes than the archive holds.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::from_fragment_source(FileSource::open(path)?)
    }

    /// Wraps an arbitrary fragment source (file, remote adapter, cached
    /// stack) as a lazy archive, reading the QoI registry from its
    /// manifest.
    pub fn from_fragment_source(source: impl FragmentSource + 'static) -> Result<Self> {
        let qois = registry_from_bytes(&source.manifest()?.app_meta)?;
        Ok(Self {
            store: ArchiveStore::Lazy(Arc::new(source)),
            qois: Arc::new(qois),
            engine: EngineConfig::default(),
        })
    }
}

/// A shared-state retrieval service over one archive: the cheaply-cloneable
/// handle a server holds per dataset. All sessions spawned from one service
/// share the fragment source, the QoI registry **and** the
/// [`ProgressStore`] — per-field decode state that only ever deepens, so
/// concurrent mixed-tolerance traffic decodes each bitplane once and
/// requests at or above an already-reached depth are served without
/// touching the source (see [`DatasetService::store_stats`] /
/// [`DatasetService::source_stats`] for the counters that prove it).
///
/// ```
/// use pqr_core::prelude::*;
///
/// let n = 512;
/// let archive = ArchiveBuilder::new(&[n])
///     .field("u", (0..n).map(|i| (i as f64 * 0.02).sin() * 9.0).collect())
///     .qoi("u2", QoiExpr::var(0).pow(2))
///     .build()
///     .unwrap();
/// let service = archive.service().unwrap();
/// // handles clone cheaply; sessions are owned and Send
/// let workers: Vec<_> = (0..4)
///     .map(|k| {
///         let svc = service.clone();
///         std::thread::spawn(move || {
///             let mut session = svc.session().unwrap();
///             let tol = if k % 2 == 0 { 1e-2 } else { 1e-5 };
///             session.request("u2", tol).unwrap().satisfied
///         })
///     })
///     .collect();
/// assert!(workers.into_iter().all(|w| w.join().unwrap()));
/// // four sessions, one decode of the deepest prefix
/// assert!(service.store_stats().fragments_decoded > 0);
/// ```
#[derive(Clone)]
pub struct DatasetService {
    inner: Arc<ServiceInner>,
}

struct ServiceInner {
    source: Arc<dyn FragmentSource>,
    store: Arc<ProgressStore>,
    qois: Arc<QoiRegistry>,
    engine: EngineConfig,
}

impl DatasetService {
    /// Spawns an owned session sharing this service's decode store. The
    /// session adopts the store's current depth at open (a warm service
    /// serves it instantly) and advances the shared state only past what
    /// any prior request reached.
    pub fn session(&self) -> Result<Session> {
        Ok(Session {
            engine: RetrievalEngine::with_store(Arc::clone(&self.inner.store), self.inner.engine)?,
            qois: Arc::clone(&self.inner.qois),
        })
    }

    /// The shared per-field decode store.
    pub fn store(&self) -> &Arc<ProgressStore> {
        &self.inner.store
    }

    /// Decode-sharing tallies: fragments decoded (once, for everyone),
    /// refinements served from existing state, snapshot adoptions.
    pub fn store_stats(&self) -> StoreStats {
        self.inner.store.stats()
    }

    /// Fetch tallies of the shared fragment source — across *all* sessions
    /// of this service.
    pub fn source_stats(&self) -> SourceStats {
        self.inner.source.stats()
    }

    /// The archive manifest the service retrieves against.
    pub fn manifest(&self) -> &Manifest {
        self.inner.store.manifest()
    }

    /// Registered QoI names.
    pub fn qoi_names(&self) -> Vec<&str> {
        self.inner.qois.keys().map(String::as_str).collect()
    }
}

/// Magic guarding the QoI registry blob inside the container manifest.
const REGISTRY_MAGIC: &[u8; 4] = b"PQRA";

fn registry_to_bytes(qois: &BTreeMap<String, (QoiExpr, f64)>) -> Vec<u8> {
    use pqr_util::byteio::ByteWriter;
    let mut w = ByteWriter::new();
    w.put_raw(REGISTRY_MAGIC);
    w.put_u32(qois.len() as u32);
    for (name, (expr, range)) in qois {
        w.put_bytes(name.as_bytes());
        w.put_bytes(&pqr_qoi::serial::to_bytes(expr));
        w.put_f64(*range);
    }
    w.finish()
}

fn registry_from_bytes(bytes: &[u8]) -> Result<BTreeMap<String, (QoiExpr, f64)>> {
    // archives written without a registry (bare `RefactoredDataset`
    // containers) simply expose no named QoIs
    if bytes.is_empty() {
        return Ok(BTreeMap::new());
    }
    use pqr_util::byteio::ByteReader;
    let mut r = ByteReader::new(bytes);
    if r.get_raw(4)? != REGISTRY_MAGIC {
        return Err(PqrError::CorruptStream("bad QoI registry magic".into()));
    }
    let nq = r.get_u32()? as usize;
    let nq = r.check_count(nq, 8 + 8 + 8)?;
    let mut qois = BTreeMap::new();
    for _ in 0..nq {
        let name = String::from_utf8(r.get_bytes()?.to_vec())
            .map_err(|_| PqrError::CorruptStream("bad QoI name".into()))?;
        let expr = pqr_qoi::serial::from_bytes(r.get_bytes()?)?;
        let range = r.get_f64()?;
        qois.insert(name, (expr, range));
    }
    if r.remaining() != 0 {
        return Err(PqrError::CorruptStream("trailing registry bytes".into()));
    }
    Ok(qois)
}

/// A progressive retrieval session: requests accumulate, bytes are fetched
/// incrementally (§III-B's key property).
///
/// Sessions are **owned** (no lifetime parameter — the former
/// `Session<'a>` borrowed its archive): they hold `Arc` handles to the
/// fragment source and QoI registry, so they are `Send`, can outlive the
/// `Archive` value that spawned them, and move freely into worker threads.
/// Sessions from [`DatasetService::session`] additionally read through the
/// service's shared decode store.
pub struct Session {
    engine: RetrievalEngine,
    qois: Arc<QoiRegistry>,
}

impl Session {
    /// Builds the [`QoiSpec`] for a registered QoI at a relative tolerance.
    fn spec(&self, name: &str, tol_rel: f64) -> Result<QoiSpec> {
        let (expr, range) = self
            .qois
            .get(name)
            .ok_or_else(|| PqrError::InvalidRequest(format!("unknown QoI '{name}'")))?;
        Ok(QoiSpec::with_range(name, expr.clone(), tol_rel, *range))
    }

    /// The expression of a registered QoI.
    fn qoi_expr(&self, name: &str) -> Option<&QoiExpr> {
        self.qois.get(name).map(|(e, _)| e)
    }

    /// Requests one registered QoI at a relative tolerance.
    ///
    /// This is the **convenience form** of the plan/execute API: it
    /// resolves a single-target plan and runs the batched executor, so it
    /// shares the one fetch code path with [`Session::execute`]. Reach for
    /// [`RetrievalRequest`] when an analysis derives several QoIs from the
    /// same fields — shared fields are then fetched once instead of per
    /// request — or when you need per-target reports, absolute tolerances
    /// in a batch, or a byte budget.
    pub fn request(&mut self, name: &str, tol_rel: f64) -> Result<RetrievalReport> {
        let spec = self.spec(name, tol_rel)?;
        self.engine.retrieve(&[spec])
    }

    /// Resolves a multi-target [`RetrievalRequest`] against the archive's
    /// QoI registry and the session's current progress, without fetching:
    /// which fields each target derives from, the Algorithm-3 refinement
    /// fronts, and the deduplicated source-ordered fragment schedule (two
    /// targets touching one field schedule its fragments once).
    pub fn plan(&self, request: &RetrievalRequest) -> Result<RetrievalPlan> {
        let specs = self.resolve_targets(request)?;
        RetrievalPlan::resolve(&self.engine, specs, request.budget())
    }

    /// Plans and executes a multi-target request: each refinement round's
    /// fragment schedule rides one batched
    /// [`FragmentSource::read_many`] call (coalesced range reads on files,
    /// one round-trip per batch on remote stores), the §IV error bounds
    /// are re-evaluated after every round, and each target stops refining
    /// as soon as its tolerance certifies. Returns the per-target
    /// [`PlanReport`] with shared-fragment savings and read-op counts.
    pub fn execute(&mut self, request: &RetrievalRequest) -> Result<PlanReport> {
        let specs = self.resolve_targets(request)?;
        let plan = RetrievalPlan::resolve(&self.engine, specs, request.budget())?;
        PlanExecutor::new(&mut self.engine).execute(&plan)
    }

    /// Resolves request targets into engine specs via the QoI registry.
    fn resolve_targets(&self, request: &RetrievalRequest) -> Result<Vec<QoiSpec>> {
        if request.is_empty() {
            return Err(PqrError::InvalidRequest(
                "retrieval request has no targets".into(),
            ));
        }
        request
            .targets()
            .iter()
            .map(|t| self.resolve_target(t))
            .collect()
    }

    fn resolve_target(&self, target: &RequestTarget) -> Result<QoiSpec> {
        let mut spec = match target.mode {
            ToleranceMode::Relative => self.spec(&target.name, target.tolerance)?,
            ToleranceMode::Absolute => {
                let expr = self.qoi_expr(&target.name).ok_or_else(|| {
                    PqrError::InvalidRequest(format!("unknown QoI '{}'", target.name))
                })?;
                QoiSpec::absolute(&target.name, expr.clone(), target.tolerance)
            }
        };
        if let Some((lo, hi)) = target.region {
            spec = spec.restrict_to(lo, hi);
        }
        Ok(spec)
    }

    /// Requests a registered QoI with the tolerance restricted to the
    /// half-open linearized index range `lo..hi` (region of interest).
    /// Points outside the region carry no error constraint, which typically
    /// retrieves far fewer fragments than a whole-domain request.
    pub fn request_region(
        &mut self,
        name: &str,
        tol_rel: f64,
        lo: usize,
        hi: usize,
    ) -> Result<RetrievalReport> {
        let spec = self.spec(name, tol_rel)?.restrict_to(lo, hi);
        self.engine.retrieve(&[spec])
    }

    /// Requests several QoIs at once (`(name, tol_rel)` pairs) and returns
    /// the aggregate legacy report. Sugar over the plan path — use
    /// [`Session::execute`] with a [`RetrievalRequest`] for the per-target
    /// report, absolute tolerances, regions, or a byte budget.
    pub fn request_many(&mut self, requests: &[(&str, f64)]) -> Result<RetrievalReport> {
        let specs = requests
            .iter()
            .map(|(n, t)| self.spec(n, *t))
            .collect::<Result<Vec<_>>>()?;
        self.engine.retrieve(&specs)
    }

    /// Current reconstruction of a field, by name.
    pub fn reconstruction(&self, field_name: &str) -> Result<&[f64]> {
        let i = self
            .engine
            .manifest()
            .field_index(field_name)
            .ok_or_else(|| PqrError::InvalidRequest(format!("unknown field '{field_name}'")))?;
        Ok(self.engine.reconstruction(i))
    }

    /// Resolution-progressive view of a field from the bytes already
    /// fetched: drops the `drop_finest` finest multilevel levels and returns
    /// `(coarse_data, coarse_dims)` — the subgrid of stride `2^drop_finest`.
    /// Available on the PMGARD representations only (the paper's §II
    /// "progression in both categories").
    pub fn reconstruction_at_resolution(
        &self,
        field_name: &str,
        drop_finest: usize,
    ) -> Result<(Vec<f64>, Vec<usize>)> {
        let i = self
            .engine
            .manifest()
            .field_index(field_name)
            .ok_or_else(|| PqrError::InvalidRequest(format!("unknown field '{field_name}'")))?;
        self.engine.reconstruction_at_resolution(i, drop_finest)
    }

    /// Derived values of a registered QoI on the current reconstruction.
    pub fn qoi_values(&self, name: &str) -> Result<Vec<f64>> {
        let expr = self
            .qoi_expr(name)
            .ok_or_else(|| PqrError::InvalidRequest(format!("unknown QoI '{name}'")))?;
        Ok(self.engine.qoi_values(expr))
    }

    /// Cumulative fetched bytes.
    pub fn total_fetched(&self) -> usize {
        self.engine.total_fetched()
    }

    /// Achieved primary-data bound of a field, by name.
    pub fn field_bound(&self, field_name: &str) -> Result<f64> {
        let i = self
            .engine
            .manifest()
            .field_index(field_name)
            .ok_or_else(|| PqrError::InvalidRequest(format!("unknown field '{field_name}'")))?;
        Ok(self.engine.field_bound(i))
    }

    /// Access to the underlying engine for advanced use.
    pub fn engine(&mut self) -> &mut RetrievalEngine {
        &mut self.engine
    }

    /// Payload fragments this session's own readers fetched and decoded.
    /// Sessions on a [`DatasetService`] report zero — their decodes happen
    /// once, in the shared store.
    pub fn fragments_decoded(&self) -> u64 {
        self.engine.fragments_decoded()
    }

    /// Serializes the session's retrieval progress — restore against the
    /// same archive with [`Archive::resume_session`] to continue fetching
    /// incrementally after a process restart.
    pub fn save_progress(&self) -> Vec<u8> {
        self.engine.save_progress()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqr_qoi::library::velocity_magnitude;

    fn build() -> Archive {
        let n = 600;
        let vx: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.02).sin() * 30.0 + 50.0)
            .collect();
        let vy: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).cos() * 15.0).collect();
        ArchiveBuilder::new(&[n])
            .field("Vx", vx)
            .field("Vy", vy)
            .qoi("V", velocity_magnitude(0, 2))
            .qoi("Vx2", QoiExpr::var(0).pow(2))
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_query_metadata() {
        let archive = build();
        assert_eq!(archive.qoi_names(), vec!["V", "Vx2"]);
        assert!(archive.qoi_range("V").unwrap() > 0.0);
        assert!(archive.qoi_expr("Vx2").is_some());
        assert!(archive.qoi_range("nope").is_none());
    }

    #[test]
    fn session_requests_and_reads() {
        let archive = build();
        let mut s = archive.session().unwrap();
        let r = s.request("V", 1e-3).unwrap();
        assert!(r.satisfied);
        assert_eq!(s.reconstruction("Vx").unwrap().len(), 600);
        assert_eq!(s.qoi_values("V").unwrap().len(), 600);
        assert!(s.field_bound("Vy").unwrap().is_finite());
        assert!(s.total_fetched() > 0);
    }

    #[test]
    fn request_many_and_incremental() {
        let archive = build();
        let mut s = archive.session().unwrap();
        let r1 = s.request_many(&[("V", 1e-2), ("Vx2", 1e-2)]).unwrap();
        assert!(r1.satisfied);
        let t1 = s.total_fetched();
        let r2 = s.request("V", 1e-5).unwrap();
        assert!(r2.satisfied);
        assert!(s.total_fetched() >= t1);
    }

    #[test]
    fn sessions_survive_process_restarts() {
        // archive persists to disk; a session saves its progress; a "new
        // process" restores both and continues incrementally
        let archive = build();
        let archive_bytes = archive.to_bytes();
        let progress = {
            let mut s = archive.session().unwrap();
            s.request("V", 1e-2).unwrap();
            s.save_progress()
        };

        let restored = Archive::from_bytes(&archive_bytes).unwrap();
        let mut resumed = restored.resume_session(&progress).unwrap();
        let fetched_at_resume = resumed.total_fetched();
        assert!(fetched_at_resume > 0);
        let r = resumed.request("V", 1e-6).unwrap();
        assert!(r.satisfied);
        // only the increment was newly fetched
        assert_eq!(r.total_fetched, resumed.total_fetched());
        assert!(r.bytes_fetched < r.total_fetched);

        // equivalent to a never-interrupted session
        let mut uninterrupted = restored.session().unwrap();
        uninterrupted.request("V", 1e-2).unwrap();
        uninterrupted.request("V", 1e-6).unwrap();
        assert_eq!(uninterrupted.total_fetched(), resumed.total_fetched());
        assert_eq!(
            uninterrupted.reconstruction("Vx").unwrap(),
            resumed.reconstruction("Vx").unwrap()
        );
    }

    #[test]
    fn region_requests_through_the_facade() {
        let archive = build();
        let mut s = archive.session().unwrap();
        let r = s.request_region("V", 1e-6, 100, 160).unwrap();
        assert!(r.satisfied);
        let regional_bytes = s.total_fetched();
        // following up with the global request costs extra bytes
        let g = s.request("V", 1e-6).unwrap();
        assert!(g.satisfied);
        assert!(s.total_fetched() >= regional_bytes);
        // invalid regions error
        assert!(s.request_region("V", 1e-3, 500, 700).is_err());
    }

    #[test]
    fn resolution_progression_through_the_facade() {
        let archive = build(); // PMGARD-HB default scheme
        let mut s = archive.session().unwrap();
        s.request("V", 1e-6).unwrap();
        let full = s.reconstruction("Vx").unwrap().to_vec();
        let (coarse, dims) = s.reconstruction_at_resolution("Vx", 2).unwrap();
        assert_eq!(dims, vec![150]); // 600 / 2^2
        assert_eq!(coarse.len(), 150);
        // coarse samples sit close to the full reconstruction on the subgrid
        for (k, &c) in coarse.iter().enumerate() {
            let f = full[k * 4];
            assert!((c - f).abs() < 3.0, "k={k}: coarse {c} vs full {f}");
        }
        // unknown field errors
        assert!(s.reconstruction_at_resolution("nope", 1).is_err());
    }

    #[test]
    fn resolution_progression_unsupported_for_snapshots() {
        let n = 200;
        let archive = ArchiveBuilder::new(&[n])
            .field("u", (0..n).map(|i| i as f64).collect())
            .qoi("u2", QoiExpr::var(0).pow(2))
            .scheme(Scheme::Psz3)
            .build()
            .unwrap();
        let mut s = archive.session().unwrap();
        s.request("u2", 1e-3).unwrap();
        assert!(matches!(
            s.reconstruction_at_resolution("u", 1),
            Err(PqrError::Unsupported(_))
        ));
    }

    #[test]
    fn unknown_names_are_errors() {
        let archive = build();
        let mut s = archive.session().unwrap();
        assert!(s.request("missing", 1e-3).is_err());
        assert!(s.reconstruction("missing").is_err());
        assert!(s.qoi_values("missing").is_err());
        assert!(s.field_bound("missing").is_err());
    }

    #[test]
    fn builder_mask_unknown_field_is_error() {
        let r = ArchiveBuilder::new(&[4])
            .field("a", vec![0.0; 4])
            .mask(&["nope"])
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn archive_serialization_carries_qoi_registry() {
        let archive = build();
        let bytes = archive.to_bytes();
        let restored = Archive::from_bytes(&bytes).unwrap();
        assert_eq!(restored.qoi_names(), archive.qoi_names());
        assert_eq!(restored.qoi_range("V"), archive.qoi_range("V"));
        assert_eq!(
            restored.qoi_expr("Vx2").unwrap(),
            archive.qoi_expr("Vx2").unwrap()
        );
        // restored archive retrieves identically
        let mut s1 = archive.session().unwrap();
        let mut s2 = restored.session().unwrap();
        let r1 = s1.request("V", 1e-4).unwrap();
        let r2 = s2.request("V", 1e-4).unwrap();
        assert_eq!(r1.total_fetched, r2.total_fetched);
        assert_eq!(
            s1.reconstruction("Vx").unwrap(),
            s2.reconstruction("Vx").unwrap()
        );
        // corruption detected
        assert!(Archive::from_bytes(&bytes[..40]).is_err());
    }

    #[test]
    fn f32_fields_retrieve_with_full_guarantee() {
        let n = 500;
        let data32: Vec<f32> = (0..n)
            .map(|i| (i as f32 * 0.02).sin() * 12.0 + 20.0)
            .collect();
        let archive = ArchiveBuilder::new(&[n])
            .field_f32("u", &data32)
            .qoi("u2", QoiExpr::var(0).pow(2))
            .build()
            .unwrap();
        let mut s = archive.session().unwrap();
        let r = s.request("u2", 1e-6).unwrap();
        assert!(r.satisfied);
        // the guarantee holds against the exact widened values
        let truth: Vec<f64> = data32.iter().map(|&v| f64::from(v).powi(2)).collect();
        let derived = s.qoi_values("u2").unwrap();
        let worst = truth
            .iter()
            .zip(&derived)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst <= r.max_est_errors[0]);
    }

    #[test]
    fn lazy_open_matches_resident_and_reads_partially() {
        let archive = build();
        let dir = std::env::temp_dir().join("pqr_core_lazy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("archive.pqrx");
        archive.save(&path).unwrap();
        let file_len = std::fs::metadata(&path).unwrap().len();

        let lazy = Archive::open(&path).unwrap();
        assert_eq!(lazy.qoi_names(), archive.qoi_names());
        assert_eq!(lazy.qoi_range("V"), archive.qoi_range("V"));
        let manifest = lazy.manifest().unwrap();
        assert_eq!(manifest.num_fields(), 2);

        // a loose request through the lazy archive behaves identically to
        // the resident one...
        let mut ls = lazy.session().unwrap();
        let mut rs = archive.session().unwrap();
        let lr = ls.request("V", 1e-2).unwrap();
        let rr = rs.request("V", 1e-2).unwrap();
        assert!(lr.satisfied && rr.satisfied);
        assert_eq!(lr.total_fetched, rr.total_fetched);
        assert_eq!(
            ls.reconstruction("Vx").unwrap(),
            rs.reconstruction("Vx").unwrap()
        );

        // ...while reading strictly fewer disk bytes than the archive holds
        let stats = lazy.source_stats();
        assert!(stats.fetches > 0);
        assert!(
            stats.fetched_bytes < file_len,
            "lazy session read {} of {} file bytes",
            stats.fetched_bytes,
            file_len
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "lazily opened archive")]
    fn refactored_panics_on_lazy_archives() {
        let archive = build();
        let dir = std::env::temp_dir().join("pqr_core_lazy_panic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("archive.pqrx");
        archive.save(&path).unwrap();
        let lazy = Archive::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let _ = lazy.refactored();
    }

    #[test]
    fn execute_multi_target_certifies_each_and_saves_shared_bytes() {
        let archive = build();
        let mut s = archive.session().unwrap();
        let request = RetrievalRequest::new().qoi("V", 1e-3).qoi("Vx2", 1e-4);
        let plan = s.plan(&request).unwrap();
        // both targets read Vx (field 0); V also reads Vy
        assert_eq!(plan.shared_fields(), vec![0]);
        assert!(!plan.schedule().is_empty());
        assert!(plan.scheduled_bytes() > 0);

        let report = s.execute(&request).unwrap();
        assert!(report.satisfied);
        assert_eq!(report.targets.len(), 2);
        for t in &report.targets {
            assert!(t.satisfied);
            assert!(t.max_est_error <= t.tol_abs);
            assert!(t.bytes > 0);
        }
        assert_eq!(report.targets[0].name, "V");
        assert_eq!(report.targets[1].fields, vec![0]);
        // the shared field's bytes are attributed to both targets but
        // fetched once
        assert!(report.shared_bytes_saved > 0);
        assert!(!report.budget_exhausted);
        // aggregate view matches the legacy report shape
        let legacy = report.as_legacy();
        assert_eq!(legacy.total_fetched, s.total_fetched());
        assert_eq!(legacy.max_est_errors.len(), 2);
    }

    #[test]
    fn execute_matches_legacy_single_target_request() {
        let archive = build();
        let mut a = archive.session().unwrap();
        let mut b = archive.session().unwrap();
        let legacy = a.request("V", 1e-4).unwrap();
        let plan = b.execute(&RetrievalRequest::new().qoi("V", 1e-4)).unwrap();
        assert_eq!(legacy.satisfied, plan.satisfied);
        assert_eq!(legacy.total_fetched, plan.total_fetched);
        assert_eq!(legacy.max_est_errors[0], plan.targets[0].max_est_error);
        assert_eq!(
            a.reconstruction("Vx").unwrap(),
            b.reconstruction("Vx").unwrap()
        );
    }

    #[test]
    fn execute_absolute_and_region_targets() {
        let archive = build();
        let mut s = archive.session().unwrap();
        let report = s
            .execute(
                &RetrievalRequest::new()
                    .qoi_abs("Vx2", 50.0)
                    .qoi("V", 1e-5)
                    .region(100, 200),
            )
            .unwrap();
        assert!(report.satisfied);
        assert!(report.targets[0].max_est_error <= 50.0);
    }

    #[test]
    fn byte_budget_stops_execution_short() {
        let archive = build();
        // a budget of 1 byte: round 1 runs, then execution must stop with
        // the (tight) tolerance unmet rather than refining to completion
        let mut s = archive.session().unwrap();
        let unbounded = s.execute(&RetrievalRequest::new().qoi("V", 1e-9)).unwrap();
        let mut s2 = archive.session().unwrap();
        let capped = s2
            .execute(&RetrievalRequest::new().qoi("V", 1e-9).byte_budget(1))
            .unwrap();
        if unbounded.iterations > 1 {
            assert!(capped.budget_exhausted);
            assert!(!capped.satisfied);
            assert!(capped.total_fetched < unbounded.total_fetched);
        }
    }

    #[test]
    fn empty_and_unknown_requests_are_errors() {
        let archive = build();
        let mut s = archive.session().unwrap();
        assert!(s.execute(&RetrievalRequest::new()).is_err());
        assert!(s
            .execute(&RetrievalRequest::new().qoi("missing", 1e-3))
            .is_err());
        assert!(s
            .execute(&RetrievalRequest::new().qoi_abs("missing", 1.0))
            .is_err());
        // bad region surfaces at plan time
        assert!(s
            .plan(&RetrievalRequest::new().qoi("V", 1e-3).region(500, 700))
            .is_err());
    }

    #[test]
    fn builder_bad_field_shape_is_swallowed_until_build() {
        // mis-shaped fields are dropped by the builder chain; the dataset
        // simply doesn't contain them
        let archive = ArchiveBuilder::new(&[4])
            .field("good", vec![1.0; 4])
            .field("bad", vec![1.0; 5])
            .build()
            .unwrap();
        assert_eq!(archive.refactored().num_fields(), 1);
    }
}
