//! Property-based tests of the end-to-end retrieval guarantee: random
//! multi-field data, random scheme, random tolerance — when the engine
//! reports `satisfied`, the actual QoI error is within the estimate and the
//! estimate is within the tolerance.

use pqr_progressive::engine::{EngineConfig, QoiSpec, RetrievalEngine};
use pqr_progressive::field::Dataset;
use pqr_progressive::refactored::Scheme;
use pqr_qoi::library::{species_product, velocity_magnitude};
use pqr_qoi::QoiExpr;
use pqr_util::stats;
use proptest::prelude::*;

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Psz3),
        Just(Scheme::Psz3Delta),
        Just(Scheme::PmgardHb),
        Just(Scheme::PmgardOb),
        Just(Scheme::Pzfp),
    ]
}

fn make_dataset(n: usize, seed: u64, offset: f64) -> Dataset {
    let mut ds = Dataset::new(&[n]);
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    for name in ["a", "b", "c"] {
        let field: Vec<f64> = (0..n)
            .map(|i| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s as f64 / u64::MAX as f64 - 0.5) * 4.0 + ((i as f64) * 0.07).sin() * 10.0 + offset
            })
            .collect();
        ds.add_field(name, field).unwrap();
    }
    ds
}

fn arb_qoi() -> impl Strategy<Value = QoiExpr> {
    prop_oneof![
        Just(velocity_magnitude(0, 3)),
        Just(species_product(0, 1)),
        Just(QoiExpr::var(2).pow(2)),
        Just(
            QoiExpr::var(0)
                .pow(2)
                .add(QoiExpr::var(1).mul(QoiExpr::var(2)))
        ),
        Just(QoiExpr::var(0).abs().add(QoiExpr::var(1).abs())),
    ]
}

/// Fully random derivable-QoI trees over 3 variables. Leaves are variables
/// or small constants; inner nodes draw from the whole Table II basis plus
/// the ln/exp extension. Trees that turn out unboundable on the data (e.g. a
/// division straddling zero) are filtered at the call site via
/// `prop_assume!(report.satisfied)` — the guarantee property only concerns
/// retrievals the engine claims to have satisfied.
fn arb_random_tree() -> impl Strategy<Value = QoiExpr> {
    let leaf = prop_oneof![
        (0usize..3).prop_map(QoiExpr::var),
        (0.5f64..3.0).prop_map(QoiExpr::constant),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), 2u32..4).prop_map(|(e, n)| e.pow(n)),
            inner.clone().prop_map(|e| e.pow(2).sqrt()),
            inner.clone().prop_map(QoiExpr::abs),
            // exp of a damped argument keeps values finite
            inner.clone().prop_map(|e| e.scale(0.01).exp()),
            // ln of 20 + |e|·small stays away from the pole
            inner
                .clone()
                .prop_map(|e| (QoiExpr::constant(20.0) + e.abs().scale(0.1)).ln()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| a / (QoiExpr::constant(25.0) + b.abs())),
            (inner, -3.0f64..3.0).prop_map(|(e, a)| e.scale(a)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn satisfied_retrieval_honours_the_guarantee(
        n in 64usize..400,
        seed in 0u64..1000,
        scheme in arb_scheme(),
        qoi in arb_qoi(),
        tol_exp in -6..-1i32,
    ) {
        // offset 20 keeps VTOT away from the √ blow-up without a mask
        let ds = make_dataset(n, seed, 20.0);
        let ladder: Vec<f64> = (1..=10).map(|i| 10f64.powi(-i)).collect();
        let archive = ds.refactor_with_bounds(scheme, &ladder).unwrap();
        let tol = 10f64.powi(tol_exp);
        let spec = QoiSpec::relative("q", qoi.clone(), tol, &ds).unwrap();
        let tol_abs = spec.tol_abs();
        prop_assume!(tol_abs > 0.0);

        let mut engine = RetrievalEngine::new(&archive, EngineConfig::default()).unwrap();
        let report = engine.retrieve(&[spec]).unwrap();
        prop_assume!(report.satisfied); // unsatisfiable = representation floor

        let truth = ds.qoi_values(&qoi);
        let derived = engine.qoi_values(&qoi);
        let actual = stats::max_abs_diff(&truth, &derived);
        prop_assert!(
            actual <= report.max_est_errors[0],
            "actual {actual} > estimated {}",
            report.max_est_errors[0]
        );
        prop_assert!(
            report.max_est_errors[0] <= tol_abs,
            "estimated {} > tolerance {tol_abs}",
            report.max_est_errors[0]
        );
    }

    #[test]
    fn random_qoi_trees_honour_the_guarantee(
        n in 64usize..256,
        seed in 0u64..1000,
        qoi in arb_random_tree(),
        tol_exp in -5..-1i32,
    ) {
        let ds = make_dataset(n, seed, 20.0);
        prop_assume!(qoi.arity() <= 3);
        // reject trees that are non-finite on the true data
        let truth = ds.qoi_values(&qoi);
        prop_assume!(truth.iter().all(|v| v.is_finite()));
        let range = truth.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - truth.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(range.is_finite() && range > 1e-9);

        let archive = ds.refactor(Scheme::PmgardHb).unwrap();
        let tol = 10f64.powi(tol_exp);
        let spec = QoiSpec::with_range("rand", qoi.clone(), tol, range);
        let tol_abs = spec.tol_abs();
        let mut engine = RetrievalEngine::new(&archive, EngineConfig::default()).unwrap();
        let report = engine.retrieve(&[spec]).unwrap();
        prop_assume!(report.satisfied);

        let derived = engine.qoi_values(&qoi);
        let actual = stats::max_abs_diff(&truth, &derived);
        prop_assert!(
            actual <= report.max_est_errors[0],
            "qoi {qoi}: actual {actual} > estimated {}",
            report.max_est_errors[0]
        );
        prop_assert!(report.max_est_errors[0] <= tol_abs);
    }

    #[test]
    fn interval_estimator_honours_the_guarantee(
        n in 64usize..256,
        seed in 0u64..1000,
        scheme in arb_scheme(),
        qoi in arb_qoi(),
        tol_exp in -5..-1i32,
    ) {
        // same contract as the theorem estimator, generic machinery
        let ds = make_dataset(n, seed, 20.0);
        let ladder: Vec<f64> = (1..=10).map(|i| 10f64.powi(-i)).collect();
        let archive = ds.refactor_with_bounds(scheme, &ladder).unwrap();
        let tol = 10f64.powi(tol_exp);
        let spec = QoiSpec::relative("q", qoi.clone(), tol, &ds).unwrap();
        let tol_abs = spec.tol_abs();
        prop_assume!(tol_abs > 0.0);

        let cfg = EngineConfig {
            bound_config: pqr_qoi::BoundConfig {
                estimator: pqr_qoi::Estimator::Interval,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut engine = RetrievalEngine::new(&archive, cfg).unwrap();
        let report = engine.retrieve(&[spec]).unwrap();
        prop_assume!(report.satisfied);

        let truth = ds.qoi_values(&qoi);
        let derived = engine.qoi_values(&qoi);
        let actual = stats::max_abs_diff(&truth, &derived);
        prop_assert!(
            actual <= report.max_est_errors[0],
            "interval: actual {actual} > estimated {}",
            report.max_est_errors[0]
        );
        prop_assert!(report.max_est_errors[0] <= tol_abs);
    }

    #[test]
    fn primary_data_bound_always_honoured(
        n in 32usize..300,
        seed in 0u64..1000,
        scheme in arb_scheme(),
        rel_exp in -7..-1i32,
    ) {
        let ds = make_dataset(n, seed, 0.0);
        let ladder: Vec<f64> = (1..=10).map(|i| 10f64.powi(-i)).collect();
        let archive = ds.refactor_with_bounds(scheme, &ladder).unwrap();
        for f in 0..3 {
            let field = archive.field(f);
            let mut reader = field.reader();
            reader.refine_to(10f64.powi(rel_exp) * field.value_range()).unwrap();
            let real = stats::max_abs_diff(ds.field(f), reader.data());
            prop_assert!(
                real <= reader.guaranteed_bound(),
                "field {f}: real {real} > bound {}",
                reader.guaranteed_bound()
            );
        }
    }

    #[test]
    fn resume_is_transparent_at_any_save_point(
        n in 64usize..300,
        seed in 0u64..500,
        scheme in arb_scheme(),
        save_tol_exp in -4..-1i32,
        final_tol_exp in -7..-4i32,
    ) {
        // save after an arbitrary first request, resume, finish: the
        // resumed engine must be indistinguishable from one that never
        // stopped — same bytes, same reconstructions
        let ds = make_dataset(n, seed, 20.0);
        let ladder: Vec<f64> = (1..=10).map(|i| 10f64.powi(-i)).collect();
        let archive = ds.refactor_with_bounds(scheme, &ladder).unwrap();
        let qoi = velocity_magnitude(0, 3);
        let range = ds.qoi_range(&qoi).unwrap();
        let first = QoiSpec::with_range("v", qoi.clone(), 10f64.powi(save_tol_exp), range);
        let last = QoiSpec::with_range("v", qoi.clone(), 10f64.powi(final_tol_exp), range);

        let mut straight = RetrievalEngine::new(&archive, EngineConfig::default()).unwrap();
        straight.retrieve(std::slice::from_ref(&first)).unwrap();
        let blob = straight.save_progress();
        straight.retrieve(std::slice::from_ref(&last)).unwrap();

        let mut resumed =
            RetrievalEngine::resume(&archive, EngineConfig::default(), &blob).unwrap();
        resumed.retrieve(std::slice::from_ref(&last)).unwrap();

        prop_assert_eq!(straight.total_fetched(), resumed.total_fetched());
        for i in 0..3 {
            prop_assert_eq!(straight.reconstruction(i), resumed.reconstruction(i));
        }
    }

    #[test]
    fn hostile_archive_bytes_never_panic(
        junk in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        use pqr_progressive::refactored::RefactoredField;
        use pqr_progressive::field::RefactoredDataset;
        let _ = RefactoredField::from_bytes(&junk);
        let _ = RefactoredDataset::from_bytes(&junk);
        // junk behind valid magic digs deeper into each parser
        for magic in [&b"PQRF"[..], &b"PQRD"[..]] {
            let mut prefixed = magic.to_vec();
            prefixed.extend_from_slice(&junk);
            let _ = RefactoredField::from_bytes(&prefixed);
            let _ = RefactoredDataset::from_bytes(&prefixed);
        }
    }

    #[test]
    fn truncated_real_archives_error_cleanly(
        n in 50usize..200,
        seed in 0u64..100,
        scheme in arb_scheme(),
        cut_frac in 0.01f64..0.99,
    ) {
        // a *real* archive truncated anywhere must return Err, never panic
        // and never silently succeed with wrong content
        let ds = make_dataset(n, seed, 5.0);
        let ladder = vec![1e-1, 1e-3];
        let archive = ds.refactor_with_bounds(scheme, &ladder).unwrap();
        let bytes = archive.field(0).to_bytes();
        let cut = ((bytes.len() as f64 * cut_frac) as usize).min(bytes.len() - 1);
        let result = pqr_progressive::refactored::RefactoredField::from_bytes(&bytes[..cut]);
        prop_assert!(result.is_err(), "{}: truncation at {cut} accepted", scheme.name());
    }

    #[test]
    fn cumulative_bytes_monotone_under_any_request_sequence(
        n in 64usize..300,
        seed in 0u64..1000,
        scheme in arb_scheme(),
        // arbitrary (possibly non-monotone) tolerance walk
        tols in proptest::collection::vec(-6..-1i32, 1..6),
    ) {
        let ds = make_dataset(n, seed, 20.0);
        let ladder: Vec<f64> = (1..=10).map(|i| 10f64.powi(-i)).collect();
        let archive = ds.refactor_with_bounds(scheme, &ladder).unwrap();
        let mut engine = RetrievalEngine::new(&archive, EngineConfig::default()).unwrap();
        let qoi = velocity_magnitude(0, 3);
        let range = ds.qoi_range(&qoi).unwrap();
        let mut last = 0usize;
        for t in tols {
            let spec = QoiSpec::with_range("v", qoi.clone(), 10f64.powi(t), range);
            let report = engine.retrieve(&[spec]).unwrap();
            prop_assert!(report.total_fetched >= last, "bytes shrank");
            last = report.total_fetched;
        }
    }
}
