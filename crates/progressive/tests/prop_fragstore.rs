//! Property tests of the fragment-addressed storage layer: for random
//! fields, schemes and tolerances, retrieval must be **backend-invariant**
//! — the resident dataset, a serialized in-memory archive, and a
//! file-backed source read by byte ranges all produce byte-identical
//! reconstructions with identical fetch accounting, and a suspended
//! session resumes identically across backends.

use pqr_progressive::engine::{EngineConfig, QoiSpec, RetrievalEngine};
use pqr_progressive::field::Dataset;
use pqr_progressive::fragstore::{FileSource, FragmentSource, InMemorySource};
use pqr_progressive::refactored::{ReaderProgress, Scheme};
use pqr_qoi::library::velocity_magnitude;
use pqr_qoi::QoiExpr;
use proptest::prelude::*;

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Psz3),
        Just(Scheme::Psz3Delta),
        Just(Scheme::PmgardHb),
        Just(Scheme::PmgardOb),
        Just(Scheme::Pzfp),
    ]
}

fn arb_qoi() -> impl Strategy<Value = QoiExpr> {
    prop_oneof![
        Just(velocity_magnitude(0, 2)),
        Just(QoiExpr::var(0).pow(2)),
        Just(QoiExpr::var(0).mul(QoiExpr::var(1))),
        Just(QoiExpr::var(1).abs()),
    ]
}

fn make_dataset(n: usize, seed: u64) -> Dataset {
    let mut ds = Dataset::new(&[n]);
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    for name in ["a", "b"] {
        let field: Vec<f64> = (0..n)
            .map(|i| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s as f64 / u64::MAX as f64 - 0.5) * 3.0 + ((i as f64) * 0.11).sin() * 8.0 + 15.0
            })
            .collect();
        ds.add_field(name, field).unwrap();
    }
    ds
}

/// Writes `bytes` to a unique temp file and returns its path.
fn temp_archive(bytes: &[u8], tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pqr_prop_fragstore");
    std::fs::create_dir_all(&dir).unwrap();
    let unique = format!(
        "{tag}_{}_{}.pqrx",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    );
    let path = dir.join(unique);
    std::fs::write(&path, bytes).unwrap();
    path
}

/// Runs a retrieval through `source` and returns
/// (per-field reconstructions, per-field bounds, total fetched bytes).
fn retrieve_via(
    source: std::sync::Arc<dyn FragmentSource>,
    spec: &QoiSpec,
) -> (Vec<Vec<f64>>, Vec<f64>, usize) {
    let mut engine = RetrievalEngine::from_source(source, EngineConfig::default()).unwrap();
    engine.retrieve(std::slice::from_ref(spec)).unwrap();
    let nv = engine.manifest().num_fields();
    let recons = (0..nv).map(|i| engine.reconstruction(i).to_vec()).collect();
    let bounds = (0..nv).map(|i| engine.field_bound(i)).collect();
    (recons, bounds, engine.total_fetched())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property of the storage refactor: all three backends
    /// drive the one engine code path to bit-identical results.
    #[test]
    fn backends_agree_bit_for_bit(
        n in 96usize..512,
        seed in 0u64..1000,
        scheme in arb_scheme(),
        qoi in arb_qoi(),
        tol_exp in -6..-1i32,
    ) {
        let ds = make_dataset(n, seed);
        let ladder: Vec<f64> = (1..=8).map(|i| 10f64.powi(-i)).collect();
        let archive = ds.refactor_with_bounds(scheme, &ladder).unwrap();
        let range = ds.qoi_range(&qoi).unwrap();
        prop_assume!(range.is_finite() && range > 0.0);
        let spec = QoiSpec::with_range("q", qoi, 10f64.powi(tol_exp), range);

        let bytes = archive.to_bytes();
        let mem = std::sync::Arc::new(InMemorySource::new(bytes.clone()).unwrap());
        let path = temp_archive(&bytes, scheme.name());
        let file = std::sync::Arc::new(FileSource::open(&path).unwrap());

        let (recon_a, bounds_a, fetched_a) =
            retrieve_via(std::sync::Arc::new(archive.clone()), &spec);
        let (recon_b, bounds_b, fetched_b) = retrieve_via(mem, &spec);
        let (recon_c, bounds_c, fetched_c) = retrieve_via(file.clone(), &spec);
        std::fs::remove_file(&path).ok();

        // byte-identical reconstructions (bit patterns, not approx)
        for (i, (a, b)) in recon_a.iter().zip(&recon_b).enumerate() {
            prop_assert!(a == b, "{}: field {i} resident != in-memory", scheme.name());
        }
        for (i, (a, c)) in recon_a.iter().zip(&recon_c).enumerate() {
            prop_assert!(a == c, "{}: field {i} resident != file-backed", scheme.name());
        }
        prop_assert_eq!(&bounds_a, &bounds_b);
        prop_assert_eq!(&bounds_a, &bounds_c);
        prop_assert_eq!(fetched_a, fetched_b);
        prop_assert_eq!(fetched_a, fetched_c);

        // partial in actual bytes read: the file source touched fewer
        // bytes than the archive holds whenever the request was partial
        let disk = file.disk_bytes_read();
        prop_assert!(
            disk <= bytes.len() as u64,
            "{}: read {disk} of a {}-byte archive",
            scheme.name(),
            bytes.len()
        );
    }

    /// Suspend/resume across a process boundary and across backends:
    /// progress saved against one backend restores against another, and
    /// `ReaderProgress` round-trips through its wire form.
    #[test]
    fn progress_roundtrips_across_suspend_resume(
        n in 96usize..384,
        seed in 0u64..1000,
        scheme in arb_scheme(),
        tol_exp in -5..-1i32,
    ) {
        let ds = make_dataset(n, seed);
        let ladder: Vec<f64> = (1..=8).map(|i| 10f64.powi(-i)).collect();
        let archive = ds.refactor_with_bounds(scheme, &ladder).unwrap();
        let qoi = QoiExpr::var(0).pow(2);
        let range = ds.qoi_range(&qoi).unwrap();
        prop_assume!(range.is_finite() && range > 0.0);
        let loose = QoiSpec::with_range("q", qoi.clone(), 10f64.powi(tol_exp), range);
        let tight = QoiSpec::with_range("q", qoi, 10f64.powi(tol_exp - 2), range);

        // session 1 runs against the resident archive, then suspends
        let mut e1 = RetrievalEngine::new(&archive, EngineConfig::default()).unwrap();
        e1.retrieve(std::slice::from_ref(&loose)).unwrap();
        let blob = e1.save_progress();

        // per-reader markers round-trip through their wire form
        for i in 0..2 {
            let p = e1.reader_progress(i);
            let back = ReaderProgress::from_bytes(&p.to_bytes()).unwrap();
            prop_assert_eq!(&p, &back, "{}: reader {i} marker drifted", scheme.name());
        }

        // session 2 resumes *against the file-backed source*
        let bytes = archive.to_bytes();
        let path = temp_archive(&bytes, "resume");
        let file = std::sync::Arc::new(FileSource::open(&path).unwrap());
        let mut e2 =
            RetrievalEngine::resume_from_source(file, EngineConfig::default(), &blob).unwrap();
        prop_assert_eq!(e1.total_fetched(), e2.total_fetched());
        for i in 0..2 {
            prop_assert!(
                e1.reconstruction(i) == e2.reconstruction(i),
                "{}: field {i} diverged across suspend/resume",
                scheme.name()
            );
        }

        // both continue to a tighter tolerance identically
        let r1 = e1.retrieve(std::slice::from_ref(&tight)).unwrap();
        let r2 = e2.retrieve(std::slice::from_ref(&tight)).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(r1.satisfied, r2.satisfied);
        prop_assert_eq!(r1.total_fetched, r2.total_fetched);
        for i in 0..2 {
            prop_assert!(e1.reconstruction(i) == e2.reconstruction(i));
        }
    }
}
