//! Property tests of the parallel encode path: for random fields, schemes
//! and ladders, every (workers, overlap) refactor schedule must be
//! **byte-identical** to the serial reference — archives are
//! content-addressed in practice, so the write path may only change
//! wall-clock, never bytes — and the word-parallel kernels must match
//! their scalar oracles digit for digit.

use pqr_mgard::{Basis, MgardRefactorer};
use pqr_progressive::field::Dataset;
use pqr_progressive::refactored::Scheme;
use pqr_zfp::ZfpRefactorer;
use proptest::prelude::*;

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Psz3),
        Just(Scheme::Psz3Delta),
        Just(Scheme::PmgardHb),
        Just(Scheme::PmgardOb),
        Just(Scheme::Pzfp),
    ]
}

fn make_dataset(n: usize, seed: u64) -> Dataset {
    let mut ds = Dataset::new(&[n]);
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    for name in ["a", "b", "c"] {
        let field: Vec<f64> = (0..n)
            .map(|i| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s as f64 / u64::MAX as f64 - 0.5) * 3.0 + ((i as f64) * 0.13).sin() * 6.0 + 11.0
            })
            .collect();
        ds.add_field(name, field).unwrap();
    }
    ds
}

fn unique_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pqr_prop_encode");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}_{}_{}.pqrx",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance property of the parallel write path: resident
    /// refactors at any worker count and streamed archives under every
    /// (workers, overlap) schedule are byte-identical to the serial
    /// reference.
    #[test]
    fn prop_encode_equivalence(
        n in 96usize..400,
        seed in 0u64..1000,
        scheme in arb_scheme(),
    ) {
        let ds = make_dataset(n, seed);
        let bounds = [1e-1, 1e-3, 1e-5];

        // resident path: 8 workers ≡ 1 worker, field by field
        let serial = ds.refactor_with_workers(scheme, &bounds, 1).unwrap();
        let parallel = ds.refactor_with_workers(scheme, &bounds, 8).unwrap();
        for i in 0..ds.num_fields() {
            prop_assert_eq!(
                serial.field(i).to_bytes(),
                parallel.field(i).to_bytes(),
                "{} field {} differs at 8 workers", scheme.name(), i
            );
        }

        // streamed path: every schedule writes the same file
        let mut reference: Option<Vec<u8>> = None;
        for (workers, overlap) in [(1, false), (1, true), (8, false), (8, true)] {
            let path = unique_path(&format!("{}_{workers}_{overlap}", scheme.name()));
            ds.refactor_to_path(scheme, &bounds, Some(&[0, 1]), b"pe", &path, workers, overlap)
                .unwrap();
            let bytes = std::fs::read(&path).unwrap();
            std::fs::remove_file(&path).ok();
            match &reference {
                None => reference = Some(bytes),
                Some(r) => prop_assert_eq!(
                    r, &bytes,
                    "{} streamed archive differs at workers={} overlap={}",
                    scheme.name(), workers, overlap
                ),
            }
        }
    }

    /// The word-parallel mgard/zfp encoders match their scalar oracles
    /// digit for digit, at 1 and at 8 workers.
    #[test]
    fn word_encode_matches_scalar_oracle(
        n in 96usize..400,
        seed in 0u64..1000,
    ) {
        let ds = make_dataset(n, seed);
        let data = ds.field(0);

        for basis in [Basis::Hierarchical, Basis::Orthogonal] {
            let r = MgardRefactorer::new(basis);
            let oracle = r.refactor_scalar(data, &[n]).unwrap();
            for workers in [1, 8] {
                let word = r.refactor_with_workers(data, &[n], workers).unwrap();
                prop_assert_eq!(
                    oracle.meta().to_bytes(),
                    word.meta().to_bytes(),
                    "mgard meta differs at {} workers", workers
                );
                prop_assert!(
                    oracle.plane_payloads().eq(word.plane_payloads()),
                    "mgard planes differ at {} workers", workers
                );
            }
        }

        let r = ZfpRefactorer::new();
        let oracle = r.refactor_scalar(data, &[n]).unwrap();
        for workers in [1, 8] {
            let word = r.refactor_with_workers(data, &[n], workers).unwrap();
            prop_assert_eq!(
                oracle.meta().to_bytes(),
                word.meta().to_bytes(),
                "zfp meta differs at {} workers", workers
            );
            prop_assert!(
                oracle.plane_payloads().eq(word.plane_payloads()),
                "zfp planes differ at {} workers", workers
            );
        }
    }
}
