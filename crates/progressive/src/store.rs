//! Shared per-field decode state: the cross-request decode cache of the
//! retrieval **service** layer.
//!
//! The paper's Algorithms 1–4 refine *per request*, but the decoded prefix
//! of a progressive representation is a monotone asset: whatever depth the
//! tightest request so far reached satisfies every looser request for
//! free. A [`ProgressStore`] holds, per field, one **master**
//! [`FieldReader`] (the only place fragments of that field are ever
//! fetched and decoded) plus its last published [`FieldSnapshot`]. Session
//! readers opened with [`FieldReader::open_shared`] are views: they adopt
//! snapshots and, when they need a tighter bound than any previous request
//! reached, advance the master **once** past the delta — under the field's
//! write lock, so concurrent sessions racing for the same depth decode it
//! exactly once.
//!
//! The store's counters make decode-once *assertable*: master decodes are
//! tallied in [`StoreStats::fragments_decoded`], and a refinement served
//! entirely from existing state bumps [`StoreStats::refine_reuses`]
//! without touching the source (which tests cross-check against the
//! source's own [`SourceStats`](crate::fragstore::SourceStats)).
//!
//! ## Bounded memory
//!
//! Decoded state is charged against a [`StoreBudget`] (see
//! [`crate::pager`]). When the budget trips, the store **demotes** cold
//! fields: the master's state flips from `Resident` (reader + snapshot)
//! to `Demoted` (just the [`ReaderProgress`] marker plus the published
//! bound/byte accounting — a few dozen bytes). Because every bound model
//! is exact and metadata-only, the next request **rehydrates**
//! transparently: a fresh master replays the exact restore plan for the
//! demoted depth — compressed-fragment RAM tier first, then the source —
//! and lands bit-identically on the evicted state. Sessions never observe
//! the difference; only [`StoreStats::evictions`],
//! [`StoreStats::rehydration_decodes`]/[`StoreStats::rehydration_bytes`]
//! and the source tallies move. [`StoreStats::fragments_decoded`] counts
//! *advance* decodes only, so decode-once accounting degrades exactly by
//! the explicitly-counted rehydration replays and nothing else.

use crate::fragstore::{FragmentId, FragmentSource, FragmentStage, Manifest};
use crate::pager::{plan_evictions, EvictionCandidate, StoreBudget};
use crate::refactored::{FieldReader, ReaderProgress, Scheme};
use pqr_util::error::{PqrError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock, RwLockWriteGuard};

/// A published view of one field's shared decode state: everything a
/// session needs to serve requests at this depth without decoding.
#[derive(Debug, Clone)]
pub struct FieldSnapshot {
    /// The reconstruction at this depth (shared — adopting is an `Arc`
    /// clone; the allocation is the master reader's own buffer, so
    /// publication never copies it either).
    pub recon: Arc<Vec<f64>>,
    /// Guaranteed L∞ bound of `recon` versus the original.
    pub bound: f64,
    /// Cumulative bytes the master fetched to reach this state — what a
    /// fresh engine would have fetched to get here, which keeps session
    /// byte accounting identical to the unshared path.
    pub fetched: usize,
    /// True when the representation has no further fragments.
    pub exhausted: bool,
    /// The master reader's resumable progress marker at this depth.
    pub progress: ReaderProgress,
    /// True for the placeholder a session adopts from a **demoted** field:
    /// `recon` is the zero vector and `bound` the always-valid `max|x|`,
    /// while `fetched`/`progress` still carry the true demoted accounting.
    /// A cold view's first refinement always reads through the store
    /// (which rehydrates), so cold state is never served to a request.
    pub cold: bool,
    /// Monotone publication epoch: bumped every time the store publishes a
    /// new state for this field (advance, rehydration, demotion). A view
    /// holding the current epoch is holding the published snapshot, so a
    /// refinement it cannot improve is answered without locking or
    /// adopting anything (see [`ProgressStore::refine_from`]).
    pub epoch: u64,
}

fn snapshot_of(reader: &FieldReader, epoch: u64) -> FieldSnapshot {
    FieldSnapshot {
        recon: reader.share_recon(),
        bound: reader.guaranteed_bound(),
        fetched: reader.total_fetched(),
        exhausted: reader.exhausted(),
        progress: reader.progress(),
        cold: false,
        epoch,
    }
}

const FLAG_EXHAUSTED: u64 = 1;
const FLAG_COLD: u64 = 1 << 1;

/// `have_epoch` value that can never match a published epoch (epochs start
/// at 1 and increment), so [`ProgressStore::refine_from`] always adopts.
const NO_EPOCH: u64 = u64::MAX;

/// One field's publication cell. Lives **outside** the master field lock,
/// so sessions adopt, compare bounds and test exhaustion without ever
/// contending with a decode in progress. `meta` packs the epoch with the
/// exhausted/cold flags into one word, so the lock-free short-circuit
/// reads a *consistent* (epoch, flags) pair in a single load; the
/// snapshot itself sits behind a tiny `RwLock` that is only ever held for
/// the duration of an `Arc` clone or pointer swap — never across a fetch,
/// a decode, or a memcpy.
struct PublishedField {
    /// `(epoch << 2) | flags` of the published state (epoch is monotone,
    /// starts at 1 at open; flags are [`FLAG_EXHAUSTED`] | [`FLAG_COLD`]).
    meta: AtomicU64,
    /// `to_bits` of the store's **true** bound for the field. For a
    /// demoted field the published snapshot is the cold placeholder at
    /// `max|x|`, but the true demoted bound survives here so
    /// [`ProgressStore::field_bound`] and [`ProgressStore::can_improve`]
    /// stay metadata-exact without rehydrating. Advisory: stored before
    /// `meta`, and every decision taken from it alone is re-checked where
    /// it matters.
    bound_bits: AtomicU64,
    /// Recency tick of the last request that touched the field (the LRU
    /// axis of the eviction policy).
    last_tick: AtomicU64,
    snap: RwLock<Arc<FieldSnapshot>>,
}

fn pack_meta(epoch: u64, exhausted: bool, cold: bool) -> u64 {
    (epoch << 2) | (exhausted as u64 * FLAG_EXHAUSTED) | (cold as u64 * FLAG_COLD)
}

impl PublishedField {
    fn new(snap: Arc<FieldSnapshot>, exhausted: bool) -> Self {
        Self {
            meta: AtomicU64::new(pack_meta(snap.epoch, exhausted, false)),
            bound_bits: AtomicU64::new(snap.bound.to_bits()),
            last_tick: AtomicU64::new(0),
            snap: RwLock::new(snap),
        }
    }

    /// The published snapshot (an `Arc` clone under the tiny read lock).
    fn snapshot(&self) -> Arc<FieldSnapshot> {
        Arc::clone(&self.snap.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Publishes a new epoch: swaps the snapshot `Arc` in, stores the true
    /// bound, then the packed epoch+flags word last (release) — a reader
    /// that observes the new epoch also observes the new snapshot.
    /// Publications are serialized by the master field lock.
    fn publish(&self, snap: Arc<FieldSnapshot>, true_bound: f64, exhausted: bool, cold: bool) {
        let epoch = snap.epoch;
        *self.snap.write().unwrap_or_else(|e| e.into_inner()) = snap;
        self.bound_bits
            .store(true_bound.to_bits(), Ordering::Relaxed);
        self.meta
            .store(pack_meta(epoch, exhausted, cold), Ordering::Release);
    }

    /// The store's true bound for the field (survives demotion).
    fn bound(&self) -> f64 {
        f64::from_bits(self.bound_bits.load(Ordering::Relaxed))
    }

    fn epoch(&self) -> u64 {
        self.meta.load(Ordering::Acquire) >> 2
    }

    fn is_exhausted(&self) -> bool {
        self.meta.load(Ordering::Acquire) & FLAG_EXHAUSTED != 0
    }

    fn next_epoch(&self) -> u64 {
        self.epoch() + 1
    }
}

/// A cached refinement front: the master's remaining fragment schedule
/// (consume order) from the published epoch's state down to the scheme
/// floor, with the guaranteed bound *after* each fragment. Fronts are
/// exact and metadata-only, so any tighter request at the same epoch is a
/// **prefix** of this list, and after an advance the unconsumed suffix
/// carries over to the new epoch instead of being recomputed.
struct CachedFront {
    epoch: u64,
    steps: Vec<(u32, f64)>,
}

/// Number of leading `steps` a refinement to `eb` consumes: fragments are
/// taken while the bound still exceeds `eb`, including the first step that
/// reaches it — exactly the fetch loop every scheme runs.
fn cut_front(steps: &[(u32, f64)], eb: f64) -> usize {
    let mut n = 0;
    for &(_, after) in steps {
        n += 1;
        if after <= eb {
            break;
        }
    }
    n
}

/// What survives a demotion: the exact restore marker plus the published
/// accounting, so rehydration and session adoption both stay
/// bit-faithful. A few dozen bytes against megabytes of decoded state.
#[derive(Debug, Clone)]
struct DemotedField {
    progress: ReaderProgress,
    bound: f64,
    fetched: usize,
    exhausted: bool,
}

// one entry per field: a Demoted marker occupying a Resident-sized slot
// costs nothing at that scale, and boxing the hot variant would put an
// indirection on every refine
#[allow(clippy::large_enum_variant)]
enum MasterState {
    /// Decoded state in RAM: the only reader that ever fetches/decodes
    /// this field's fragments. Its published snapshot lives in the
    /// field's [`PublishedField`] cell, outside this lock.
    Resident { reader: FieldReader },
    /// Decoded state dropped by the pager; only the marker survives.
    Demoted(DemotedField),
}

struct MasterField {
    state: MasterState,
    /// Bytes currently charged against the budget for this field.
    charged: u64,
}

/// Cumulative tallies of a [`ProgressStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Payload fragments the masters fetched and decoded **to advance** —
    /// each depth counted exactly once no matter how many sessions needed
    /// it, and never re-counted by rehydration replays.
    pub fragments_decoded: u64,
    /// Refinement requests that had to advance a master (decode work).
    pub refine_advances: u64,
    /// Refinement requests fully served by already-decoded state: zero
    /// source fetches, zero decodes.
    pub refine_reuses: u64,
    /// Snapshots handed to session views (at open and on refinement).
    pub adoptions: u64,
    /// Fields demoted by the pager (decoded state dropped to the marker).
    pub evictions: u64,
    /// Fragments re-decoded while rehydrating demoted fields — the exact
    /// price of eviction, kept separate from `fragments_decoded`.
    pub rehydration_decodes: u64,
    /// Bytes re-fetched **from the source** during rehydration (metadata +
    /// fragments the compressed RAM tier could not serve).
    pub rehydration_bytes: u64,
    /// Snapshot publications (epoch bumps): every advance, rehydration and
    /// demotion publishes exactly one new epoch. A request served entirely
    /// from published state publishes nothing — the zero-copy assertion of
    /// the epoch design.
    pub snapshot_publishes: u64,
    /// Refinements answered with "your epoch is current" — the caller's
    /// adopted snapshot already is the published one and nothing tighter
    /// is decodable, so the store takes no lock, clones no `Arc`, copies
    /// nothing (see [`ProgressStore::refine_from`]).
    pub epoch_short_circuits: u64,
    /// Refinement schedules served from the plan-front cache: the cached
    /// front for the current epoch covered the request as a prefix.
    pub plan_front_hits: u64,
    /// Refinement schedules that recomputed the front from the bound
    /// model (first request at an epoch, or a scheme without a
    /// prefix-monotone front).
    pub plan_front_misses: u64,
    /// Decoded bytes this store currently holds resident (its share of the
    /// budget's global tally).
    pub resident_bytes: u64,
    /// The budget ceiling in bytes; 0 = unbounded.
    pub budget_bytes: u64,
    /// Multilevel recompose axis passes the masters performed rebuilding
    /// reconstructions (open + advance + rehydration).
    pub recompose_passes: u64,
    /// Master refinement rounds answered from the memoized reconstruction
    /// — zero decodes, zero recompose passes.
    pub recon_cache_hits: u64,
    /// Wall-clock nanoseconds the masters spent rebuilding
    /// reconstructions.
    pub reconstruct_nanos: u64,
}

/// Shared, monotonically-deepening decode state for every field of one
/// archive. Cheap to share (`Arc`), safe to hit from many sessions: reads
/// are lock-free apart from a per-field `RwLock` read, and decodes
/// serialize per field so each bitplane is decoded once.
pub struct ProgressStore {
    source: Arc<dyn FragmentSource>,
    manifest: Manifest,
    fields: Vec<RwLock<MasterField>>,
    /// One publication cell per field, outside the master locks: the
    /// epoch-swapped snapshot plus the advisory atomics every lock-free
    /// read path answers from.
    published: Vec<PublishedField>,
    /// One plan-front cache slot per field (see [`CachedFront`]).
    fronts: Vec<Mutex<Option<CachedFront>>>,
    /// The zero reconstruction every cold placeholder shares — demoting N
    /// fields (or adopting a demoted field N times) costs one allocation
    /// total, not N.
    zero_recon: OnceLock<Arc<Vec<f64>>>,
    /// Stage the master readers consume batched prefetches from
    /// ([`ProgressStore::refine_to`] rides each delta through
    /// [`FragmentSource::read_many`] before the master decodes it).
    stage: Arc<FragmentStage>,
    /// The byte budget decoded state is charged against (possibly shared
    /// with other stores — the serving layer hands one budget to every
    /// dataset).
    budget: Arc<StoreBudget>,
    /// This store's id within the budget's fragment-tier key namespace.
    store_id: u64,
    /// Recency clock for the eviction policy.
    tick: AtomicU64,
    /// This store's own decoded-resident bytes (the per-dataset view of
    /// the budget's global tally).
    resident: AtomicU64,
    decoded: AtomicU64,
    advances: AtomicU64,
    reuses: AtomicU64,
    adoptions: AtomicU64,
    evictions: AtomicU64,
    rehydrated: AtomicU64,
    rehydrated_bytes: AtomicU64,
    publishes: AtomicU64,
    short_circuits: AtomicU64,
    front_hits: AtomicU64,
    front_misses: AtomicU64,
    recompose_passes: AtomicU64,
    recon_cache_hits: AtomicU64,
    reconstruct_nanos: AtomicU64,
}

/// Snapshot of one reader's reconstruction counters, for delta capture
/// around every master operation (readers are dropped on demotion, so the
/// store absorbs their counters incrementally).
struct ReconCounters(u64, u64, u64);

fn recon_counters(reader: &FieldReader) -> ReconCounters {
    ReconCounters(
        reader.recompose_passes(),
        reader.recon_cache_hits(),
        reader.reconstruct_nanos(),
    )
}

impl ProgressStore {
    /// Opens a store over `source` with the budget taken from the
    /// `PQR_STORE_BUDGET` environment variable (unset = unbounded). One
    /// master reader per field — this fetches each field's metadata
    /// fragment, nothing more.
    pub fn open(source: Arc<dyn FragmentSource>) -> Result<Self> {
        Self::open_with(source, Arc::new(StoreBudget::from_env()?))
    }

    /// Opens a store charging its decoded state against an explicit
    /// (possibly shared) [`StoreBudget`].
    pub fn open_with(source: Arc<dyn FragmentSource>, budget: Arc<StoreBudget>) -> Result<Self> {
        let manifest = source.manifest()?;
        let stage = Arc::new(FragmentStage::new());
        let mut store = Self {
            source,
            manifest,
            fields: Vec::new(),
            published: Vec::new(),
            fronts: Vec::new(),
            zero_recon: OnceLock::new(),
            stage,
            store_id: budget.register_store(),
            budget,
            tick: AtomicU64::new(0),
            resident: AtomicU64::new(0),
            decoded: AtomicU64::new(0),
            advances: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            adoptions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rehydrated: AtomicU64::new(0),
            rehydrated_bytes: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            short_circuits: AtomicU64::new(0),
            front_hits: AtomicU64::new(0),
            front_misses: AtomicU64::new(0),
            recompose_passes: AtomicU64::new(0),
            recon_cache_hits: AtomicU64::new(0),
            reconstruct_nanos: AtomicU64::new(0),
        };
        // construct, charge and enforce one master at a time: a reader
        // (recon + decode cursor) costs its full footprint from the moment
        // it is opened, so charging the whole fleet before enforcing once
        // would spike a bounded open to the entire working set
        for i in 0..store.manifest.num_fields() {
            let mut reader = FieldReader::open(Arc::clone(&store.source), &store.manifest, i)?;
            reader.attach_stage(Arc::clone(&store.stage));
            reader.set_workers(pqr_util::par::worker_count());
            store.absorb_recon_counters(&reader, ReconCounters(0, 0, 0));
            let snap = Arc::new(snapshot_of(&reader, 1));
            let cost = master_cost(&reader);
            let exhausted = snap.exhausted;
            store.published.push(PublishedField::new(snap, exhausted));
            store.fronts.push(Mutex::new(None));
            store.fields.push(RwLock::new(MasterField {
                state: MasterState::Resident { reader },
                charged: cost,
            }));
            store.resident.fetch_add(cost, Ordering::Relaxed);
            store.budget.charge(cost);
            store.maybe_enforce(None);
        }
        Ok(store)
    }

    /// The fragment source the masters decode from.
    pub fn source(&self) -> &Arc<dyn FragmentSource> {
        &self.source
    }

    /// The archive manifest the store serves.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// The budget this store charges decoded state against.
    pub fn budget(&self) -> &Arc<StoreBudget> {
        &self.budget
    }

    fn write_field(&self, field: usize) -> RwLockWriteGuard<'_, MasterField> {
        self.fields[field]
            .write()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn cell(&self, field: usize) -> Result<&PublishedField> {
        self.published.get(field).ok_or_else(|| {
            PqrError::InvalidRequest(format!(
                "field {field} out of range ({} fields)",
                self.fields.len()
            ))
        })
    }

    /// Folds a master reader's reconstruction counters (above `base`) into
    /// the store tallies. Called after every operation that can rebuild —
    /// readers are dropped on demotion, so counters are absorbed
    /// incrementally, never at teardown.
    fn absorb_recon_counters(&self, reader: &FieldReader, base: ReconCounters) {
        self.recompose_passes
            .fetch_add(reader.recompose_passes() - base.0, Ordering::Relaxed);
        self.recon_cache_hits
            .fetch_add(reader.recon_cache_hits() - base.1, Ordering::Relaxed);
        self.reconstruct_nanos
            .fetch_add(reader.reconstruct_nanos() - base.2, Ordering::Relaxed);
    }

    fn touch_cell(&self, cell: &PublishedField) {
        cell.last_tick.store(
            self.tick.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
    }

    /// The current snapshot of `field` (what a freshly opened session view
    /// adopts) — a lock-free read of the publication cell, never the
    /// master lock, so adoption cannot wait behind a decode. Demoted
    /// fields hand out a **cold** placeholder — true `fetched`/`progress`
    /// accounting over the shared zero reconstruction at the always-valid
    /// `max|x|` bound — instead of rehydrating, so opening a session on a
    /// large archive never re-materialises evicted fields the session may
    /// not touch; the first refinement through the store rehydrates on
    /// demand.
    pub fn adopt(&self, field: usize) -> Result<Arc<FieldSnapshot>> {
        let cell = self.cell(field)?;
        self.touch_cell(cell);
        self.adoptions.fetch_add(1, Ordering::Relaxed);
        Ok(cell.snapshot())
    }

    fn cold_snapshot(&self, field: usize, d: &DemotedField, epoch: u64) -> FieldSnapshot {
        let entry = &self.manifest.fields[field];
        FieldSnapshot {
            recon: self.zero_recon(),
            bound: entry.max_abs,
            fetched: d.fetched,
            exhausted: d.exhausted && d.bound >= entry.max_abs,
            progress: d.progress.clone(),
            cold: true,
            epoch,
        }
    }

    fn zero_recon(&self) -> Arc<Vec<f64>> {
        Arc::clone(
            self.zero_recon
                .get_or_init(|| Arc::new(vec![0.0; self.manifest.num_elements()])),
        )
    }

    /// The publication epoch of `field` (0 for an out-of-range field —
    /// published epochs start at 1).
    pub fn published_epoch(&self, field: usize) -> u64 {
        self.published.get(field).map_or(0, |c| c.epoch())
    }

    /// The store's current guaranteed bound for `field` — a single atomic
    /// load, exact even while the field is demoted (the true bound
    /// survives in the publication cell; no rehydration, no lock).
    pub fn field_bound(&self, field: usize) -> f64 {
        self.published
            .get(field)
            .map_or(f64::INFINITY, |c| c.bound())
    }

    /// True when a session view at `current_bound` could still improve by
    /// reading through the store: the store holds (or can re-reach) a
    /// deeper state already, or its master is not exhausted. Two atomic
    /// loads — no lock, and asking never rehydrates.
    pub fn can_improve(&self, field: usize, current_bound: f64) -> bool {
        self.published
            .get(field)
            .map(|c| !c.is_exhausted() || c.bound() < current_bound)
            .unwrap_or(false)
    }

    /// Refines `field` to bound `eb`, sharing work across sessions: if the
    /// store is already at least this deep the call is a lock-free read of
    /// the publication cell (no fetch, no decode, no master lock);
    /// otherwise the master decodes exactly the delta — batched through
    /// [`FragmentSource::read_many`] — under the field's write lock, and a
    /// new epoch is published by `Arc` swap. A demoted field is rehydrated
    /// first (compressed RAM tier, then source) and the replay tallied in
    /// the rehydration counters.
    pub fn refine_to(&self, field: usize, eb: f64) -> Result<Arc<FieldSnapshot>> {
        Ok(self
            .refine_from(field, eb, NO_EPOCH)?
            .expect("refine_from always adopts for NO_EPOCH"))
    }

    /// Epoch-aware [`ProgressStore::refine_to`]: `have_epoch` is the epoch
    /// of the snapshot the caller already holds. Returns `None` when that
    /// snapshot still **is** the published state and nothing tighter is
    /// decodable — the caller keeps what it has; no lock was taken, no
    /// `Arc` cloned, nothing copied. Returns `Some(snapshot)` to adopt
    /// otherwise.
    pub fn refine_from(
        &self,
        field: usize,
        eb: f64,
        have_epoch: u64,
    ) -> Result<Option<Arc<FieldSnapshot>>> {
        let cell = self.cell(field)?;
        // Lock-free epoch short-circuit: one load of the packed
        // (epoch, flags) word. When the caller's epoch is current and the
        // published state is exhausted, the caller already holds the
        // representation floor — the store only ever deepens, so no later
        // epoch can be tighter and there is nothing to adopt. The packing
        // makes the pair consistent by construction; a concurrent publish
        // at worst makes the comparison fail and we fall through.
        let meta = cell.meta.load(Ordering::Acquire);
        if meta == pack_meta(have_epoch, true, false) {
            self.touch_cell(cell);
            self.reuses.fetch_add(1, Ordering::Relaxed);
            self.short_circuits.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }
        // Published-snapshot fast path: the tiny snap read-lock for an
        // `Arc` clone — never the master lock, so a decode in progress on
        // this field cannot block it. Decisions are taken from the
        // immutable snapshot itself, so they cannot race.
        let snap = cell.snapshot();
        if !snap.cold && (snap.bound <= eb || snap.exhausted) {
            self.touch_cell(cell);
            self.reuses.fetch_add(1, Ordering::Relaxed);
            if snap.epoch == have_epoch {
                self.short_circuits.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
            self.adoptions.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(snap));
        }
        let out = self.refine_locked(field, eb).map(Some);
        self.maybe_enforce(Some(field));
        out
    }

    fn refine_locked(&self, field: usize, eb: f64) -> Result<Arc<FieldSnapshot>> {
        let mut g = self.write_field(field);
        let cell = &self.published[field];
        self.touch_cell(cell);
        self.ensure_resident(&mut g, field)?;
        let MasterState::Resident { reader } = &mut g.state else {
            unreachable!("ensure_resident leaves the field resident");
        };
        // another session may have decoded this depth while we waited (or
        // the rehydrated depth already satisfies the request)
        let published = cell.snapshot();
        if published.bound <= eb || published.exhausted {
            self.reuses.fetch_add(1, Ordering::Relaxed);
            self.adoptions.fetch_add(1, Ordering::Relaxed);
            return Ok(published);
        }
        // batch the delta schedule — served by the plan-front cache — in
        // storage order; a failed prefetch degrades to the reader's
        // per-fragment fallback fetches
        let mut ids: Vec<FragmentId> = self
            .front_schedule(field, reader, eb)
            .into_iter()
            .map(|index| FragmentId {
                field: field as u32,
                index,
            })
            .collect();
        if ids.len() > 1 {
            ids.sort_by_key(|&id| {
                self.manifest
                    .fragment(id)
                    .map(|f| f.offset)
                    .unwrap_or(u64::MAX)
            });
            if let Ok(payloads) = self.source.read_many(&ids) {
                for (&id, payload) in ids.iter().zip(payloads) {
                    self.budget
                        .tier_put((self.store_id, id.field, id.index), Arc::clone(&payload));
                    self.stage.put(id, payload);
                }
            }
        }
        let before = reader.fragments_decoded();
        let recon_base = recon_counters(reader);
        let refined = reader.refine_to(eb);
        self.absorb_recon_counters(reader, recon_base);
        refined?;
        let delta = reader.fragments_decoded() - before;
        if delta == 0 {
            // nothing decoded ⇒ reader state (and hence the snapshot) is
            // unchanged: keep the published `Arc` — no republish — and
            // count the request as a reuse
            self.reuses.fetch_add(1, Ordering::Relaxed);
            self.adoptions.fetch_add(1, Ordering::Relaxed);
            return Ok(published);
        }
        self.decoded.fetch_add(delta, Ordering::Relaxed);
        self.advances.fetch_add(1, Ordering::Relaxed);
        self.adoptions.fetch_add(1, Ordering::Relaxed);
        let epoch = cell.next_epoch();
        let snap = Arc::new(snapshot_of(reader, epoch));
        cell.publish(Arc::clone(&snap), snap.bound, snap.exhausted, false);
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.retire_front(field, epoch, delta as usize);
        // epoch retirement: the old epoch's charge is swapped for the new
        // one's in a single budget operation
        let cost = master_cost(reader);
        self.recharge(&mut g, cost);
        Ok(snap)
    }

    /// The fragment schedule a refinement of `field` to `eb` should batch,
    /// served by the per-field plan-front cache. Fronts are exact and
    /// metadata-only, so the full remaining front computed once per epoch
    /// answers every tighter request at that epoch as a **prefix**; after
    /// an advance the unconsumed suffix carries over (see
    /// [`ProgressStore::retire_front`]). Representations without a
    /// prefix-monotone front (plain PSZ3 re-fetches one adequate snapshot
    /// per request) bypass the cache. Called under the field's write lock,
    /// which serializes all mutation.
    fn front_schedule(&self, field: usize, reader: &FieldReader, eb: f64) -> Vec<u32> {
        let mut slot = self.fronts[field].lock().unwrap_or_else(|e| e.into_inner());
        let epoch = self.published[field].epoch();
        let hit = matches!(&*slot, Some(c) if c.epoch == epoch);
        if !hit {
            *slot = reader
                .plan_refine_with_bounds()
                .map(|steps| CachedFront { epoch, steps });
        }
        let out = match &*slot {
            Some(front) => {
                let n = cut_front(&front.steps, eb);
                front.steps[..n].iter().map(|&(id, _)| id).collect()
            }
            None => reader.plan_refine_to(eb),
        };
        if hit {
            self.front_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.front_misses.fetch_add(1, Ordering::Relaxed);
        }
        debug_assert_eq!(
            out,
            reader.plan_refine_to(eb),
            "cached front must match the live plan exactly"
        );
        out
    }

    /// Carries the plan-front cache across an epoch publication: the
    /// `consumed` fragments the advance decoded drop off the front and the
    /// suffix is re-keyed to the new epoch — a tighter request later
    /// extends the front instead of recomputing it. Any mismatch (e.g. a
    /// rehydration changed the state wholesale) just invalidates the slot.
    fn retire_front(&self, field: usize, new_epoch: u64, consumed: usize) {
        let mut slot = self.fronts[field].lock().unwrap_or_else(|e| e.into_inner());
        match &mut *slot {
            Some(c) if c.epoch + 1 == new_epoch && consumed <= c.steps.len() => {
                c.steps.drain(..consumed);
                c.epoch = new_epoch;
            }
            Some(_) => *slot = None,
            None => {}
        }
    }

    /// Rebuilds a demoted field's decoded state bit-identically: a fresh
    /// master replays the exact restore plan for the demoted marker,
    /// staging payloads from the compressed RAM tier first and batching
    /// the misses through one [`FragmentSource::read_many`]. Counts the
    /// replayed fragments and the source bytes the tier could not absorb.
    fn ensure_resident(&self, g: &mut MasterField, field: usize) -> Result<()> {
        let d = match &g.state {
            MasterState::Resident { .. } => return Ok(()),
            MasterState::Demoted(d) => d.clone(),
        };
        let mut reader = FieldReader::open(Arc::clone(&self.source), &self.manifest, field)?;
        reader.attach_stage(Arc::clone(&self.stage));
        reader.set_workers(pqr_util::par::worker_count());
        let plan = reader.plan_restore(&d.progress)?;
        // multilevel/transform schemes re-fetch their metadata fragment at
        // open — that is source traffic rehydration caused
        let mut refetched: u64 = match reader.scheme() {
            Scheme::PmgardHb | Scheme::PmgardOb | Scheme::Pzfp => {
                self.manifest.fields[field].fragments[0].len
            }
            _ => 0,
        };
        let mut missing: Vec<FragmentId> = Vec::new();
        for &index in &plan {
            let id = FragmentId {
                field: field as u32,
                index,
            };
            match self.budget.tier_get(&(self.store_id, id.field, id.index)) {
                Some(payload) => self.stage.put(id, payload),
                None => missing.push(id),
            }
        }
        if !missing.is_empty() {
            missing.sort_by_key(|&id| {
                self.manifest
                    .fragment(id)
                    .map(|f| f.offset)
                    .unwrap_or(u64::MAX)
            });
            match self.source.read_many(&missing) {
                Ok(payloads) => {
                    for (&id, payload) in missing.iter().zip(payloads) {
                        refetched += payload.len() as u64;
                        self.budget
                            .tier_put((self.store_id, id.field, id.index), Arc::clone(&payload));
                        self.stage.put(id, payload);
                    }
                }
                Err(_) => {
                    // restore() falls back to per-fragment source fetches;
                    // the directory records the bytes it will move
                    for &id in &missing {
                        refetched += self.manifest.fragment(id)?.len;
                    }
                }
            }
        }
        reader.restore(&d.progress)?;
        self.absorb_recon_counters(&reader, ReconCounters(0, 0, 0));
        debug_assert_eq!(
            reader.guaranteed_bound().to_bits(),
            d.bound.to_bits(),
            "rehydration must land on the demoted bound exactly"
        );
        debug_assert_eq!(reader.total_fetched(), d.fetched);
        self.rehydrated
            .fetch_add(plan.len() as u64, Ordering::Relaxed);
        self.rehydrated_bytes
            .fetch_add(refetched, Ordering::Relaxed);
        // publish the rehydrated state as a new epoch: cold views adopt the
        // warm snapshot again, and the stale plan-front slot (keyed to a
        // pre-demotion epoch) simply misses and recomputes
        let cell = &self.published[field];
        let snap = Arc::new(snapshot_of(&reader, cell.next_epoch()));
        cell.publish(Arc::clone(&snap), snap.bound, snap.exhausted, false);
        self.publishes.fetch_add(1, Ordering::Relaxed);
        let cost = master_cost(&reader);
        g.state = MasterState::Resident { reader };
        self.recharge(g, cost);
        Ok(())
    }

    /// Swaps this field's budget charge to `cost` at epoch retirement —
    /// one delta-sized budget operation per publication, so the global
    /// tally never transits through zero (a discharge+charge pair would
    /// let a concurrent enforcement pass see the field as free).
    fn recharge(&self, g: &mut MasterField, cost: u64) {
        self.budget.swap_charge(g.charged, cost);
        if cost >= g.charged {
            self.resident.fetch_add(cost - g.charged, Ordering::Relaxed);
        } else {
            self.resident.fetch_sub(g.charged - cost, Ordering::Relaxed);
        }
        g.charged = cost;
    }

    /// Demotes `field` if it is resident and not currently locked by a
    /// refinement: decoded state is dropped (sessions holding its
    /// snapshots keep them alive — that memory is session-owned), the
    /// marker survives, and the budget is credited. Returns whether a
    /// demotion happened. Public so operators and chaos tests can force
    /// eviction schedules; normal pressure goes through the budget.
    pub fn demote(&self, field: usize) -> bool {
        let Some(lock) = self.fields.get(field) else {
            return false;
        };
        let Ok(mut g) = lock.try_write() else {
            return false;
        };
        self.demote_locked(&mut g, field)
    }

    fn demote_locked(&self, g: &mut MasterField, field: usize) -> bool {
        let MasterState::Resident { reader } = &g.state else {
            return false;
        };
        let d = DemotedField {
            progress: reader.progress(),
            bound: reader.guaranteed_bound(),
            fetched: reader.total_fetched(),
            exhausted: reader.exhausted(),
        };
        // publish the cold placeholder as a new epoch; the true demoted
        // bound and exhaustion survive in the cell's advisory word, so
        // metadata answers stay exact without rehydrating
        let cell = &self.published[field];
        let cold = Arc::new(self.cold_snapshot(field, &d, cell.next_epoch()));
        cell.publish(cold, d.bound, d.exhausted, true);
        self.publishes.fetch_add(1, Ordering::Relaxed);
        g.state = MasterState::Demoted(d);
        self.budget.discharge(g.charged);
        self.resident.fetch_sub(g.charged, Ordering::Relaxed);
        g.charged = 0;
        self.evictions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Forces a full, unpinned enforcement pass, demoting cold fields
    /// until the decoded tier is back under its ceiling. Normal pressure
    /// runs automatically after every refinement with the active field
    /// pinned (see [`ProgressStore::demote`] for the policy rationale);
    /// this entry point is for quiesce points — operators, tests, or a
    /// serving layer between request bursts — where nothing is hot.
    pub fn enforce(&self) {
        self.maybe_enforce(None);
    }

    /// Runs the eviction policy when the budget is over its decoded
    /// ceiling. Lock-friendly by construction: candidates are gathered
    /// with `try_read`, demotions use `try_write`, so enforcement can
    /// never block or deadlock a refinement — a busy field simply is not
    /// a candidate this round.
    ///
    /// `exempt` pins the field whose refinement triggered enforcement: a
    /// request's engine re-touches its target field across refinement
    /// rounds, and evicting it mid-request would replay its whole decode
    /// every round. The pin means the decoded tier can exceed its ceiling
    /// by at most one field — the slack the budget's accounting (and the
    /// bench gates) allow for.
    fn maybe_enforce(&self, exempt: Option<usize>) {
        if !self.budget.over_decoded_limit() {
            return;
        }
        let need = self.budget.decoded_overage();
        let mut candidates = Vec::new();
        for (i, lock) in self.fields.iter().enumerate() {
            if Some(i) == exempt {
                continue;
            }
            let Ok(g) = lock.try_read() else { continue };
            if let MasterState::Resident { reader } = &g.state {
                let cost = reader
                    .plan_restore(&reader.progress())
                    .map(|ids| {
                        ids.iter()
                            .map(|&ix| self.manifest.fields[i].fragments[ix as usize].len)
                            .sum()
                    })
                    .unwrap_or(u64::MAX);
                candidates.push(EvictionCandidate {
                    field: i,
                    last_tick: self.published[i].last_tick.load(Ordering::Relaxed),
                    rehydration_cost: cost,
                    resident_bytes: g.charged,
                });
            }
        }
        for f in plan_evictions(candidates, need) {
            if let Ok(mut g) = self.fields[f].try_write() {
                self.demote_locked(&mut g, f);
            }
            if !self.budget.over_decoded_limit() {
                break;
            }
        }
    }

    /// Resolution-progressive view of `field` from the store's current
    /// (deepest) decode state — see
    /// [`FieldReader::reconstruct_at_resolution`]. Rehydrates a demoted
    /// field first.
    pub fn reconstruct_at_resolution(
        &self,
        field: usize,
        drop_finest: usize,
    ) -> Result<(Vec<f64>, Vec<usize>)> {
        self.cell(field)?; // range check
        {
            let g = self.fields[field].read().unwrap_or_else(|e| e.into_inner());
            if let MasterState::Resident { reader } = &g.state {
                return reader.reconstruct_at_resolution(drop_finest);
            }
        }
        let out = {
            let mut g = self.write_field(field);
            self.ensure_resident(&mut g, field)?;
            let MasterState::Resident { reader } = &g.state else {
                unreachable!("ensure_resident leaves the field resident");
            };
            reader.reconstruct_at_resolution(drop_finest)
        };
        self.maybe_enforce(Some(field));
        out
    }

    /// Decoded bytes this store currently holds resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Cumulative store tallies.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            fragments_decoded: self.decoded.load(Ordering::Relaxed),
            refine_advances: self.advances.load(Ordering::Relaxed),
            refine_reuses: self.reuses.load(Ordering::Relaxed),
            adoptions: self.adoptions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rehydration_decodes: self.rehydrated.load(Ordering::Relaxed),
            rehydration_bytes: self.rehydrated_bytes.load(Ordering::Relaxed),
            snapshot_publishes: self.publishes.load(Ordering::Relaxed),
            epoch_short_circuits: self.short_circuits.load(Ordering::Relaxed),
            plan_front_hits: self.front_hits.load(Ordering::Relaxed),
            plan_front_misses: self.front_misses.load(Ordering::Relaxed),
            resident_bytes: self.resident.load(Ordering::Relaxed),
            budget_bytes: self.budget.limit_bytes(),
            recompose_passes: self.recompose_passes.load(Ordering::Relaxed),
            recon_cache_hits: self.recon_cache_hits.load(Ordering::Relaxed),
            reconstruct_nanos: self.reconstruct_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Budget cost of one resident field: the master reader's decoded state
/// ([`FieldReader::resident_bytes`]) plus the snapshot header. The
/// published reconstruction is the reader's own buffer — publication is an
/// `Arc` share, never a copy — so that allocation is charged exactly once,
/// through the reader.
fn master_cost(reader: &FieldReader) -> u64 {
    (std::mem::size_of::<FieldSnapshot>() + reader.resident_bytes()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Dataset;
    use crate::fragstore::InMemorySource;
    use crate::refactored::Scheme;

    fn shared_source(scheme: Scheme) -> Arc<dyn FragmentSource> {
        let n = 1200;
        let mut ds = Dataset::new(&[n]);
        ds.add_field("u", (0..n).map(|i| (i as f64 * 0.01).sin() * 8.0).collect())
            .unwrap();
        ds.add_field("v", (0..n).map(|i| (i as f64 * 0.02).cos() * 3.0).collect())
            .unwrap();
        let bytes = ds
            .refactor_with_bounds(scheme, &(1..=8).map(|i| 10f64.powi(-i)).collect::<Vec<_>>())
            .unwrap()
            .to_bytes();
        Arc::new(InMemorySource::new(bytes).unwrap())
    }

    #[test]
    fn masters_decode_each_depth_once() {
        for scheme in Scheme::extended() {
            let source = shared_source(scheme);
            let store = ProgressStore::open(Arc::clone(&source)).unwrap();
            let tight = store.refine_to(0, 1e-5).unwrap();
            let after_tight = store.stats();
            let fetched_after_tight = source.stats().fetched_bytes;
            assert!(after_tight.fragments_decoded > 0, "{}", scheme.name());
            assert!(tight.bound <= 1e-5);

            // a looser request afterwards: pure reuse, no new source bytes
            let loose = store.refine_to(0, 1e-2).unwrap();
            let after_loose = store.stats();
            assert_eq!(
                after_loose.fragments_decoded,
                after_tight.fragments_decoded,
                "{}: looser request must not decode",
                scheme.name()
            );
            assert_eq!(after_loose.refine_reuses, after_tight.refine_reuses + 1);
            assert_eq!(source.stats().fetched_bytes, fetched_after_tight);
            // the reuse serves the deepest snapshot (monotone state)
            assert_eq!(loose.bound, tight.bound);
            assert!(Arc::ptr_eq(&loose.recon, &tight.recon));
        }
    }

    #[test]
    fn concurrent_refines_share_the_decode() {
        let source = shared_source(Scheme::PmgardHb);
        let store = Arc::new(ProgressStore::open(Arc::clone(&source)).unwrap());
        std::thread::scope(|s| {
            for k in 0..8 {
                let store = Arc::clone(&store);
                let eb = if k % 2 == 0 { 1e-5 } else { 1e-2 };
                s.spawn(move || {
                    let snap = store.refine_to(0, eb).unwrap();
                    assert!(snap.bound <= eb);
                });
            }
        });
        // sequential oracle: one cold store refined straight to the
        // tightest bound decodes the same fragments the race did
        let oracle_src = shared_source(Scheme::PmgardHb);
        let oracle = ProgressStore::open(oracle_src).unwrap();
        oracle.refine_to(0, 1e-5).unwrap();
        // the racing store may pass through the loose depth first (one
        // extra advance), but never decodes a fragment twice
        assert_eq!(
            store.stats().fragments_decoded,
            oracle.stats().fragments_decoded
        );
        assert_eq!(
            store.field_bound(0).to_bits(),
            oracle.field_bound(0).to_bits()
        );
    }

    #[test]
    fn out_of_range_field_is_an_error() {
        let store = ProgressStore::open(shared_source(Scheme::Psz3Delta)).unwrap();
        assert!(store.adopt(9).is_err());
        assert!(store.refine_to(9, 1e-3).is_err());
        assert!(!store.can_improve(9, 0.0));
    }

    #[test]
    fn demotion_and_rehydration_are_bit_exact() {
        for scheme in Scheme::extended() {
            let source = shared_source(scheme);
            let store = ProgressStore::open(Arc::clone(&source)).unwrap();
            let deep = store.refine_to(0, 1e-5).unwrap();
            let decoded_before = store.stats().fragments_decoded;
            let resident_before = store.resident_bytes();

            assert!(
                store.demote(0),
                "{}: resident field must demote",
                scheme.name()
            );
            assert!(
                !store.demote(0),
                "{}: demoting twice is a no-op",
                scheme.name()
            );
            assert!(
                store.resident_bytes() < resident_before,
                "{}: demotion must release budget",
                scheme.name()
            );
            // metadata answers survive demotion without rehydrating
            assert_eq!(store.field_bound(0).to_bits(), deep.bound.to_bits());
            let s = store.stats();
            assert_eq!(s.evictions, 1);
            assert_eq!(s.rehydration_decodes, 0, "{}", scheme.name());

            // a request at the old depth rehydrates bit-identically
            let back = store.refine_to(0, 1e-5).unwrap();
            assert_eq!(back.recon, deep.recon, "{}", scheme.name());
            assert_eq!(back.bound.to_bits(), deep.bound.to_bits());
            assert_eq!(back.fetched, deep.fetched);
            assert_eq!(back.progress, deep.progress);
            let s = store.stats();
            assert_eq!(
                s.fragments_decoded,
                decoded_before,
                "{}: rehydration must not count as advance decodes",
                scheme.name()
            );
            assert!(s.rehydration_decodes > 0, "{}", scheme.name());
        }
    }

    #[test]
    fn exhausted_views_short_circuit_without_publishing() {
        let source = shared_source(Scheme::PmgardHb);
        let store = Arc::new(ProgressStore::open(Arc::clone(&source)).unwrap());
        let manifest = store.manifest().clone();
        let mut view =
            crate::refactored::FieldReader::open_shared(Arc::clone(&store), &manifest, 0).unwrap();
        // drive the shared state to its representation floor through the view
        view.refine_to(0.0).unwrap();
        let base = store.stats();
        assert!(base.snapshot_publishes > 0);
        let held = view.share_recon();

        // repeat-tolerance session: every repeat is answered by the packed
        // epoch word — no adoption, no publish, no recon clone
        for _ in 0..4 {
            assert_eq!(view.refine_to(0.0).unwrap(), 0);
        }
        let after = store.stats();
        assert!(
            after.epoch_short_circuits >= base.epoch_short_circuits + 4,
            "repeats must hit the epoch short-circuit: {} -> {}",
            base.epoch_short_circuits,
            after.epoch_short_circuits
        );
        assert_eq!(after.adoptions, base.adoptions, "no adoption on repeats");
        assert_eq!(
            after.snapshot_publishes, base.snapshot_publishes,
            "no publish on repeats"
        );
        assert!(
            Arc::ptr_eq(&held, &view.share_recon()),
            "the view must keep the very same reconstruction Arc"
        );
    }

    #[test]
    fn cold_adoption_never_rehydrates() {
        let source = shared_source(Scheme::PmgardHb);
        let store = ProgressStore::open(Arc::clone(&source)).unwrap();
        let deep = store.refine_to(0, 1e-4).unwrap();
        store.demote(0);
        let bytes_before = source.stats().fetched_bytes;
        let cold = store.adopt(0).unwrap();
        assert!(cold.cold);
        assert_eq!(cold.fetched, deep.fetched, "true accounting survives");
        assert_eq!(cold.progress, deep.progress);
        assert!(cold.recon.iter().all(|&x| x == 0.0));
        assert_eq!(
            source.stats().fetched_bytes,
            bytes_before,
            "adopting a demoted field must not touch the source"
        );
        assert_eq!(store.stats().rehydration_decodes, 0);
    }

    #[test]
    fn tight_budget_evicts_and_stays_bounded() {
        let source = shared_source(Scheme::PmgardHb);
        // room for roughly one decoded field (each ≈ 1200·8·4 B here)
        let budget = Arc::new(StoreBudget::with_limit(48 << 10));
        let store = ProgressStore::open_with(Arc::clone(&source), Arc::clone(&budget)).unwrap();
        store.refine_to(0, 1e-6).unwrap();
        store.refine_to(1, 1e-6).unwrap();
        let s = store.stats();
        assert!(s.evictions > 0, "two deep fields cannot both stay resident");
        // pressure enforcement pins the field being refined, so the tier
        // may end one field over its ceiling; an unpinned pass at a
        // quiesce point always recovers it
        store.enforce();
        assert!(
            !budget.over_decoded_limit(),
            "resident {} over decoded ceiling of {}",
            budget.resident_bytes(),
            budget.limit_bytes()
        );
        // and the answers still match an unbounded oracle byte-for-byte
        let oracle = ProgressStore::open(shared_source(Scheme::PmgardHb)).unwrap();
        for field in 0..2 {
            let a = store.refine_to(field, 1e-6).unwrap();
            let b = oracle.refine_to(field, 1e-6).unwrap();
            assert_eq!(a.recon, b.recon, "field {field}");
            assert_eq!(a.bound.to_bits(), b.bound.to_bits());
            assert_eq!(a.fetched, b.fetched);
        }
    }
}
