//! Shared per-field decode state: the cross-request decode cache of the
//! retrieval **service** layer.
//!
//! The paper's Algorithms 1–4 refine *per request*, but the decoded prefix
//! of a progressive representation is a monotone asset: whatever depth the
//! tightest request so far reached satisfies every looser request for
//! free. A [`ProgressStore`] holds, per field, one **master**
//! [`FieldReader`] (the only place fragments of that field are ever
//! fetched and decoded) plus its last published [`FieldSnapshot`]. Session
//! readers opened with [`FieldReader::open_shared`] are views: they adopt
//! snapshots and, when they need a tighter bound than any previous request
//! reached, advance the master **once** past the delta — under the field's
//! write lock, so concurrent sessions racing for the same depth decode it
//! exactly once.
//!
//! The store's counters make decode-once *assertable*: master decodes are
//! tallied in [`StoreStats::fragments_decoded`], and a refinement served
//! entirely from existing state bumps [`StoreStats::refine_reuses`]
//! without touching the source (which tests cross-check against the
//! source's own [`SourceStats`](crate::fragstore::SourceStats)).

use crate::fragstore::{FragmentId, FragmentSource, FragmentStage, Manifest};
use crate::refactored::{FieldReader, ReaderProgress};
use pqr_util::error::{PqrError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A published view of one field's shared decode state: everything a
/// session needs to serve requests at this depth without decoding.
#[derive(Debug, Clone)]
pub struct FieldSnapshot {
    /// The reconstruction at this depth (shared — adopting is an `Arc`
    /// clone plus one memcpy into the session's buffer).
    pub recon: Arc<Vec<f64>>,
    /// Guaranteed L∞ bound of `recon` versus the original.
    pub bound: f64,
    /// Cumulative bytes the master fetched to reach this state — what a
    /// fresh engine would have fetched to get here, which keeps session
    /// byte accounting identical to the unshared path.
    pub fetched: usize,
    /// True when the representation has no further fragments.
    pub exhausted: bool,
    /// The master reader's resumable progress marker at this depth.
    pub progress: ReaderProgress,
}

fn snapshot_of(reader: &FieldReader) -> FieldSnapshot {
    FieldSnapshot {
        recon: Arc::new(reader.data().to_vec()),
        bound: reader.guaranteed_bound(),
        fetched: reader.total_fetched(),
        exhausted: reader.exhausted(),
        progress: reader.progress(),
    }
}

struct MasterField {
    /// The only reader that ever fetches/decodes this field's fragments.
    reader: FieldReader,
    /// Last published state (replaced wholesale on every advance, so
    /// sessions holding older `Arc`s stay internally consistent).
    snap: Arc<FieldSnapshot>,
}

/// Cumulative tallies of a [`ProgressStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Payload fragments the masters fetched and decoded — each counted
    /// exactly once no matter how many sessions needed it.
    pub fragments_decoded: u64,
    /// Refinement requests that had to advance a master (decode work).
    pub refine_advances: u64,
    /// Refinement requests fully served by already-decoded state: zero
    /// source fetches, zero decodes.
    pub refine_reuses: u64,
    /// Snapshots handed to session views (at open and on refinement).
    pub adoptions: u64,
}

/// Shared, monotonically-deepening decode state for every field of one
/// archive. Cheap to share (`Arc`), safe to hit from many sessions: reads
/// are lock-free apart from a per-field `RwLock` read, and decodes
/// serialize per field so each bitplane is decoded once.
pub struct ProgressStore {
    source: Arc<dyn FragmentSource>,
    manifest: Manifest,
    fields: Vec<RwLock<MasterField>>,
    /// Stage the master readers consume batched prefetches from
    /// ([`ProgressStore::refine_to`] rides each delta through
    /// [`FragmentSource::read_many`] before the master decodes it).
    stage: Arc<FragmentStage>,
    decoded: AtomicU64,
    advances: AtomicU64,
    reuses: AtomicU64,
    adoptions: AtomicU64,
}

impl ProgressStore {
    /// Opens a store over `source`: one master reader per field (this
    /// fetches each field's metadata fragment, nothing more).
    pub fn open(source: Arc<dyn FragmentSource>) -> Result<Self> {
        let manifest = source.manifest()?;
        let stage = Arc::new(FragmentStage::new());
        let fields = (0..manifest.num_fields())
            .map(|i| {
                let mut reader = FieldReader::open(Arc::clone(&source), &manifest, i)?;
                reader.attach_stage(Arc::clone(&stage));
                let snap = Arc::new(snapshot_of(&reader));
                Ok(RwLock::new(MasterField { reader, snap }))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            source,
            manifest,
            fields,
            stage,
            decoded: AtomicU64::new(0),
            advances: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            adoptions: AtomicU64::new(0),
        })
    }

    /// The fragment source the masters decode from.
    pub fn source(&self) -> &Arc<dyn FragmentSource> {
        &self.source
    }

    /// The archive manifest the store serves.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    fn read_field(&self, field: usize) -> Result<RwLockReadGuard<'_, MasterField>> {
        self.fields
            .get(field)
            .ok_or_else(|| {
                PqrError::InvalidRequest(format!(
                    "field {field} out of range ({} fields)",
                    self.fields.len()
                ))
            })
            .map(|l| l.read().unwrap_or_else(|e| e.into_inner()))
    }

    fn write_field(&self, field: usize) -> RwLockWriteGuard<'_, MasterField> {
        self.fields[field]
            .write()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// The current snapshot of `field` (what a freshly opened session view
    /// adopts).
    pub fn adopt(&self, field: usize) -> Result<Arc<FieldSnapshot>> {
        let snap = Arc::clone(&self.read_field(field)?.snap);
        self.adoptions.fetch_add(1, Ordering::Relaxed);
        Ok(snap)
    }

    /// The store's current guaranteed bound for `field`.
    pub fn field_bound(&self, field: usize) -> f64 {
        self.read_field(field)
            .map_or(f64::INFINITY, |g| g.snap.bound)
    }

    /// True when a session view at `current_bound` could still improve by
    /// reading through the store: the store holds a deeper state already,
    /// or its master is not exhausted.
    pub fn can_improve(&self, field: usize, current_bound: f64) -> bool {
        self.read_field(field)
            .map(|g| !g.snap.exhausted || g.snap.bound < current_bound)
            .unwrap_or(false)
    }

    /// Refines `field` to bound `eb`, sharing work across sessions: if the
    /// store is already at least this deep the call is a lock-free-ish read
    /// (no fetch, no decode); otherwise the master decodes exactly the
    /// delta — batched through [`FragmentSource::read_many`] — under the
    /// field's write lock, and a new snapshot is published.
    pub fn refine_to(&self, field: usize, eb: f64) -> Result<Arc<FieldSnapshot>> {
        {
            let g = self.read_field(field)?;
            if g.snap.bound <= eb || g.snap.exhausted {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                self.adoptions.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&g.snap));
            }
        }
        let mut g = self.write_field(field);
        // another session may have decoded this depth while we waited
        if g.snap.bound <= eb || g.snap.exhausted {
            self.reuses.fetch_add(1, Ordering::Relaxed);
            self.adoptions.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&g.snap));
        }
        // batch the delta schedule in storage order; a failed prefetch
        // degrades to the reader's per-fragment fallback fetches
        let mut ids: Vec<FragmentId> = g
            .reader
            .plan_refine_to(eb)
            .into_iter()
            .map(|index| FragmentId {
                field: field as u32,
                index,
            })
            .collect();
        if ids.len() > 1 {
            ids.sort_by_key(|&id| {
                self.manifest
                    .fragment(id)
                    .map(|f| f.offset)
                    .unwrap_or(u64::MAX)
            });
            if let Ok(payloads) = self.source.read_many(&ids) {
                for (&id, payload) in ids.iter().zip(payloads) {
                    self.stage.put(id, payload);
                }
            }
        }
        let before = g.reader.fragments_decoded();
        g.reader.refine_to(eb)?;
        self.decoded
            .fetch_add(g.reader.fragments_decoded() - before, Ordering::Relaxed);
        self.advances.fetch_add(1, Ordering::Relaxed);
        self.adoptions.fetch_add(1, Ordering::Relaxed);
        g.snap = Arc::new(snapshot_of(&g.reader));
        Ok(Arc::clone(&g.snap))
    }

    /// Resolution-progressive view of `field` from the store's current
    /// (deepest) decode state — see
    /// [`FieldReader::reconstruct_at_resolution`].
    pub fn reconstruct_at_resolution(
        &self,
        field: usize,
        drop_finest: usize,
    ) -> Result<(Vec<f64>, Vec<usize>)> {
        self.read_field(field)?
            .reader
            .reconstruct_at_resolution(drop_finest)
    }

    /// Cumulative store tallies.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            fragments_decoded: self.decoded.load(Ordering::Relaxed),
            refine_advances: self.advances.load(Ordering::Relaxed),
            refine_reuses: self.reuses.load(Ordering::Relaxed),
            adoptions: self.adoptions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Dataset;
    use crate::fragstore::InMemorySource;
    use crate::refactored::Scheme;

    fn shared_source(scheme: Scheme) -> Arc<dyn FragmentSource> {
        let n = 1200;
        let mut ds = Dataset::new(&[n]);
        ds.add_field("u", (0..n).map(|i| (i as f64 * 0.01).sin() * 8.0).collect())
            .unwrap();
        ds.add_field("v", (0..n).map(|i| (i as f64 * 0.02).cos() * 3.0).collect())
            .unwrap();
        let bytes = ds
            .refactor_with_bounds(scheme, &(1..=8).map(|i| 10f64.powi(-i)).collect::<Vec<_>>())
            .unwrap()
            .to_bytes();
        Arc::new(InMemorySource::new(bytes).unwrap())
    }

    #[test]
    fn masters_decode_each_depth_once() {
        for scheme in Scheme::extended() {
            let source = shared_source(scheme);
            let store = ProgressStore::open(Arc::clone(&source)).unwrap();
            let tight = store.refine_to(0, 1e-5).unwrap();
            let after_tight = store.stats();
            let fetched_after_tight = source.stats().fetched_bytes;
            assert!(after_tight.fragments_decoded > 0, "{}", scheme.name());
            assert!(tight.bound <= 1e-5);

            // a looser request afterwards: pure reuse, no new source bytes
            let loose = store.refine_to(0, 1e-2).unwrap();
            let after_loose = store.stats();
            assert_eq!(
                after_loose.fragments_decoded,
                after_tight.fragments_decoded,
                "{}: looser request must not decode",
                scheme.name()
            );
            assert_eq!(after_loose.refine_reuses, after_tight.refine_reuses + 1);
            assert_eq!(source.stats().fetched_bytes, fetched_after_tight);
            // the reuse serves the deepest snapshot (monotone state)
            assert_eq!(loose.bound, tight.bound);
            assert!(Arc::ptr_eq(&loose.recon, &tight.recon));
        }
    }

    #[test]
    fn concurrent_refines_share_the_decode() {
        let source = shared_source(Scheme::PmgardHb);
        let store = Arc::new(ProgressStore::open(Arc::clone(&source)).unwrap());
        std::thread::scope(|s| {
            for k in 0..8 {
                let store = Arc::clone(&store);
                let eb = if k % 2 == 0 { 1e-5 } else { 1e-2 };
                s.spawn(move || {
                    let snap = store.refine_to(0, eb).unwrap();
                    assert!(snap.bound <= eb);
                });
            }
        });
        // sequential oracle: one cold store refined straight to the
        // tightest bound decodes the same fragments the race did
        let oracle_src = shared_source(Scheme::PmgardHb);
        let oracle = ProgressStore::open(oracle_src).unwrap();
        oracle.refine_to(0, 1e-5).unwrap();
        // the racing store may pass through the loose depth first (one
        // extra advance), but never decodes a fragment twice
        assert_eq!(
            store.stats().fragments_decoded,
            oracle.stats().fragments_decoded
        );
        assert_eq!(
            store.field_bound(0).to_bits(),
            oracle.field_bound(0).to_bits()
        );
    }

    #[test]
    fn out_of_range_field_is_an_error() {
        let store = ProgressStore::open(shared_source(Scheme::Psz3Delta)).unwrap();
        assert!(store.adopt(9).is_err());
        assert!(store.refine_to(9, 1e-3).is_err());
        assert!(!store.can_improve(9, 0.0));
    }
}
