//! Shared per-field decode state: the cross-request decode cache of the
//! retrieval **service** layer.
//!
//! The paper's Algorithms 1–4 refine *per request*, but the decoded prefix
//! of a progressive representation is a monotone asset: whatever depth the
//! tightest request so far reached satisfies every looser request for
//! free. A [`ProgressStore`] holds, per field, one **master**
//! [`FieldReader`] (the only place fragments of that field are ever
//! fetched and decoded) plus its last published [`FieldSnapshot`]. Session
//! readers opened with [`FieldReader::open_shared`] are views: they adopt
//! snapshots and, when they need a tighter bound than any previous request
//! reached, advance the master **once** past the delta — under the field's
//! write lock, so concurrent sessions racing for the same depth decode it
//! exactly once.
//!
//! The store's counters make decode-once *assertable*: master decodes are
//! tallied in [`StoreStats::fragments_decoded`], and a refinement served
//! entirely from existing state bumps [`StoreStats::refine_reuses`]
//! without touching the source (which tests cross-check against the
//! source's own [`SourceStats`](crate::fragstore::SourceStats)).
//!
//! ## Bounded memory
//!
//! Decoded state is charged against a [`StoreBudget`] (see
//! [`crate::pager`]). When the budget trips, the store **demotes** cold
//! fields: the master's state flips from `Resident` (reader + snapshot)
//! to `Demoted` (just the [`ReaderProgress`] marker plus the published
//! bound/byte accounting — a few dozen bytes). Because every bound model
//! is exact and metadata-only, the next request **rehydrates**
//! transparently: a fresh master replays the exact restore plan for the
//! demoted depth — compressed-fragment RAM tier first, then the source —
//! and lands bit-identically on the evicted state. Sessions never observe
//! the difference; only [`StoreStats::evictions`],
//! [`StoreStats::rehydration_decodes`]/[`StoreStats::rehydration_bytes`]
//! and the source tallies move. [`StoreStats::fragments_decoded`] counts
//! *advance* decodes only, so decode-once accounting degrades exactly by
//! the explicitly-counted rehydration replays and nothing else.

use crate::fragstore::{FragmentId, FragmentSource, FragmentStage, Manifest};
use crate::pager::{plan_evictions, EvictionCandidate, StoreBudget};
use crate::refactored::{FieldReader, ReaderProgress, Scheme};
use pqr_util::error::{PqrError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A published view of one field's shared decode state: everything a
/// session needs to serve requests at this depth without decoding.
#[derive(Debug, Clone)]
pub struct FieldSnapshot {
    /// The reconstruction at this depth (shared — adopting is an `Arc`
    /// clone plus one memcpy into the session's buffer).
    pub recon: Arc<Vec<f64>>,
    /// Guaranteed L∞ bound of `recon` versus the original.
    pub bound: f64,
    /// Cumulative bytes the master fetched to reach this state — what a
    /// fresh engine would have fetched to get here, which keeps session
    /// byte accounting identical to the unshared path.
    pub fetched: usize,
    /// True when the representation has no further fragments.
    pub exhausted: bool,
    /// The master reader's resumable progress marker at this depth.
    pub progress: ReaderProgress,
    /// True for the placeholder a session adopts from a **demoted** field:
    /// `recon` is the zero vector and `bound` the always-valid `max|x|`,
    /// while `fetched`/`progress` still carry the true demoted accounting.
    /// A cold view's first refinement always reads through the store
    /// (which rehydrates), so cold state is never served to a request.
    pub cold: bool,
}

fn snapshot_of(reader: &FieldReader) -> FieldSnapshot {
    FieldSnapshot {
        recon: Arc::new(reader.data().to_vec()),
        bound: reader.guaranteed_bound(),
        fetched: reader.total_fetched(),
        exhausted: reader.exhausted(),
        progress: reader.progress(),
        cold: false,
    }
}

/// What survives a demotion: the exact restore marker plus the published
/// accounting, so rehydration and session adoption both stay
/// bit-faithful. A few dozen bytes against megabytes of decoded state.
#[derive(Debug, Clone)]
struct DemotedField {
    progress: ReaderProgress,
    bound: f64,
    fetched: usize,
    exhausted: bool,
}

// one entry per field: a Demoted marker occupying a Resident-sized slot
// costs nothing at that scale, and boxing the hot variant would put an
// indirection on every refine
#[allow(clippy::large_enum_variant)]
enum MasterState {
    /// Decoded state in RAM: the only reader that ever fetches/decodes
    /// this field's fragments, plus the last published snapshot (replaced
    /// wholesale on every advance, so sessions holding older `Arc`s stay
    /// internally consistent).
    Resident {
        reader: FieldReader,
        snap: Arc<FieldSnapshot>,
    },
    /// Decoded state dropped by the pager; only the marker survives.
    Demoted(DemotedField),
}

struct MasterField {
    state: MasterState,
    /// Bytes currently charged against the budget for this field.
    charged: u64,
    /// Recency tick of the last request that touched this field (the
    /// LRU axis of the eviction policy).
    last_tick: AtomicU64,
}

/// Cumulative tallies of a [`ProgressStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Payload fragments the masters fetched and decoded **to advance** —
    /// each depth counted exactly once no matter how many sessions needed
    /// it, and never re-counted by rehydration replays.
    pub fragments_decoded: u64,
    /// Refinement requests that had to advance a master (decode work).
    pub refine_advances: u64,
    /// Refinement requests fully served by already-decoded state: zero
    /// source fetches, zero decodes.
    pub refine_reuses: u64,
    /// Snapshots handed to session views (at open and on refinement).
    pub adoptions: u64,
    /// Fields demoted by the pager (decoded state dropped to the marker).
    pub evictions: u64,
    /// Fragments re-decoded while rehydrating demoted fields — the exact
    /// price of eviction, kept separate from `fragments_decoded`.
    pub rehydration_decodes: u64,
    /// Bytes re-fetched **from the source** during rehydration (metadata +
    /// fragments the compressed RAM tier could not serve).
    pub rehydration_bytes: u64,
    /// Decoded bytes this store currently holds resident (its share of the
    /// budget's global tally).
    pub resident_bytes: u64,
    /// The budget ceiling in bytes; 0 = unbounded.
    pub budget_bytes: u64,
}

/// Shared, monotonically-deepening decode state for every field of one
/// archive. Cheap to share (`Arc`), safe to hit from many sessions: reads
/// are lock-free apart from a per-field `RwLock` read, and decodes
/// serialize per field so each bitplane is decoded once.
pub struct ProgressStore {
    source: Arc<dyn FragmentSource>,
    manifest: Manifest,
    fields: Vec<RwLock<MasterField>>,
    /// Stage the master readers consume batched prefetches from
    /// ([`ProgressStore::refine_to`] rides each delta through
    /// [`FragmentSource::read_many`] before the master decodes it).
    stage: Arc<FragmentStage>,
    /// The byte budget decoded state is charged against (possibly shared
    /// with other stores — the serving layer hands one budget to every
    /// dataset).
    budget: Arc<StoreBudget>,
    /// This store's id within the budget's fragment-tier key namespace.
    store_id: u64,
    /// Recency clock for the eviction policy.
    tick: AtomicU64,
    /// This store's own decoded-resident bytes (the per-dataset view of
    /// the budget's global tally).
    resident: AtomicU64,
    decoded: AtomicU64,
    advances: AtomicU64,
    reuses: AtomicU64,
    adoptions: AtomicU64,
    evictions: AtomicU64,
    rehydrated: AtomicU64,
    rehydrated_bytes: AtomicU64,
}

impl ProgressStore {
    /// Opens a store over `source` with the budget taken from the
    /// `PQR_STORE_BUDGET` environment variable (unset = unbounded). One
    /// master reader per field — this fetches each field's metadata
    /// fragment, nothing more.
    pub fn open(source: Arc<dyn FragmentSource>) -> Result<Self> {
        Self::open_with(source, Arc::new(StoreBudget::from_env()?))
    }

    /// Opens a store charging its decoded state against an explicit
    /// (possibly shared) [`StoreBudget`].
    pub fn open_with(source: Arc<dyn FragmentSource>, budget: Arc<StoreBudget>) -> Result<Self> {
        let manifest = source.manifest()?;
        let stage = Arc::new(FragmentStage::new());
        let mut store = Self {
            source,
            manifest,
            fields: Vec::new(),
            stage,
            store_id: budget.register_store(),
            budget,
            tick: AtomicU64::new(0),
            resident: AtomicU64::new(0),
            decoded: AtomicU64::new(0),
            advances: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            adoptions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rehydrated: AtomicU64::new(0),
            rehydrated_bytes: AtomicU64::new(0),
        };
        // construct, charge and enforce one master at a time: a reader
        // (recon + decode cursor) costs its full footprint from the moment
        // it is opened, so charging the whole fleet before enforcing once
        // would spike a bounded open to the entire working set
        for i in 0..store.manifest.num_fields() {
            let mut reader = FieldReader::open(Arc::clone(&store.source), &store.manifest, i)?;
            reader.attach_stage(Arc::clone(&store.stage));
            let snap = Arc::new(snapshot_of(&reader));
            let cost = master_cost(&reader, &snap);
            store.fields.push(RwLock::new(MasterField {
                state: MasterState::Resident { reader, snap },
                charged: cost,
                last_tick: AtomicU64::new(0),
            }));
            store.resident.fetch_add(cost, Ordering::Relaxed);
            store.budget.charge(cost);
            store.maybe_enforce(None);
        }
        Ok(store)
    }

    /// The fragment source the masters decode from.
    pub fn source(&self) -> &Arc<dyn FragmentSource> {
        &self.source
    }

    /// The archive manifest the store serves.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// The budget this store charges decoded state against.
    pub fn budget(&self) -> &Arc<StoreBudget> {
        &self.budget
    }

    fn read_field(&self, field: usize) -> Result<RwLockReadGuard<'_, MasterField>> {
        self.fields
            .get(field)
            .ok_or_else(|| {
                PqrError::InvalidRequest(format!(
                    "field {field} out of range ({} fields)",
                    self.fields.len()
                ))
            })
            .map(|l| l.read().unwrap_or_else(|e| e.into_inner()))
    }

    fn write_field(&self, field: usize) -> RwLockWriteGuard<'_, MasterField> {
        self.fields[field]
            .write()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn touch(&self, g: &MasterField) {
        g.last_tick.store(
            self.tick.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
    }

    /// The current snapshot of `field` (what a freshly opened session view
    /// adopts). Demoted fields hand out a **cold** placeholder — true
    /// `fetched`/`progress` accounting over a zero reconstruction at the
    /// always-valid `max|x|` bound — instead of rehydrating, so opening a
    /// session on a large archive never re-materialises evicted fields the
    /// session may not touch; the first refinement through the store
    /// rehydrates on demand.
    pub fn adopt(&self, field: usize) -> Result<Arc<FieldSnapshot>> {
        let snap = {
            let g = self.read_field(field)?;
            self.touch(&g);
            match &g.state {
                MasterState::Resident { snap, .. } => Arc::clone(snap),
                MasterState::Demoted(d) => Arc::new(self.cold_snapshot(field, d)),
            }
        };
        self.adoptions.fetch_add(1, Ordering::Relaxed);
        Ok(snap)
    }

    fn cold_snapshot(&self, field: usize, d: &DemotedField) -> FieldSnapshot {
        let entry = &self.manifest.fields[field];
        FieldSnapshot {
            recon: Arc::new(vec![0.0; self.manifest.num_elements()]),
            bound: entry.max_abs,
            fetched: d.fetched,
            exhausted: d.exhausted && d.bound >= entry.max_abs,
            progress: d.progress.clone(),
            cold: true,
        }
    }

    /// The store's current guaranteed bound for `field` (answered from the
    /// marker alone when the field is demoted — no rehydration).
    pub fn field_bound(&self, field: usize) -> f64 {
        self.read_field(field)
            .map_or(f64::INFINITY, |g| match &g.state {
                MasterState::Resident { snap, .. } => snap.bound,
                MasterState::Demoted(d) => d.bound,
            })
    }

    /// True when a session view at `current_bound` could still improve by
    /// reading through the store: the store holds (or can re-reach) a
    /// deeper state already, or its master is not exhausted. Metadata-only
    /// for demoted fields — asking never rehydrates.
    pub fn can_improve(&self, field: usize, current_bound: f64) -> bool {
        self.read_field(field)
            .map(|g| match &g.state {
                MasterState::Resident { snap, .. } => !snap.exhausted || snap.bound < current_bound,
                MasterState::Demoted(d) => !d.exhausted || d.bound < current_bound,
            })
            .unwrap_or(false)
    }

    /// Refines `field` to bound `eb`, sharing work across sessions: if the
    /// store is already at least this deep the call is a lock-free-ish read
    /// (no fetch, no decode); otherwise the master decodes exactly the
    /// delta — batched through [`FragmentSource::read_many`] — under the
    /// field's write lock, and a new snapshot is published. A demoted
    /// field is rehydrated first (compressed RAM tier, then source) and
    /// the replay tallied in the rehydration counters.
    pub fn refine_to(&self, field: usize, eb: f64) -> Result<Arc<FieldSnapshot>> {
        {
            let g = self.read_field(field)?;
            if let MasterState::Resident { snap, .. } = &g.state {
                if snap.bound <= eb || snap.exhausted {
                    self.touch(&g);
                    self.reuses.fetch_add(1, Ordering::Relaxed);
                    self.adoptions.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(snap));
                }
            }
        }
        let out = self.refine_locked(field, eb);
        self.maybe_enforce(Some(field));
        out
    }

    fn refine_locked(&self, field: usize, eb: f64) -> Result<Arc<FieldSnapshot>> {
        let mut g = self.write_field(field);
        self.touch(&g);
        self.ensure_resident(&mut g, field)?;
        let MasterState::Resident { reader, snap } = &mut g.state else {
            unreachable!("ensure_resident leaves the field resident");
        };
        // another session may have decoded this depth while we waited (or
        // the rehydrated depth already satisfies the request)
        if snap.bound <= eb || snap.exhausted {
            self.reuses.fetch_add(1, Ordering::Relaxed);
            self.adoptions.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(snap));
        }
        // batch the delta schedule in storage order; a failed prefetch
        // degrades to the reader's per-fragment fallback fetches
        let mut ids: Vec<FragmentId> = reader
            .plan_refine_to(eb)
            .into_iter()
            .map(|index| FragmentId {
                field: field as u32,
                index,
            })
            .collect();
        if ids.len() > 1 {
            ids.sort_by_key(|&id| {
                self.manifest
                    .fragment(id)
                    .map(|f| f.offset)
                    .unwrap_or(u64::MAX)
            });
            if let Ok(payloads) = self.source.read_many(&ids) {
                for (&id, payload) in ids.iter().zip(payloads) {
                    self.budget
                        .tier_put((self.store_id, id.field, id.index), Arc::clone(&payload));
                    self.stage.put(id, payload);
                }
            }
        }
        let before = reader.fragments_decoded();
        reader.refine_to(eb)?;
        let delta = reader.fragments_decoded() - before;
        if delta == 0 {
            // nothing decoded ⇒ reader state (and hence the snapshot) is
            // unchanged: keep the published `Arc` — no republish, no
            // memcpy — and count the request as a reuse
            self.reuses.fetch_add(1, Ordering::Relaxed);
            self.adoptions.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(snap));
        }
        self.decoded.fetch_add(delta, Ordering::Relaxed);
        self.advances.fetch_add(1, Ordering::Relaxed);
        self.adoptions.fetch_add(1, Ordering::Relaxed);
        *snap = Arc::new(snapshot_of(reader));
        let published = Arc::clone(snap);
        let cost = master_cost(reader, &published);
        self.recharge(&mut g, cost);
        Ok(published)
    }

    /// Rebuilds a demoted field's decoded state bit-identically: a fresh
    /// master replays the exact restore plan for the demoted marker,
    /// staging payloads from the compressed RAM tier first and batching
    /// the misses through one [`FragmentSource::read_many`]. Counts the
    /// replayed fragments and the source bytes the tier could not absorb.
    fn ensure_resident(&self, g: &mut MasterField, field: usize) -> Result<()> {
        let d = match &g.state {
            MasterState::Resident { .. } => return Ok(()),
            MasterState::Demoted(d) => d.clone(),
        };
        let mut reader = FieldReader::open(Arc::clone(&self.source), &self.manifest, field)?;
        reader.attach_stage(Arc::clone(&self.stage));
        let plan = reader.plan_restore(&d.progress)?;
        // multilevel/transform schemes re-fetch their metadata fragment at
        // open — that is source traffic rehydration caused
        let mut refetched: u64 = match reader.scheme() {
            Scheme::PmgardHb | Scheme::PmgardOb | Scheme::Pzfp => {
                self.manifest.fields[field].fragments[0].len
            }
            _ => 0,
        };
        let mut missing: Vec<FragmentId> = Vec::new();
        for &index in &plan {
            let id = FragmentId {
                field: field as u32,
                index,
            };
            match self.budget.tier_get(&(self.store_id, id.field, id.index)) {
                Some(payload) => self.stage.put(id, payload),
                None => missing.push(id),
            }
        }
        if !missing.is_empty() {
            missing.sort_by_key(|&id| {
                self.manifest
                    .fragment(id)
                    .map(|f| f.offset)
                    .unwrap_or(u64::MAX)
            });
            match self.source.read_many(&missing) {
                Ok(payloads) => {
                    for (&id, payload) in missing.iter().zip(payloads) {
                        refetched += payload.len() as u64;
                        self.budget
                            .tier_put((self.store_id, id.field, id.index), Arc::clone(&payload));
                        self.stage.put(id, payload);
                    }
                }
                Err(_) => {
                    // restore() falls back to per-fragment source fetches;
                    // the directory records the bytes it will move
                    for &id in &missing {
                        refetched += self.manifest.fragment(id)?.len;
                    }
                }
            }
        }
        reader.restore(&d.progress)?;
        debug_assert_eq!(
            reader.guaranteed_bound().to_bits(),
            d.bound.to_bits(),
            "rehydration must land on the demoted bound exactly"
        );
        debug_assert_eq!(reader.total_fetched(), d.fetched);
        self.rehydrated
            .fetch_add(plan.len() as u64, Ordering::Relaxed);
        self.rehydrated_bytes
            .fetch_add(refetched, Ordering::Relaxed);
        let snap = Arc::new(snapshot_of(&reader));
        let cost = master_cost(&reader, &snap);
        g.state = MasterState::Resident { reader, snap };
        self.recharge(g, cost);
        Ok(())
    }

    /// Swaps this field's budget charge to `cost`.
    fn recharge(&self, g: &mut MasterField, cost: u64) {
        self.budget.discharge(g.charged);
        self.resident.fetch_sub(g.charged, Ordering::Relaxed);
        g.charged = cost;
        self.resident.fetch_add(cost, Ordering::Relaxed);
        self.budget.charge(cost);
    }

    /// Demotes `field` if it is resident and not currently locked by a
    /// refinement: decoded state is dropped (sessions holding its
    /// snapshots keep them alive — that memory is session-owned), the
    /// marker survives, and the budget is credited. Returns whether a
    /// demotion happened. Public so operators and chaos tests can force
    /// eviction schedules; normal pressure goes through the budget.
    pub fn demote(&self, field: usize) -> bool {
        let Some(lock) = self.fields.get(field) else {
            return false;
        };
        let Ok(mut g) = lock.try_write() else {
            return false;
        };
        self.demote_locked(&mut g)
    }

    fn demote_locked(&self, g: &mut MasterField) -> bool {
        let MasterState::Resident { snap, .. } = &g.state else {
            return false;
        };
        let d = DemotedField {
            progress: snap.progress.clone(),
            bound: snap.bound,
            fetched: snap.fetched,
            exhausted: snap.exhausted,
        };
        g.state = MasterState::Demoted(d);
        self.budget.discharge(g.charged);
        self.resident.fetch_sub(g.charged, Ordering::Relaxed);
        g.charged = 0;
        self.evictions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Forces a full, unpinned enforcement pass, demoting cold fields
    /// until the decoded tier is back under its ceiling. Normal pressure
    /// runs automatically after every refinement with the active field
    /// pinned (see [`ProgressStore::demote`] for the policy rationale);
    /// this entry point is for quiesce points — operators, tests, or a
    /// serving layer between request bursts — where nothing is hot.
    pub fn enforce(&self) {
        self.maybe_enforce(None);
    }

    /// Runs the eviction policy when the budget is over its decoded
    /// ceiling. Lock-friendly by construction: candidates are gathered
    /// with `try_read`, demotions use `try_write`, so enforcement can
    /// never block or deadlock a refinement — a busy field simply is not
    /// a candidate this round.
    ///
    /// `exempt` pins the field whose refinement triggered enforcement: a
    /// request's engine re-touches its target field across refinement
    /// rounds, and evicting it mid-request would replay its whole decode
    /// every round. The pin means the decoded tier can exceed its ceiling
    /// by at most one field — the slack the budget's accounting (and the
    /// bench gates) allow for.
    fn maybe_enforce(&self, exempt: Option<usize>) {
        if !self.budget.over_decoded_limit() {
            return;
        }
        let need = self.budget.decoded_overage();
        let mut candidates = Vec::new();
        for (i, lock) in self.fields.iter().enumerate() {
            if Some(i) == exempt {
                continue;
            }
            let Ok(g) = lock.try_read() else { continue };
            if let MasterState::Resident { reader, snap } = &g.state {
                let cost = reader
                    .plan_restore(&snap.progress)
                    .map(|ids| {
                        ids.iter()
                            .map(|&ix| self.manifest.fields[i].fragments[ix as usize].len)
                            .sum()
                    })
                    .unwrap_or(u64::MAX);
                candidates.push(EvictionCandidate {
                    field: i,
                    last_tick: g.last_tick.load(Ordering::Relaxed),
                    rehydration_cost: cost,
                    resident_bytes: g.charged,
                });
            }
        }
        for f in plan_evictions(candidates, need) {
            if let Ok(mut g) = self.fields[f].try_write() {
                self.demote_locked(&mut g);
            }
            if !self.budget.over_decoded_limit() {
                break;
            }
        }
    }

    /// Resolution-progressive view of `field` from the store's current
    /// (deepest) decode state — see
    /// [`FieldReader::reconstruct_at_resolution`]. Rehydrates a demoted
    /// field first.
    pub fn reconstruct_at_resolution(
        &self,
        field: usize,
        drop_finest: usize,
    ) -> Result<(Vec<f64>, Vec<usize>)> {
        {
            let g = self.read_field(field)?;
            if let MasterState::Resident { reader, .. } = &g.state {
                return reader.reconstruct_at_resolution(drop_finest);
            }
        }
        let out = {
            let mut g = self.write_field(field);
            self.ensure_resident(&mut g, field)?;
            let MasterState::Resident { reader, .. } = &g.state else {
                unreachable!("ensure_resident leaves the field resident");
            };
            reader.reconstruct_at_resolution(drop_finest)
        };
        self.maybe_enforce(Some(field));
        out
    }

    /// Decoded bytes this store currently holds resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Cumulative store tallies.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            fragments_decoded: self.decoded.load(Ordering::Relaxed),
            refine_advances: self.advances.load(Ordering::Relaxed),
            refine_reuses: self.reuses.load(Ordering::Relaxed),
            adoptions: self.adoptions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rehydration_decodes: self.rehydrated.load(Ordering::Relaxed),
            rehydration_bytes: self.rehydrated_bytes.load(Ordering::Relaxed),
            resident_bytes: self.resident.load(Ordering::Relaxed),
            budget_bytes: self.budget.limit_bytes(),
        }
    }
}

/// Budget cost of one resident field: the published snapshot plus the
/// master reader's decoded state ([`FieldReader::resident_bytes`]).
fn master_cost(reader: &FieldReader, snap: &FieldSnapshot) -> u64 {
    (snap.recon.len() * 8 + std::mem::size_of::<FieldSnapshot>() + reader.resident_bytes()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Dataset;
    use crate::fragstore::InMemorySource;
    use crate::refactored::Scheme;

    fn shared_source(scheme: Scheme) -> Arc<dyn FragmentSource> {
        let n = 1200;
        let mut ds = Dataset::new(&[n]);
        ds.add_field("u", (0..n).map(|i| (i as f64 * 0.01).sin() * 8.0).collect())
            .unwrap();
        ds.add_field("v", (0..n).map(|i| (i as f64 * 0.02).cos() * 3.0).collect())
            .unwrap();
        let bytes = ds
            .refactor_with_bounds(scheme, &(1..=8).map(|i| 10f64.powi(-i)).collect::<Vec<_>>())
            .unwrap()
            .to_bytes();
        Arc::new(InMemorySource::new(bytes).unwrap())
    }

    #[test]
    fn masters_decode_each_depth_once() {
        for scheme in Scheme::extended() {
            let source = shared_source(scheme);
            let store = ProgressStore::open(Arc::clone(&source)).unwrap();
            let tight = store.refine_to(0, 1e-5).unwrap();
            let after_tight = store.stats();
            let fetched_after_tight = source.stats().fetched_bytes;
            assert!(after_tight.fragments_decoded > 0, "{}", scheme.name());
            assert!(tight.bound <= 1e-5);

            // a looser request afterwards: pure reuse, no new source bytes
            let loose = store.refine_to(0, 1e-2).unwrap();
            let after_loose = store.stats();
            assert_eq!(
                after_loose.fragments_decoded,
                after_tight.fragments_decoded,
                "{}: looser request must not decode",
                scheme.name()
            );
            assert_eq!(after_loose.refine_reuses, after_tight.refine_reuses + 1);
            assert_eq!(source.stats().fetched_bytes, fetched_after_tight);
            // the reuse serves the deepest snapshot (monotone state)
            assert_eq!(loose.bound, tight.bound);
            assert!(Arc::ptr_eq(&loose.recon, &tight.recon));
        }
    }

    #[test]
    fn concurrent_refines_share_the_decode() {
        let source = shared_source(Scheme::PmgardHb);
        let store = Arc::new(ProgressStore::open(Arc::clone(&source)).unwrap());
        std::thread::scope(|s| {
            for k in 0..8 {
                let store = Arc::clone(&store);
                let eb = if k % 2 == 0 { 1e-5 } else { 1e-2 };
                s.spawn(move || {
                    let snap = store.refine_to(0, eb).unwrap();
                    assert!(snap.bound <= eb);
                });
            }
        });
        // sequential oracle: one cold store refined straight to the
        // tightest bound decodes the same fragments the race did
        let oracle_src = shared_source(Scheme::PmgardHb);
        let oracle = ProgressStore::open(oracle_src).unwrap();
        oracle.refine_to(0, 1e-5).unwrap();
        // the racing store may pass through the loose depth first (one
        // extra advance), but never decodes a fragment twice
        assert_eq!(
            store.stats().fragments_decoded,
            oracle.stats().fragments_decoded
        );
        assert_eq!(
            store.field_bound(0).to_bits(),
            oracle.field_bound(0).to_bits()
        );
    }

    #[test]
    fn out_of_range_field_is_an_error() {
        let store = ProgressStore::open(shared_source(Scheme::Psz3Delta)).unwrap();
        assert!(store.adopt(9).is_err());
        assert!(store.refine_to(9, 1e-3).is_err());
        assert!(!store.can_improve(9, 0.0));
    }

    #[test]
    fn demotion_and_rehydration_are_bit_exact() {
        for scheme in Scheme::extended() {
            let source = shared_source(scheme);
            let store = ProgressStore::open(Arc::clone(&source)).unwrap();
            let deep = store.refine_to(0, 1e-5).unwrap();
            let decoded_before = store.stats().fragments_decoded;
            let resident_before = store.resident_bytes();

            assert!(
                store.demote(0),
                "{}: resident field must demote",
                scheme.name()
            );
            assert!(
                !store.demote(0),
                "{}: demoting twice is a no-op",
                scheme.name()
            );
            assert!(
                store.resident_bytes() < resident_before,
                "{}: demotion must release budget",
                scheme.name()
            );
            // metadata answers survive demotion without rehydrating
            assert_eq!(store.field_bound(0).to_bits(), deep.bound.to_bits());
            let s = store.stats();
            assert_eq!(s.evictions, 1);
            assert_eq!(s.rehydration_decodes, 0, "{}", scheme.name());

            // a request at the old depth rehydrates bit-identically
            let back = store.refine_to(0, 1e-5).unwrap();
            assert_eq!(back.recon, deep.recon, "{}", scheme.name());
            assert_eq!(back.bound.to_bits(), deep.bound.to_bits());
            assert_eq!(back.fetched, deep.fetched);
            assert_eq!(back.progress, deep.progress);
            let s = store.stats();
            assert_eq!(
                s.fragments_decoded,
                decoded_before,
                "{}: rehydration must not count as advance decodes",
                scheme.name()
            );
            assert!(s.rehydration_decodes > 0, "{}", scheme.name());
        }
    }

    #[test]
    fn cold_adoption_never_rehydrates() {
        let source = shared_source(Scheme::PmgardHb);
        let store = ProgressStore::open(Arc::clone(&source)).unwrap();
        let deep = store.refine_to(0, 1e-4).unwrap();
        store.demote(0);
        let bytes_before = source.stats().fetched_bytes;
        let cold = store.adopt(0).unwrap();
        assert!(cold.cold);
        assert_eq!(cold.fetched, deep.fetched, "true accounting survives");
        assert_eq!(cold.progress, deep.progress);
        assert!(cold.recon.iter().all(|&x| x == 0.0));
        assert_eq!(
            source.stats().fetched_bytes,
            bytes_before,
            "adopting a demoted field must not touch the source"
        );
        assert_eq!(store.stats().rehydration_decodes, 0);
    }

    #[test]
    fn tight_budget_evicts_and_stays_bounded() {
        let source = shared_source(Scheme::PmgardHb);
        // room for roughly one decoded field (each ≈ 1200·8·4 B here)
        let budget = Arc::new(StoreBudget::with_limit(48 << 10));
        let store = ProgressStore::open_with(Arc::clone(&source), Arc::clone(&budget)).unwrap();
        store.refine_to(0, 1e-6).unwrap();
        store.refine_to(1, 1e-6).unwrap();
        let s = store.stats();
        assert!(s.evictions > 0, "two deep fields cannot both stay resident");
        // pressure enforcement pins the field being refined, so the tier
        // may end one field over its ceiling; an unpinned pass at a
        // quiesce point always recovers it
        store.enforce();
        assert!(
            !budget.over_decoded_limit(),
            "resident {} over decoded ceiling of {}",
            budget.resident_bytes(),
            budget.limit_bytes()
        );
        // and the answers still match an unbounded oracle byte-for-byte
        let oracle = ProgressStore::open(shared_source(Scheme::PmgardHb)).unwrap();
        for field in 0..2 {
            let a = store.refine_to(field, 1e-6).unwrap();
            let b = oracle.refine_to(field, 1e-6).unwrap();
            assert_eq!(a.recon, b.recon, "field {field}");
            assert_eq!(a.bound.to_bits(), b.bound.to_bits());
            assert_eq!(a.fetched, b.fetched);
        }
    }
}
