//! The three progressive representations of §V-B behind one interface.
//!
//! | variant | paper name | mechanics |
//! |---|---|---|
//! | [`Scheme::Psz3`] | PSZ3 | independent SZ3 snapshots at pre-set bounds; a request fetches the smallest adequate snapshot *in full* (cross-snapshot redundancy → stair-case rate curves) |
//! | [`Scheme::Psz3Delta`] | PSZ3-delta | snapshot *i* compresses the residual left by snapshots 1..i−1; a request fetches the prefix 1..k (no redundancy) |
//! | [`Scheme::PmgardHb`] | PMGARD-HB | multilevel hierarchical-basis decomposition + bitplanes (the paper's optimised representation) |
//! | [`Scheme::PmgardOb`] | PMGARD | same with MGARD's orthogonal basis (L2 projection) — kept for the Fig. 3 comparison |
//! | [`Scheme::Pzfp`] | (extension) | ZFP-style block transform + negabinary bitplanes — the paper's other progressive-precision family (its ref. \[4\]), exercised by the ablation benches |
//!
//! Every variant satisfies Definition 1: refactor once into fragments,
//! reconstruct from a prefix of fragments under a guaranteed L∞ bound, and
//! recompose incrementally as more fragments arrive.

use crate::fragstore::{self, FragmentId, FragmentInfo, FragmentSource, FragmentStage, Manifest};
use pqr_mgard::{Basis, MgardCursor, MgardMeta, MgardRefactorer, MgardStream};
use pqr_sz::{SzCompressor, SzConfig};
use pqr_util::byteio::{ByteReader, ByteWriter};
use pqr_util::error::{PqrError, Result};
use pqr_util::par::par_dynamic;
use pqr_util::stats;
use pqr_zfp::{ZfpCursor, ZfpMeta, ZfpRefactorer, ZfpStream};
use std::sync::Arc;

/// Which progressive representation to refactor into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheme {
    /// Multi-snapshot error-bounded compression (PSZ3).
    Psz3,
    /// Residual/delta compression (PSZ3-delta).
    Psz3Delta,
    /// Multilevel + bitplanes, hierarchical basis (PMGARD-HB) — the paper's
    /// recommended representation.
    #[default]
    PmgardHb,
    /// Multilevel + bitplanes, orthogonal basis (PMGARD).
    PmgardOb,
    /// ZFP-style block transform + negabinary bitplanes. An extension beyond
    /// the paper's three evaluated schemes: the paper's related work names
    /// ZFP as the other progressive-precision family, and this variant lets
    /// the benches compare it under the same QoI engine.
    Pzfp,
}

impl Scheme {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Psz3 => "PSZ3",
            Scheme::Psz3Delta => "PSZ3-delta",
            Scheme::PmgardHb => "PMGARD-HB",
            Scheme::PmgardOb => "PMGARD",
            Scheme::Pzfp => "PZFP",
        }
    }

    /// The paper's schemes, in the order its figures list them. The PZFP
    /// extension is deliberately excluded so the figure harnesses reproduce
    /// exactly the paper's curves; use [`Scheme::extended`] to include it.
    pub fn all() -> [Scheme; 4] {
        [
            Scheme::Psz3,
            Scheme::Psz3Delta,
            Scheme::PmgardOb,
            Scheme::PmgardHb,
        ]
    }

    /// Every representation in the workspace, paper schemes first.
    pub fn extended() -> [Scheme; 5] {
        [
            Scheme::Psz3,
            Scheme::Psz3Delta,
            Scheme::PmgardOb,
            Scheme::PmgardHb,
            Scheme::Pzfp,
        ]
    }

    pub(crate) fn tag(self) -> u8 {
        match self {
            Scheme::Psz3 => 0,
            Scheme::Psz3Delta => 1,
            Scheme::PmgardHb => 2,
            Scheme::PmgardOb => 3,
            Scheme::Pzfp => 4,
        }
    }

    pub(crate) fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(Scheme::Psz3),
            1 => Some(Scheme::Psz3Delta),
            2 => Some(Scheme::PmgardHb),
            3 => Some(Scheme::PmgardOb),
            4 => Some(Scheme::Pzfp),
            _ => None,
        }
    }
}

/// The default pre-set relative error bounds for snapshot-based schemes:
/// `10^-1 … 10^-18` (§VI-C uses 18 because S3D needs high precision).
pub fn default_snapshot_bounds() -> Vec<f64> {
    (1..=18).map(|i| 10f64.powi(-i)).collect()
}

/// One stored snapshot of a snapshot-based scheme.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Absolute L∞ bound this snapshot guarantees (cumulatively, for delta).
    pub eb_abs: f64,
    /// Compressed payload.
    pub blob: Vec<u8>,
}

/// A refactored progressive field (archive-side artifact).
#[derive(Debug, Clone)]
pub struct RefactoredField {
    pub(crate) scheme: Scheme,
    pub(crate) dims: Vec<usize>,
    /// `max − min` of the original data (drives relative bounds).
    pub(crate) range: f64,
    /// `max |x|` of the original data (initial zero-vector error bound).
    pub(crate) max_abs: f64,
    pub(crate) body: Body,
}

#[derive(Debug, Clone)]
pub(crate) enum Body {
    Snapshots(Vec<Snapshot>),
    Mgard(MgardStream),
    Zfp(ZfpStream),
}

impl RefactoredField {
    /// Refactors `data` under the chosen scheme with the default snapshot
    /// bound ladder.
    pub fn refactor(scheme: Scheme, data: &[f64], dims: &[usize]) -> Result<Self> {
        Self::refactor_with_bounds(scheme, data, dims, &default_snapshot_bounds())
    }

    /// Refactors with an explicit relative-bound ladder (snapshot schemes
    /// only; ignored by the PMGARD variants, which are ladder-free).
    pub fn refactor_with_bounds(
        scheme: Scheme,
        data: &[f64],
        dims: &[usize],
        rel_bounds: &[f64],
    ) -> Result<Self> {
        Self::refactor_with_bounds_workers(scheme, data, dims, rel_bounds, 1)
    }

    /// [`RefactoredField::refactor_with_bounds`] with round parallelism
    /// *inside* one field: PSZ3 fans the independent per-bound compressions
    /// out, the PMGARD variants encode their levels concurrently, and PZFP
    /// splits its coefficient-block pass. The produced fragments are
    /// byte-identical at every worker count (`workers ≤ 1` runs the exact
    /// serial order); PSZ3-delta's residual chain is inherently sequential
    /// and stays serial regardless of `workers`.
    pub fn refactor_with_bounds_workers(
        scheme: Scheme,
        data: &[f64],
        dims: &[usize],
        rel_bounds: &[f64],
        workers: usize,
    ) -> Result<Self> {
        let n: usize = dims.iter().product();
        if n != data.len() {
            return Err(PqrError::ShapeMismatch(format!(
                "dims {:?} = {n} elements, data has {}",
                dims,
                data.len()
            )));
        }
        let range = stats::value_range(data);
        let (lo, hi) = stats::min_max(data);
        let max_abs = lo.abs().max(hi.abs());
        // Degenerate (constant/empty) data still needs a usable ladder.
        let scale = if range > 0.0 { range } else { 1.0 };

        let body = match scheme {
            Scheme::Psz3 => {
                // independent snapshots: each bound compresses the original
                // data, so the 18-compression ladder parallelises freely
                let snaps = par_dynamic(rel_bounds.len(), workers, |k| {
                    let sz = SzCompressor::new(SzConfig::default());
                    let eb = rel_bounds[k] * scale;
                    sz.compress(data, dims, eb)
                        .map(|blob| Snapshot { eb_abs: eb, blob })
                })
                .into_iter()
                .collect::<Result<Vec<_>>>()?;
                Body::Snapshots(snaps)
            }
            Scheme::Psz3Delta => {
                // snapshot i compresses the residual of snapshots 1..i−1:
                // a sequential chain no worker count can split
                let sz = SzCompressor::new(SzConfig::default());
                let mut snaps = Vec::with_capacity(rel_bounds.len());
                let mut residual = data.to_vec();
                for &rb in rel_bounds {
                    let eb = rb * scale;
                    let blob = sz.compress(&residual, dims, eb)?;
                    let (recon, _) = sz.decompress(&blob)?;
                    for (r, d) in residual.iter_mut().zip(&recon) {
                        *r -= d;
                    }
                    snaps.push(Snapshot { eb_abs: eb, blob });
                }
                Body::Snapshots(snaps)
            }
            Scheme::PmgardHb => Body::Mgard(
                MgardRefactorer::new(Basis::Hierarchical)
                    .refactor_with_workers(data, dims, workers)?,
            ),
            Scheme::PmgardOb => Body::Mgard(
                MgardRefactorer::new(Basis::Orthogonal)
                    .refactor_with_workers(data, dims, workers)?,
            ),
            Scheme::Pzfp => {
                Body::Zfp(ZfpRefactorer::new().refactor_with_workers(data, dims, workers)?)
            }
        };
        Ok(Self {
            scheme,
            dims: dims.to_vec(),
            range,
            max_abs,
            body,
        })
    }

    /// The representation this field was refactored into.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Array shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True for zero-element fields.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `max − min` of the original data.
    pub fn value_range(&self) -> f64 {
        self.range
    }

    /// `max |x|` of the original data.
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }

    /// Total archived bytes.
    pub fn total_bytes(&self) -> usize {
        match &self.body {
            Body::Snapshots(s) => s.iter().map(|x| x.blob.len()).sum(),
            Body::Mgard(m) => m.total_bytes(),
            Body::Zfp(z) => z.total_bytes(),
        }
    }

    /// Opens a progressive reader at zero fetched fragments, served from
    /// a shared copy of this resident field (which is itself a
    /// [`FragmentSource`]) — the same code path file-backed and remote
    /// readers go through. The field is cloned behind an `Arc` so the
    /// reader owns its source and carries no borrow.
    pub fn reader(&self) -> FieldReader {
        let manifest = fragstore::build_manifest(&self.dims, &[("", self)], None, &[], 0);
        FieldReader::open(Arc::new(self.clone()), &manifest, 0)
            .expect("resident field serves its own fragments consistently")
    }

    /// Opens a reader restored to a previously saved [`ReaderProgress`]
    /// (from [`FieldReader::progress`]) by deterministically replaying the
    /// recorded fetches against this archive. The resumed reader's
    /// reconstruction, guaranteed bound and cumulative byte accounting match
    /// the original reader's state exactly.
    pub fn reader_resumed(&self, progress: &ReaderProgress) -> Result<FieldReader> {
        let mut reader = self.reader();
        reader.restore(progress)?;
        Ok(reader)
    }

    /// Serializes the archive artifact into the fragment-addressed
    /// container format (a single-field archive — see [`crate::fragstore`]
    /// for the layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        fragstore::write_container(&self.dims, &[("", self)], None, &[])
    }

    /// Deserializes (fully materialises) a single-field archive written by
    /// [`RefactoredField::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let src = fragstore::InMemorySource::new(bytes.to_vec())?;
        let manifest = src.manifest()?;
        if manifest.num_fields() != 1 {
            return Err(PqrError::CorruptStream(format!(
                "expected a single-field archive, found {} fields",
                manifest.num_fields()
            )));
        }
        fragstore::load_field(&src, &manifest, 0)
    }

    /// Sizes of the individually fetchable fragments, in storage order — the
    /// transfer simulator uses this to model per-segment movement.
    pub fn fragment_sizes(&self) -> Vec<usize> {
        match &self.body {
            Body::Snapshots(s) => s.iter().map(|x| x.blob.len()).collect(),
            Body::Mgard(m) => {
                let mut v = vec![m.metadata_bytes()];
                v.extend(m.segment_sizes());
                v
            }
            Body::Zfp(z) => {
                let mut v = vec![z.metadata_bytes()];
                v.extend(z.segment_sizes());
                v
            }
        }
    }
}

/// Resumable progress marker of a [`FieldReader`] — everything needed to
/// reconstruct the reader's exact state against the same archive in another
/// process (Fig. 1's retrieval side is long-lived; sessions outlive
/// processes). Replay is deterministic, so restoring reproduces both the
/// reconstruction and the cumulative byte accounting bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReaderProgress {
    /// Snapshot schemes: index one past the last fetched snapshot, plus the
    /// session's cumulative fetched bytes (not derivable from the index —
    /// plain PSZ3 may have re-fetched several snapshots on the way).
    Snapshots {
        /// One past the last fetched snapshot index.
        next: u32,
        /// Cumulative fetched bytes at save time.
        fetched: u64,
    },
    /// PMGARD schemes: planes consumed per level.
    Mgard {
        /// Fetched plane count per multilevel level.
        planes: Vec<u32>,
    },
    /// PZFP: global planes consumed.
    Zfp {
        /// Fetched plane count.
        planes: u32,
    },
}

impl ReaderProgress {
    /// Serializes the marker.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            ReaderProgress::Snapshots { next, fetched } => {
                w.put_u8(0);
                w.put_u32(*next);
                w.put_u64(*fetched);
            }
            ReaderProgress::Mgard { planes } => {
                w.put_u8(1);
                w.put_u32(planes.len() as u32);
                for &p in planes {
                    w.put_u32(p);
                }
            }
            ReaderProgress::Zfp { planes } => {
                w.put_u8(2);
                w.put_u32(*planes);
            }
        }
        w.finish()
    }

    /// Deserializes a marker written by [`ReaderProgress::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let p = Self::read(&mut r)?;
        if r.remaining() != 0 {
            return Err(PqrError::CorruptStream("trailing progress bytes".into()));
        }
        Ok(p)
    }

    pub(crate) fn read(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(match r.get_u8()? {
            0 => ReaderProgress::Snapshots {
                next: r.get_u32()?,
                fetched: r.get_u64()?,
            },
            1 => {
                let n = r.get_u32()? as usize;
                if n > 64 {
                    return Err(PqrError::CorruptStream(format!("{n} levels in progress")));
                }
                let mut planes = Vec::with_capacity(n);
                for _ in 0..n {
                    planes.push(r.get_u32()?);
                }
                ReaderProgress::Mgard { planes }
            }
            2 => ReaderProgress::Zfp {
                planes: r.get_u32()?,
            },
            t => return Err(PqrError::CorruptStream(format!("unknown progress tag {t}"))),
        })
    }

    pub(crate) fn write(&self, w: &mut ByteWriter) {
        w.put_raw(&self.to_bytes());
    }
}

/// Progressive reader over one field of a fragment-addressed archive.
///
/// Maintains the current reconstruction, the guaranteed L∞ bound, and the
/// cumulative number of fetched bytes. Every byte enters through the
/// [`FragmentSource`] the reader **owns a shared handle to** — a resident
/// dataset, a serialized buffer, a file read by ranges, or a (simulated)
/// remote store all drive this same code path. Readers carry no borrows,
/// so sessions built on them can move across threads and outlive the scope
/// that opened them.
///
/// A reader opened through [`FieldReader::open_shared`] is a **view onto a
/// [`ProgressStore`]** instead: it never decodes or fetches itself — every
/// refinement adopts the store's shared decode state, so concurrent
/// sessions pay for each bitplane exactly once.
///
/// [`ProgressStore`]: crate::store::ProgressStore
pub struct FieldReader {
    source: Arc<dyn FragmentSource>,
    field: u32,
    scheme: Scheme,
    /// The field's fragment directory (from the manifest).
    frags: Vec<FragmentInfo>,
    /// Prefetch stage consulted before the source (plan execution parks
    /// batched payloads here; `None` = always fetch per fragment).
    stage: Option<Arc<FragmentStage>>,
    recon: Recon,
    bound: f64,
    fetched: usize,
    /// Payload fragments this reader itself fetched and decoded. Shared
    /// (store-backed) readers never decode, so theirs stays zero — the
    /// counter the decode-once tests assert on.
    consumed: u64,
    /// Worker budget for reconstruction fan-out (multilevel recompose /
    /// block decode). `1` until the owner configures it; every worker
    /// count reconstructs bit-identically.
    workers: usize,
    /// Multilevel recompose axis passes performed rebuilding this reader's
    /// reconstruction (zero for non-multilevel schemes).
    recompose_passes: u64,
    /// Refinement rounds answered from the memoized reconstruction —
    /// zero-decode rounds that performed zero recompose work.
    recon_cache_hits: u64,
    /// Wall-clock nanoseconds spent rebuilding reconstructions.
    reconstruct_nanos: u64,
    state: ReaderState,
}

/// A reader's current reconstruction. Decoding readers own and mutate
/// their buffer; store-backed views hold the store's published `Arc`, so
/// adopting a snapshot costs a refcount bump, never an O(n) copy. The
/// owned buffer is itself `Arc`-wrapped so a shared store can **publish**
/// its master's reconstruction by sharing the same allocation — mutation
/// goes through [`Arc::make_mut`], which copies only when a published
/// epoch still pins the buffer (and only on the accumulate path; the
/// other schemes replace the reconstruction wholesale).
enum Recon {
    Owned(Arc<Vec<f64>>),
    Adopted(Arc<Vec<f64>>),
}

impl Recon {
    fn as_slice(&self) -> &[f64] {
        match self {
            Recon::Owned(v) => v,
            Recon::Adopted(a) => a,
        }
    }

    /// Mutable access for the decoding states (which only ever hold
    /// `Owned` buffers — shared views never mutate their reconstruction).
    fn owned_mut(&mut self) -> &mut Vec<f64> {
        match self {
            Recon::Owned(v) => Arc::make_mut(v),
            Recon::Adopted(_) => unreachable!("shared views never decode into their buffer"),
        }
    }

    /// The reconstruction as a shareable `Arc` — a refcount bump, no copy.
    fn share(&self) -> Arc<Vec<f64>> {
        match self {
            Recon::Owned(v) => Arc::clone(v),
            Recon::Adopted(a) => Arc::clone(a),
        }
    }
}

enum ReaderState {
    Snapshots {
        /// Next snapshot index to fetch (all below are fetched).
        next: usize,
        /// Delta mode: reconstruction accumulates; plain mode: replaces.
        delta: bool,
    },
    Mgard {
        cursor: MgardCursor,
        /// Fragment index of each level's first plane (index 0 is the
        /// metadata fragment).
        level_base: Vec<u32>,
    },
    Zfp(ZfpCursor),
    /// A view onto a shared per-field decode state: refinement adopts the
    /// store's snapshots instead of fetching/decoding locally.
    Shared {
        store: Arc<crate::store::ProgressStore>,
        snap: Arc<crate::store::FieldSnapshot>,
    },
}

impl FieldReader {
    /// Opens a reader on field `field` of `manifest`, fetching the field's
    /// metadata fragment (multilevel/transform schemes) through `source`.
    pub fn open(
        source: Arc<dyn FragmentSource>,
        manifest: &Manifest,
        field: usize,
    ) -> Result<Self> {
        let entry = manifest.fields.get(field).ok_or_else(|| {
            PqrError::InvalidRequest(format!(
                "field {field} out of range ({} fields)",
                manifest.num_fields()
            ))
        })?;
        let n = manifest.num_elements();
        let frags = entry.fragments.clone();
        let fid = field as u32;
        let fetch_meta = || {
            if frags.is_empty() {
                return Err(PqrError::CorruptStream(format!(
                    "{} field without a metadata fragment",
                    entry.scheme.name()
                )));
            }
            source.fetch(FragmentId {
                field: fid,
                index: 0,
            })
        };
        let (mut open_passes, mut open_nanos) = (0u64, 0u64);
        let (state, recon, bound, fetched) = match entry.scheme {
            Scheme::Psz3 | Scheme::Psz3Delta => (
                ReaderState::Snapshots {
                    next: 0,
                    delta: entry.scheme == Scheme::Psz3Delta,
                },
                vec![0.0; n],
                entry.max_abs,
                0,
            ),
            Scheme::PmgardHb | Scheme::PmgardOb => {
                let meta_bytes = fetch_meta()?;
                let meta = MgardMeta::from_bytes(&meta_bytes)?;
                if meta.dims() != manifest.dims {
                    return Err(PqrError::ShapeMismatch(format!(
                        "field metadata shape {:?} != archive {:?}",
                        meta.dims(),
                        manifest.dims
                    )));
                }
                if frags.len() != 1 + meta.total_planes() {
                    return Err(PqrError::CorruptStream(format!(
                        "directory has {} fragments, metadata implies {}",
                        frags.len(),
                        1 + meta.total_planes()
                    )));
                }
                let mut level_base = Vec::with_capacity(meta.num_levels());
                let mut base = 1u32;
                for lm in meta.levels() {
                    level_base.push(base);
                    base += lm.num_planes;
                }
                let cursor = MgardCursor::new(meta);
                let bound = cursor.guaranteed_bound();
                // the metadata (always fetched) carries the root value, so
                // the zero-plane reconstruction is already meaningful
                let t0 = std::time::Instant::now();
                let mut recon = Vec::new();
                open_passes = cursor.reconstruct_into(&mut recon, 1);
                open_nanos = t0.elapsed().as_nanos() as u64;
                let fetched = meta_bytes.len();
                (
                    ReaderState::Mgard { cursor, level_base },
                    recon,
                    bound,
                    fetched,
                )
            }
            Scheme::Pzfp => {
                let meta_bytes = fetch_meta()?;
                let meta = ZfpMeta::from_bytes(&meta_bytes)?;
                if meta.dims() != manifest.dims {
                    return Err(PqrError::ShapeMismatch(format!(
                        "field metadata shape {:?} != archive {:?}",
                        meta.dims(),
                        manifest.dims
                    )));
                }
                if frags.len() != 1 + meta.num_planes() as usize {
                    return Err(PqrError::CorruptStream(format!(
                        "directory has {} fragments, metadata implies {}",
                        frags.len(),
                        1 + meta.num_planes()
                    )));
                }
                let cursor = ZfpCursor::new(meta);
                // the zfp bound model can exceed max|x| before any plane
                // arrives; the zero-vector bound is the better of the two
                let bound = cursor.guaranteed_bound().min(entry.max_abs);
                let fetched = meta_bytes.len();
                (ReaderState::Zfp(cursor), vec![0.0; n], bound, fetched)
            }
        };
        Ok(Self {
            source,
            field: fid,
            scheme: entry.scheme,
            frags,
            stage: None,
            recon: Recon::Owned(Arc::new(recon)),
            bound,
            fetched,
            consumed: 0,
            workers: 1,
            recompose_passes: open_passes,
            recon_cache_hits: 0,
            reconstruct_nanos: open_nanos,
            state,
        })
    }

    /// Opens a reader as a **view** onto field `field` of a shared
    /// [`ProgressStore`]: no metadata fetch, no local cursor — the reader
    /// adopts the store's current snapshot immediately and every
    /// [`FieldReader::refine_to`] call reads through (and monotonically
    /// advances) the shared decode state. A view never touches the source
    /// itself, so a request the store has already reached costs zero
    /// fetches and zero decodes.
    ///
    /// [`ProgressStore`]: crate::store::ProgressStore
    pub fn open_shared(
        store: Arc<crate::store::ProgressStore>,
        manifest: &Manifest,
        field: usize,
    ) -> Result<Self> {
        let entry = manifest.fields.get(field).ok_or_else(|| {
            PqrError::InvalidRequest(format!(
                "field {field} out of range ({} fields)",
                manifest.num_fields()
            ))
        })?;
        let snap = store.adopt(field)?;
        Ok(Self {
            source: Arc::clone(store.source()),
            field: field as u32,
            scheme: entry.scheme,
            frags: entry.fragments.clone(),
            stage: None,
            recon: Recon::Adopted(Arc::clone(&snap.recon)),
            bound: snap.bound,
            fetched: snap.fetched,
            consumed: 0,
            workers: 1,
            recompose_passes: 0,
            recon_cache_hits: 0,
            reconstruct_nanos: 0,
            state: ReaderState::Shared { store, snap },
        })
    }

    /// Sets the worker budget for reconstruction fan-out. Reconstructions
    /// are bit-identical at every worker count, so this only affects wall
    /// clock, never results.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Multilevel recompose axis passes performed rebuilding this reader's
    /// reconstruction (interp and correction passes each count one).
    pub fn recompose_passes(&self) -> u64 {
        self.recompose_passes
    }

    /// Refinement rounds answered from the memoized reconstruction:
    /// zero-decode rounds perform zero recompose work and land here.
    pub fn recon_cache_hits(&self) -> u64 {
        self.recon_cache_hits
    }

    /// Wall-clock nanoseconds spent rebuilding reconstructions.
    pub fn reconstruct_nanos(&self) -> u64 {
        self.reconstruct_nanos
    }

    /// Takes the current reconstruction's allocation for an in-place
    /// rebuild: a uniquely owned buffer is reused; one pinned by a
    /// published snapshot (or adopted from a store) is left to its owners
    /// and a fresh allocation starts instead — never an O(n) copy, since
    /// the rebuild overwrites every element anyway.
    fn take_recon_buf(&mut self) -> Vec<f64> {
        match std::mem::replace(&mut self.recon, Recon::Owned(Arc::new(Vec::new()))) {
            Recon::Owned(arc) => Arc::try_unwrap(arc).unwrap_or_default(),
            Recon::Adopted(_) => Vec::new(),
        }
    }

    /// Attaches a prefetch stage: subsequent fragment fetches consume
    /// staged payloads before falling back to the source. The retrieval
    /// engine shares one stage across its readers so batched rounds land
    /// where the per-fragment consume path expects them.
    pub fn attach_stage(&mut self, stage: Arc<FragmentStage>) {
        self.stage = Some(stage);
    }

    /// Fetches payload fragment `index` of this field, accounting its bytes.
    /// Staged (batch-prefetched) payloads are consumed first — blocking
    /// briefly when an overlapped prefetch round has promised the fragment
    /// but not yet delivered it; anything neither staged nor promised falls
    /// back to a per-fragment source fetch, so the consume path is correct
    /// whether or not a plan prefetched (and degrades cleanly if a
    /// prefetcher fails mid-round).
    fn fetch(&mut self, index: u32) -> Result<Arc<Vec<u8>>> {
        let id = FragmentId {
            field: self.field,
            index,
        };
        let payload = match self.stage.as_ref().and_then(|s| s.take_or_wait(id)) {
            Some(staged) => staged,
            None => self.source.fetch(id)?,
        };
        self.fetched += payload.len();
        self.consumed += 1;
        Ok(payload)
    }

    /// Payload fragments this reader fetched **and decoded** itself.
    /// Store-backed views report zero forever — their decodes happen once,
    /// in the shared [`ProgressStore`](crate::store::ProgressStore).
    pub fn fragments_decoded(&self) -> u64 {
        self.consumed
    }

    /// Current reconstruction (zeros before any fetch — Algorithm 2 line 2).
    pub fn data(&self) -> &[f64] {
        self.recon.as_slice()
    }

    /// The current reconstruction as a shareable `Arc` — a refcount bump,
    /// never a copy. This is how a
    /// [`ProgressStore`](crate::store::ProgressStore) publishes its
    /// master's state: the snapshot and the reader share one allocation,
    /// and the reader copies-on-write only if it later mutates in place
    /// while an epoch still pins the buffer.
    pub fn share_recon(&self) -> Arc<Vec<f64>> {
        self.recon.share()
    }

    /// Guaranteed L∞ bound of [`FieldReader::data`] versus the original.
    pub fn guaranteed_bound(&self) -> f64 {
        self.bound
    }

    /// Cumulative fetched bytes.
    pub fn total_fetched(&self) -> usize {
        self.fetched
    }

    /// Approximate heap bytes of this reader's decoded state — what the
    /// shared store charges against its [`StoreBudget`] for a resident
    /// master. Owned reconstructions count in full; the multilevel /
    /// block-transform cursors additionally hold coefficient and
    /// accumulator buffers on the order of two field copies. Store-backed
    /// views own nothing (their adopted `Arc`s are charged to the store).
    ///
    /// [`StoreBudget`]: crate::pager::StoreBudget
    pub fn resident_bytes(&self) -> usize {
        let recon = match &self.recon {
            Recon::Owned(v) => v.len() * 8,
            Recon::Adopted(_) => 0,
        };
        let cursor = match &self.state {
            ReaderState::Mgard { .. } | ReaderState::Zfp(_) => self.recon.as_slice().len() * 16,
            _ => 0,
        };
        recon + cursor
    }

    /// The representation this reader refines.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The reader's resumable progress marker (see [`ReaderProgress`]).
    pub fn progress(&self) -> ReaderProgress {
        match &self.state {
            ReaderState::Snapshots { next, .. } => ReaderProgress::Snapshots {
                next: *next as u32,
                fetched: self.fetched as u64,
            },
            ReaderState::Mgard { cursor, .. } => ReaderProgress::Mgard {
                planes: cursor.planes_read(),
            },
            ReaderState::Zfp(z) => ReaderProgress::Zfp {
                planes: z.planes_read(),
            },
            ReaderState::Shared { snap, .. } => snap.progress.clone(),
        }
    }

    /// True when no further refinement is possible. For store-backed views
    /// this asks the shared store: the view can still improve while the
    /// store holds (or can decode) a deeper state than the view adopted.
    pub fn exhausted(&self) -> bool {
        match &self.state {
            ReaderState::Snapshots { next, .. } => *next >= self.frags.len(),
            ReaderState::Mgard { cursor, .. } => cursor.fully_fetched(),
            ReaderState::Zfp(z) => z.fully_fetched(),
            ReaderState::Shared { store, .. } => {
                !store.can_improve(self.field as usize, self.bound)
            }
        }
    }

    /// Progression in **resolution** (the second PMGARD axis, §II): drops
    /// the `drop_finest` finest levels and reconstructs the coarse subgrid
    /// from the bytes already fetched. Returns `(coarse_data, coarse_dims)`.
    ///
    /// Only multilevel representations carry a resolution hierarchy;
    /// snapshot- and block-transform-based schemes return
    /// [`PqrError::Unsupported`].
    pub fn reconstruct_at_resolution(&self, drop_finest: usize) -> Result<(Vec<f64>, Vec<usize>)> {
        match &self.state {
            ReaderState::Mgard { cursor, .. } => {
                let mut out = Vec::new();
                let dims =
                    cursor.reconstruct_at_resolution_into(drop_finest, &mut out, self.workers);
                Ok((out, dims))
            }
            ReaderState::Snapshots { .. } => Err(PqrError::Unsupported(format!(
                "{} has no resolution hierarchy",
                self.scheme.name()
            ))),
            ReaderState::Zfp(_) => Err(PqrError::Unsupported(
                "PZFP has no resolution hierarchy".into(),
            )),
            // the resolution view reads the *shared* cursor — it reflects
            // the store's (deepest) state, which is at least as refined as
            // this view's adopted snapshot
            ReaderState::Shared { store, .. } => {
                store.reconstruct_at_resolution(self.field as usize, drop_finest)
            }
        }
    }

    /// The fragment indices [`FieldReader::refine_to`]`(eb)` would fetch
    /// from the current state, in consume order, **without fetching** —
    /// the per-field refinement front a retrieval plan schedules. Exact by
    /// construction: every representation's bound model is a function of
    /// consumed-fragment counts and directory/metadata values only
    /// (snapshot directory bounds, MGARD truncation exponents, ZFP
    /// `bound_after`), never of payload contents.
    pub fn plan_refine_to(&self, eb: f64) -> Vec<u32> {
        if eb.is_nan() || eb < 0.0 || self.bound <= eb {
            return Vec::new(); // mirrors refine_to's early exits
        }
        match &self.state {
            ReaderState::Snapshots { next, delta } => {
                if self.frags.is_empty() {
                    return Vec::new(); // born exhausted
                }
                let target = self
                    .frags
                    .iter()
                    .position(|s| s.eb_abs <= eb)
                    .unwrap_or(self.frags.len() - 1);
                if *delta {
                    (*next..=target).map(|i| i as u32).collect()
                } else if target >= *next {
                    vec![target as u32]
                } else {
                    Vec::new()
                }
            }
            ReaderState::Mgard { cursor, level_base } => cursor
                .plan_to_bound(eb)
                .into_iter()
                .map(|(l, p)| level_base[l] + p as u32)
                .collect(),
            ReaderState::Zfp(cursor) => {
                let meta = cursor.meta();
                let mut k = cursor.planes_read();
                let mut out = Vec::new();
                while meta.bound_after(k) > eb && k < meta.num_planes() {
                    out.push(1 + k);
                    k += 1;
                }
                out
            }
            // store-backed views schedule nothing themselves: the shared
            // store fetches (and batches) whatever delta it still needs
            ReaderState::Shared { .. } => Vec::new(),
        }
    }

    /// The **full remaining refinement front** from the current state down
    /// to the representation floor, with the guaranteed bound *after* each
    /// fragment — what the shared store's plan-front cache stores once per
    /// epoch so every tighter request cuts a prefix instead of re-walking
    /// the bound model. `None` for representations without a
    /// prefix-monotone front: plain PSZ3 re-fetches one
    /// adequate-per-request snapshot (the schedule depends on the target,
    /// not just the state), and store-backed views schedule nothing.
    pub fn plan_refine_with_bounds(&self) -> Option<Vec<(u32, f64)>> {
        match &self.state {
            ReaderState::Snapshots { next, delta: true } => Some(
                (*next..self.frags.len())
                    .map(|i| (i as u32, self.frags[i].eb_abs))
                    .collect(),
            ),
            ReaderState::Snapshots { .. } => None,
            ReaderState::Mgard { cursor, level_base } => Some(
                cursor
                    .plan_to_bound_with_bounds(0.0)
                    .into_iter()
                    .map(|(l, p, after)| (level_base[l] + p as u32, after))
                    .collect(),
            ),
            ReaderState::Zfp(cursor) => {
                let meta = cursor.meta();
                Some(
                    (cursor.planes_read()..meta.num_planes())
                        .map(|k| (1 + k, meta.bound_after(k + 1)))
                        .collect(),
                )
            }
            ReaderState::Shared { .. } => None,
        }
    }

    /// The fragment indices [`FieldReader::restore`]`(progress)` will fetch
    /// from a *fresh* reader, in consume order, without fetching — the
    /// restore schedule a resumed session batches through
    /// [`FragmentSource::read_many`]. Validates the marker against the
    /// directory exactly as `restore` does.
    pub fn plan_restore(&self, progress: &ReaderProgress) -> Result<Vec<u32>> {
        match (&self.state, progress) {
            (
                ReaderState::Snapshots { delta, .. },
                ReaderProgress::Snapshots { next: want, .. },
            ) => {
                let want = *want as usize;
                if want > self.frags.len() {
                    return Err(PqrError::InvalidRequest(format!(
                        "progress wants snapshot {want}, archive has {}",
                        self.frags.len()
                    )));
                }
                Ok(if *delta {
                    (0..want as u32).collect()
                } else if want > 0 {
                    vec![(want - 1) as u32]
                } else {
                    Vec::new()
                })
            }
            (ReaderState::Mgard { cursor, level_base }, ReaderProgress::Mgard { planes }) => {
                if planes.len() != cursor.meta().num_levels() {
                    return Err(PqrError::InvalidRequest(format!(
                        "progress has {} levels, stream has {}",
                        planes.len(),
                        cursor.meta().num_levels()
                    )));
                }
                let mut out = Vec::new();
                for (l, &k) in planes.iter().enumerate() {
                    if k > cursor.meta().levels()[l].num_planes {
                        return Err(PqrError::InvalidRequest(format!(
                            "progress wants {k} planes of level {l}, stream has {}",
                            cursor.meta().levels()[l].num_planes
                        )));
                    }
                    out.extend((0..k).map(|p| level_base[l] + p));
                }
                Ok(out)
            }
            (ReaderState::Zfp(cursor), ReaderProgress::Zfp { planes }) => {
                if *planes > cursor.meta().num_planes() {
                    return Err(PqrError::InvalidRequest(format!(
                        "progress wants {planes} planes, archive has {}",
                        cursor.meta().num_planes()
                    )));
                }
                Ok((0..*planes).map(|p| 1 + p).collect())
            }
            (ReaderState::Shared { .. }, _) => Err(PqrError::Unsupported(
                "store-backed session views do not replay progress; \
                 open a fresh session on the service instead"
                    .into(),
            )),
            _ => Err(PqrError::InvalidRequest(format!(
                "progress marker does not match scheme {}",
                self.scheme.name()
            ))),
        }
    }

    /// Fetches fragments until the guaranteed bound is ≤ `eb` (absolute) or
    /// the representation is exhausted. Returns newly fetched bytes.
    pub fn refine_to(&mut self, eb: f64) -> Result<usize> {
        if eb < 0.0 || eb.is_nan() {
            return Err(PqrError::InvalidRequest(format!("bad error bound {eb}")));
        }
        if let ReaderState::Shared { store, snap } = &mut self.state {
            // a cold view (adopted from a demoted field) carries the
            // placeholder bound max|x| over a zero reconstruction — a
            // sound, if coarse, certified state. Anything satisfied by it
            // is answered without wiring the field back in; the first
            // request that needs tighter (eb < max|x|) reads through, and
            // the store rehydrates and serves the true snapshot
            if self.bound <= eb {
                self.recon_cache_hits += 1;
                return Ok(0);
            }
            // read through the shared decode state: the store advances its
            // master reader only past what any previous request reached, so
            // this view pays (at most) the delta — and nothing at all when
            // a deeper request already decoded this far. The call carries
            // the adopted snapshot's epoch: `None` back means that snapshot
            // still is the published state and nothing tighter is decodable,
            // so the view keeps what it holds — no clone, no adoption
            let Some(next) = store.refine_from(self.field as usize, eb, snap.epoch)? else {
                self.recon_cache_hits += 1;
                return Ok(0);
            };
            let before = self.fetched;
            self.recon = Recon::Adopted(Arc::clone(&next.recon));
            self.bound = next.bound;
            self.fetched = next.fetched;
            *snap = next;
            return Ok(self.fetched - before);
        }
        if self.bound <= eb {
            self.recon_cache_hits += 1;
            return Ok(0);
        }
        let before = self.fetched;
        // the state is moved out so `self.fetch` can borrow mutably; every
        // arm puts it back
        let mut state = std::mem::replace(
            &mut self.state,
            ReaderState::Snapshots {
                next: 0,
                delta: false,
            },
        );
        let result = self.refine_state(&mut state, eb);
        self.state = state;
        result?;
        Ok(self.fetched - before)
    }

    fn refine_state(&mut self, state: &mut ReaderState, eb: f64) -> Result<()> {
        match state {
            ReaderState::Snapshots { next, delta } => {
                // a ladder-less (zero-snapshot) field is born exhausted: the
                // zero-vector reconstruction at the max|x| bound is all it
                // can ever offer
                if self.frags.is_empty() {
                    return Ok(());
                }
                let sz = SzCompressor::new(SzConfig::default());
                // target: smallest index with eb_abs ≤ eb (ladder is sorted
                // descending); if none, the last (floor).
                let target = match self.frags.iter().position(|s| s.eb_abs <= eb) {
                    Some(i) => i,
                    None => self.frags.len() - 1,
                };
                if *delta {
                    // fetch the prefix ..=target that is still missing
                    while *next <= target && *next < self.frags.len() {
                        let eb_abs = self.frags[*next].eb_abs;
                        let blob = self.fetch(*next as u32)?;
                        let (part, _) = sz.decompress(&blob)?;
                        for (acc, p) in self.recon.owned_mut().iter_mut().zip(&part) {
                            *acc += p;
                        }
                        self.bound = eb_abs;
                        *next += 1;
                    }
                } else if target >= *next {
                    // plain PSZ3 re-fetches the full adequate snapshot —
                    // the cross-snapshot redundancy of §V-B
                    let eb_abs = self.frags[target].eb_abs;
                    let blob = self.fetch(target as u32)?;
                    let (recon, _) = sz.decompress(&blob)?;
                    self.recon = Recon::Owned(Arc::new(recon));
                    self.bound = eb_abs;
                    *next = target + 1;
                }
            }
            ReaderState::Mgard { cursor, level_base } => {
                let mut pushed = false;
                while cursor.guaranteed_bound() > eb {
                    let Some((l, p)) = cursor.next_plane() else {
                        break; // exhausted
                    };
                    let bytes = self.fetch(level_base[l] + p as u32)?;
                    cursor.push_plane(l, &bytes)?;
                    pushed = true;
                }
                if pushed {
                    let t0 = std::time::Instant::now();
                    let mut buf = self.take_recon_buf();
                    self.recompose_passes += cursor.reconstruct_into(&mut buf, self.workers);
                    self.reconstruct_nanos += t0.elapsed().as_nanos() as u64;
                    self.recon = Recon::Owned(Arc::new(buf));
                } else {
                    // zero-decode round: the memoized reconstruction stands,
                    // zero recompose passes run
                    self.recon_cache_hits += 1;
                }
                self.bound = cursor.guaranteed_bound().min(self.bound);
            }
            ReaderState::Zfp(cursor) => {
                let mut pushed = false;
                while cursor.guaranteed_bound() > eb && !cursor.fully_fetched() {
                    let bytes = self.fetch(1 + cursor.planes_read())?;
                    cursor.push_plane(&bytes)?;
                    pushed = true;
                }
                // The zfp bound model is conservative: for the first few
                // planes it can exceed the zero-vector bound max|x| this
                // reader starts from. Only adopt the zfp reconstruction
                // once its guarantee beats the current one; the fetched
                // planes are retained in the cursor either way. A
                // zero-decode round leaves the cursor (and hence the
                // reconstruction) unchanged, so the memoized buffer stands.
                let zb = cursor.guaranteed_bound();
                if pushed && zb <= self.bound {
                    let t0 = std::time::Instant::now();
                    let mut buf = self.take_recon_buf();
                    cursor.reconstruct_into(&mut buf, self.workers);
                    self.reconstruct_nanos += t0.elapsed().as_nanos() as u64;
                    self.recon = Recon::Owned(Arc::new(buf));
                    self.bound = zb;
                } else if !pushed {
                    self.recon_cache_hits += 1;
                }
            }
            // refine_to short-circuits shared views through the store
            ReaderState::Shared { .. } => unreachable!("shared views refine through the store"),
        }
        Ok(())
    }

    /// Restores a *fresh* reader to a previously saved [`ReaderProgress`]
    /// by deterministically replaying the recorded fetches through the
    /// reader's fragment source.
    pub fn restore(&mut self, progress: &ReaderProgress) -> Result<()> {
        let mut state = std::mem::replace(
            &mut self.state,
            ReaderState::Snapshots {
                next: 0,
                delta: false,
            },
        );
        let result = self.restore_state(&mut state, progress);
        self.state = state;
        result
    }

    fn restore_state(&mut self, state: &mut ReaderState, progress: &ReaderProgress) -> Result<()> {
        match (state, progress) {
            (
                ReaderState::Snapshots { next, delta },
                ReaderProgress::Snapshots {
                    next: want,
                    fetched,
                },
            ) => {
                let want = *want as usize;
                if want > self.frags.len() {
                    return Err(PqrError::InvalidRequest(format!(
                        "progress wants snapshot {want}, archive has {}",
                        self.frags.len()
                    )));
                }
                let sz = SzCompressor::new(SzConfig::default());
                if *delta {
                    for i in 0..want {
                        let eb_abs = self.frags[i].eb_abs;
                        let blob = self.fetch(i as u32)?;
                        let (part, _) = sz.decompress(&blob)?;
                        for (acc, p) in self.recon.owned_mut().iter_mut().zip(&part) {
                            *acc += p;
                        }
                        self.bound = eb_abs;
                    }
                } else if want > 0 {
                    let eb_abs = self.frags[want - 1].eb_abs;
                    let blob = self.fetch((want - 1) as u32)?;
                    let (recon, _) = sz.decompress(&blob)?;
                    self.recon = Recon::Owned(Arc::new(recon));
                    self.bound = eb_abs;
                }
                *next = want;
                // not derivable from the index: plain PSZ3 may have
                // re-fetched several snapshots on the way
                self.fetched = *fetched as usize;
            }
            (ReaderState::Mgard { cursor, level_base }, ReaderProgress::Mgard { planes }) => {
                if planes.len() != cursor.meta().num_levels() {
                    return Err(PqrError::InvalidRequest(format!(
                        "progress has {} levels, stream has {}",
                        planes.len(),
                        cursor.meta().num_levels()
                    )));
                }
                for (l, &k) in planes.iter().enumerate() {
                    if k > cursor.meta().levels()[l].num_planes {
                        return Err(PqrError::InvalidRequest(format!(
                            "progress wants {k} planes of level {l}, stream has {}",
                            cursor.meta().levels()[l].num_planes
                        )));
                    }
                    for p in 0..k {
                        let bytes = self.fetch(level_base[l] + p)?;
                        cursor.push_plane(l, &bytes)?;
                    }
                }
                let t0 = std::time::Instant::now();
                let mut buf = self.take_recon_buf();
                self.recompose_passes += cursor.reconstruct_into(&mut buf, self.workers);
                self.reconstruct_nanos += t0.elapsed().as_nanos() as u64;
                self.recon = Recon::Owned(Arc::new(buf));
                self.bound = cursor.guaranteed_bound();
            }
            (ReaderState::Zfp(cursor), ReaderProgress::Zfp { planes }) => {
                if *planes > cursor.meta().num_planes() {
                    return Err(PqrError::InvalidRequest(format!(
                        "progress wants {planes} planes, archive has {}",
                        cursor.meta().num_planes()
                    )));
                }
                for p in 0..*planes {
                    let bytes = self.fetch(1 + p)?;
                    cursor.push_plane(&bytes)?;
                }
                // mirror refine_to: adopt the zfp reconstruction only once
                // its guarantee beats the zero-vector bound
                let zb = cursor.guaranteed_bound();
                if zb <= self.bound {
                    let t0 = std::time::Instant::now();
                    let mut buf = self.take_recon_buf();
                    cursor.reconstruct_into(&mut buf, self.workers);
                    self.reconstruct_nanos += t0.elapsed().as_nanos() as u64;
                    self.recon = Recon::Owned(Arc::new(buf));
                    self.bound = zb;
                }
            }
            (ReaderState::Shared { .. }, _) => {
                return Err(PqrError::Unsupported(
                    "store-backed session views do not replay progress; \
                     open a fresh session on the service instead"
                        .into(),
                ))
            }
            _ => {
                return Err(PqrError::InvalidRequest(format!(
                    "progress marker does not match scheme {}",
                    self.scheme.name()
                )))
            }
        }
        Ok(())
    }
}

impl FragmentSource for RefactoredField {
    fn manifest(&self) -> Result<Manifest> {
        Ok(fragstore::build_manifest(
            &self.dims,
            &[("", self)],
            None,
            &[],
            0,
        ))
    }

    fn fetch(&self, id: FragmentId) -> Result<Arc<Vec<u8>>> {
        if id.field != 0 {
            return Err(PqrError::InvalidRequest(format!(
                "single-field source has no field {}",
                id.field
            )));
        }
        Ok(Arc::new(fragstore::fetch_field_payload(self, id.index)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqr_util::stats::max_abs_diff;

    fn field_data(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                (x * 7.0).sin() * 3.0 + (x * 23.0).cos() * 0.4 + x
            })
            .collect()
    }

    fn bounds_short() -> Vec<f64> {
        (1..=8).map(|i| 10f64.powi(-i)).collect()
    }

    #[test]
    fn every_scheme_meets_requested_bounds() {
        let data = field_data(3000);
        let range = stats::value_range(&data);
        for scheme in Scheme::extended() {
            let rf = RefactoredField::refactor_with_bounds(scheme, &data, &[3000], &bounds_short())
                .unwrap();
            let mut reader = rf.reader();
            for rel in [1e-1, 1e-3, 1e-6] {
                let eb = rel * range;
                reader.refine_to(eb).unwrap();
                assert!(
                    reader.guaranteed_bound() <= eb,
                    "{}: bound {} > {eb}",
                    scheme.name(),
                    reader.guaranteed_bound()
                );
                let real = max_abs_diff(&data, reader.data());
                assert!(
                    real <= reader.guaranteed_bound(),
                    "{}: real {real} > guarantee {}",
                    scheme.name(),
                    reader.guaranteed_bound()
                );
            }
        }
    }

    #[test]
    fn byte_accounting_is_cumulative_and_monotone() {
        let data = field_data(4000);
        let range = stats::value_range(&data);
        for scheme in Scheme::extended() {
            let rf = RefactoredField::refactor_with_bounds(scheme, &data, &[4000], &bounds_short())
                .unwrap();
            let mut reader = rf.reader();
            let mut last = reader.total_fetched();
            for rel in [1e-1, 1e-2, 1e-4, 1e-6] {
                reader.refine_to(rel * range).unwrap();
                assert!(reader.total_fetched() >= last, "{}", scheme.name());
                last = reader.total_fetched();
            }
        }
    }

    #[test]
    fn psz3_refetches_full_snapshots_but_delta_does_not() {
        // the §V-B redundancy argument: under a progressive request series
        // PSZ3 moves more bytes than PSZ3-delta
        let data = field_data(20_000);
        let range = stats::value_range(&data);
        let psz3 =
            RefactoredField::refactor_with_bounds(Scheme::Psz3, &data, &[20_000], &bounds_short())
                .unwrap();
        let delta = RefactoredField::refactor_with_bounds(
            Scheme::Psz3Delta,
            &data,
            &[20_000],
            &bounds_short(),
        )
        .unwrap();
        let mut rp = psz3.reader();
        let mut rd = delta.reader();
        for i in 1..=7 {
            let eb = 10f64.powi(-i) * range;
            rp.refine_to(eb).unwrap();
            rd.refine_to(eb).unwrap();
        }
        assert!(
            rp.total_fetched() > rd.total_fetched(),
            "PSZ3 {} !> delta {}",
            rp.total_fetched(),
            rd.total_fetched()
        );
    }

    #[test]
    fn single_request_psz3_fetches_one_snapshot() {
        let data = field_data(5000);
        let range = stats::value_range(&data);
        let rf =
            RefactoredField::refactor_with_bounds(Scheme::Psz3, &data, &[5000], &bounds_short())
                .unwrap();
        let mut reader = rf.reader();
        reader.refine_to(1e-4 * range).unwrap();
        // exactly the 1e-4 snapshot's bytes
        if let Body::Snapshots(snaps) = &rf.body {
            assert_eq!(reader.total_fetched(), snaps[3].blob.len());
        } else {
            panic!("wrong body");
        }
    }

    #[test]
    fn initial_state_is_zero_vector_with_max_abs_bound() {
        let data = field_data(100);
        for scheme in [Scheme::Psz3, Scheme::Psz3Delta] {
            let rf = RefactoredField::refactor_with_bounds(scheme, &data, &[100], &bounds_short())
                .unwrap();
            let reader = rf.reader();
            assert!(reader.data().iter().all(|&v| v == 0.0));
            assert_eq!(reader.guaranteed_bound(), rf.max_abs());
            let real = max_abs_diff(&data, reader.data());
            assert!(real <= reader.guaranteed_bound());
        }
    }

    #[test]
    fn snapshot_floor_reported_when_ladder_exhausted() {
        let data = field_data(500);
        let range = stats::value_range(&data);
        let rf =
            RefactoredField::refactor_with_bounds(Scheme::Psz3, &data, &[500], &bounds_short())
                .unwrap();
        let mut reader = rf.reader();
        // request beyond the ladder floor (1e-8 rel)
        reader.refine_to(1e-15 * range).unwrap();
        assert!(reader.exhausted());
        // bound floors at the last ladder step, NOT at the request
        assert!(reader.guaranteed_bound() <= 1e-8 * range * 1.001);
        assert!(reader.guaranteed_bound() > 1e-15 * range);
    }

    #[test]
    fn serialization_roundtrip_all_schemes() {
        let data = field_data(800);
        for scheme in Scheme::extended() {
            let rf = RefactoredField::refactor_with_bounds(scheme, &data, &[800], &bounds_short())
                .unwrap();
            let bytes = rf.to_bytes();
            let rf2 = RefactoredField::from_bytes(&bytes).unwrap();
            assert_eq!(rf2.scheme(), scheme);
            assert_eq!(rf2.dims(), rf.dims());
            assert_eq!(rf2.value_range(), rf.value_range());
            assert_eq!(rf2.total_bytes(), rf.total_bytes());
            // readers behave identically
            let range = rf.value_range();
            let mut a = rf.reader();
            let mut b = rf2.reader();
            a.refine_to(1e-4 * range).unwrap();
            b.refine_to(1e-4 * range).unwrap();
            assert_eq!(a.data(), b.data());
            assert_eq!(a.total_fetched(), b.total_fetched());
        }
    }

    #[test]
    fn constant_field_handled() {
        let data = vec![5.0; 300];
        for scheme in Scheme::extended() {
            let rf = RefactoredField::refactor_with_bounds(scheme, &data, &[300], &bounds_short())
                .unwrap();
            let mut reader = rf.reader();
            reader.refine_to(1e-6).unwrap();
            let real = max_abs_diff(&data, reader.data());
            assert!(real <= 1e-6, "{}: {real}", scheme.name());
        }
    }

    #[test]
    fn scheme_names_match_paper() {
        assert_eq!(Scheme::Psz3.name(), "PSZ3");
        assert_eq!(Scheme::Psz3Delta.name(), "PSZ3-delta");
        assert_eq!(Scheme::PmgardHb.name(), "PMGARD-HB");
        assert_eq!(Scheme::PmgardOb.name(), "PMGARD");
        assert_eq!(Scheme::Pzfp.name(), "PZFP");
    }

    #[test]
    fn extended_adds_pzfp_after_paper_schemes() {
        let ext = Scheme::extended();
        assert_eq!(&ext[..4], &Scheme::all());
        assert_eq!(ext[4], Scheme::Pzfp);
    }

    #[test]
    fn pzfp_meets_requested_bounds() {
        let data = field_data(3000);
        let range = stats::value_range(&data);
        let rf = RefactoredField::refactor(Scheme::Pzfp, &data, &[3000]).unwrap();
        let mut reader = rf.reader();
        for rel in [1e-1, 1e-3, 1e-6, 1e-9] {
            let eb = rel * range;
            reader.refine_to(eb).unwrap();
            assert!(reader.guaranteed_bound() <= eb, "rel={rel}");
            let real = max_abs_diff(&data, reader.data());
            assert!(real <= reader.guaranteed_bound(), "rel={rel}: {real}");
        }
    }

    #[test]
    fn pzfp_initial_state_is_sound_zero_vector() {
        let data = field_data(200);
        let rf = RefactoredField::refactor(Scheme::Pzfp, &data, &[200]).unwrap();
        let reader = rf.reader();
        assert!(reader.data().iter().all(|&v| v == 0.0));
        let real = max_abs_diff(&data, reader.data());
        assert!(real <= reader.guaranteed_bound());
        assert!(reader.guaranteed_bound() <= rf.max_abs());
    }

    #[test]
    fn pzfp_serialization_roundtrip() {
        let data = field_data(900);
        let rf = RefactoredField::refactor(Scheme::Pzfp, &data, &[900]).unwrap();
        let rf2 = RefactoredField::from_bytes(&rf.to_bytes()).unwrap();
        assert_eq!(rf2.scheme(), Scheme::Pzfp);
        let range = rf.value_range();
        let mut a = rf.reader();
        let mut b = rf2.reader();
        a.refine_to(1e-5 * range).unwrap();
        b.refine_to(1e-5 * range).unwrap();
        assert_eq!(a.data(), b.data());
        assert_eq!(a.total_fetched(), b.total_fetched());
    }

    #[test]
    fn pzfp_bound_never_regresses_while_refining() {
        // the conservative early-plane model must never push the reported
        // bound above the zero-vector bound the reader starts from
        let data = field_data(2048);
        let range = stats::value_range(&data);
        let rf = RefactoredField::refactor(Scheme::Pzfp, &data, &[2048]).unwrap();
        let mut reader = rf.reader();
        let mut prev = reader.guaranteed_bound();
        for i in 1..=25 {
            let eb = 0.5 * (2.0f64).powi(-i) * range;
            reader.refine_to(eb).unwrap();
            assert!(reader.guaranteed_bound() <= prev, "i={i}");
            let real = max_abs_diff(&data, reader.data());
            assert!(real <= reader.guaranteed_bound(), "i={i}");
            prev = reader.guaranteed_bound();
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        assert!(RefactoredField::refactor(Scheme::Psz3, &[1.0], &[2]).is_err());
    }

    #[test]
    fn repeat_refinement_is_memoized_with_zero_recompose() {
        let data = field_data(20_000);
        let range = stats::value_range(&data);
        let rf = RefactoredField::refactor(Scheme::PmgardHb, &data, &[20_000]).unwrap();
        let mut reader = rf.reader();
        reader.refine_to(1e-4 * range).unwrap();
        let passes = reader.recompose_passes();
        assert!(passes > 0, "a deep refine must run recompose passes");
        let held = reader.share_recon();
        // identical request again: zero fetched bytes, zero recompose
        // passes, and the very same reconstruction allocation
        let hits = reader.recon_cache_hits();
        assert_eq!(reader.refine_to(1e-4 * range).unwrap(), 0);
        assert_eq!(reader.recompose_passes(), passes);
        assert!(reader.recon_cache_hits() > hits);
        assert!(Arc::ptr_eq(&held, &reader.share_recon()));
        // a looser request is also served from the memo
        assert_eq!(reader.refine_to(1e-2 * range).unwrap(), 0);
        assert_eq!(reader.recompose_passes(), passes);
    }

    #[test]
    fn parallel_reader_reconstruction_bit_identical() {
        let data = field_data(20_000);
        let range = stats::value_range(&data);
        for scheme in [Scheme::PmgardHb, Scheme::PmgardOb, Scheme::Pzfp] {
            let rf = RefactoredField::refactor(scheme, &data, &[20_000]).unwrap();
            let run = |workers: usize| {
                let mut reader = rf.reader();
                reader.set_workers(workers);
                for rel in [1e-2, 1e-4, 1e-6] {
                    reader.refine_to(rel * range).unwrap();
                }
                (reader.data().to_vec(), reader.guaranteed_bound().to_bits())
            };
            let serial = run(1);
            for workers in [2usize, 4] {
                assert_eq!(serial, run(workers), "{} w={workers}", scheme.name());
            }
        }
    }
}
