//! The three progressive representations of §V-B behind one interface.
//!
//! | variant | paper name | mechanics |
//! |---|---|---|
//! | [`Scheme::Psz3`] | PSZ3 | independent SZ3 snapshots at pre-set bounds; a request fetches the smallest adequate snapshot *in full* (cross-snapshot redundancy → stair-case rate curves) |
//! | [`Scheme::Psz3Delta`] | PSZ3-delta | snapshot *i* compresses the residual left by snapshots 1..i−1; a request fetches the prefix 1..k (no redundancy) |
//! | [`Scheme::PmgardHb`] | PMGARD-HB | multilevel hierarchical-basis decomposition + bitplanes (the paper's optimised representation) |
//! | [`Scheme::PmgardOb`] | PMGARD | same with MGARD's orthogonal basis (L2 projection) — kept for the Fig. 3 comparison |
//! | [`Scheme::Pzfp`] | (extension) | ZFP-style block transform + negabinary bitplanes — the paper's other progressive-precision family (its ref. \[4\]), exercised by the ablation benches |
//!
//! Every variant satisfies Definition 1: refactor once into fragments,
//! reconstruct from a prefix of fragments under a guaranteed L∞ bound, and
//! recompose incrementally as more fragments arrive.

use pqr_mgard::{Basis, MgardReader, MgardRefactorer, MgardStream};
use pqr_sz::{SzCompressor, SzConfig};
use pqr_util::byteio::{ByteReader, ByteWriter};
use pqr_util::error::{PqrError, Result};
use pqr_util::stats;
use pqr_zfp::{ZfpReader, ZfpRefactorer, ZfpStream};

/// Which progressive representation to refactor into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheme {
    /// Multi-snapshot error-bounded compression (PSZ3).
    Psz3,
    /// Residual/delta compression (PSZ3-delta).
    Psz3Delta,
    /// Multilevel + bitplanes, hierarchical basis (PMGARD-HB) — the paper's
    /// recommended representation.
    #[default]
    PmgardHb,
    /// Multilevel + bitplanes, orthogonal basis (PMGARD).
    PmgardOb,
    /// ZFP-style block transform + negabinary bitplanes. An extension beyond
    /// the paper's three evaluated schemes: the paper's related work names
    /// ZFP as the other progressive-precision family, and this variant lets
    /// the benches compare it under the same QoI engine.
    Pzfp,
}

impl Scheme {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Psz3 => "PSZ3",
            Scheme::Psz3Delta => "PSZ3-delta",
            Scheme::PmgardHb => "PMGARD-HB",
            Scheme::PmgardOb => "PMGARD",
            Scheme::Pzfp => "PZFP",
        }
    }

    /// The paper's schemes, in the order its figures list them. The PZFP
    /// extension is deliberately excluded so the figure harnesses reproduce
    /// exactly the paper's curves; use [`Scheme::extended`] to include it.
    pub fn all() -> [Scheme; 4] {
        [
            Scheme::Psz3,
            Scheme::Psz3Delta,
            Scheme::PmgardOb,
            Scheme::PmgardHb,
        ]
    }

    /// Every representation in the workspace, paper schemes first.
    pub fn extended() -> [Scheme; 5] {
        [
            Scheme::Psz3,
            Scheme::Psz3Delta,
            Scheme::PmgardOb,
            Scheme::PmgardHb,
            Scheme::Pzfp,
        ]
    }

    fn tag(self) -> u8 {
        match self {
            Scheme::Psz3 => 0,
            Scheme::Psz3Delta => 1,
            Scheme::PmgardHb => 2,
            Scheme::PmgardOb => 3,
            Scheme::Pzfp => 4,
        }
    }

    fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(Scheme::Psz3),
            1 => Some(Scheme::Psz3Delta),
            2 => Some(Scheme::PmgardHb),
            3 => Some(Scheme::PmgardOb),
            4 => Some(Scheme::Pzfp),
            _ => None,
        }
    }
}

/// The default pre-set relative error bounds for snapshot-based schemes:
/// `10^-1 … 10^-18` (§VI-C uses 18 because S3D needs high precision).
pub fn default_snapshot_bounds() -> Vec<f64> {
    (1..=18).map(|i| 10f64.powi(-i)).collect()
}

/// One stored snapshot of a snapshot-based scheme.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Absolute L∞ bound this snapshot guarantees (cumulatively, for delta).
    pub eb_abs: f64,
    /// Compressed payload.
    pub blob: Vec<u8>,
}

/// A refactored progressive field (archive-side artifact).
#[derive(Debug, Clone)]
pub struct RefactoredField {
    pub(crate) scheme: Scheme,
    pub(crate) dims: Vec<usize>,
    /// `max − min` of the original data (drives relative bounds).
    pub(crate) range: f64,
    /// `max |x|` of the original data (initial zero-vector error bound).
    pub(crate) max_abs: f64,
    pub(crate) body: Body,
}

#[derive(Debug, Clone)]
pub(crate) enum Body {
    Snapshots(Vec<Snapshot>),
    Mgard(MgardStream),
    Zfp(ZfpStream),
}

impl RefactoredField {
    /// Refactors `data` under the chosen scheme with the default snapshot
    /// bound ladder.
    pub fn refactor(scheme: Scheme, data: &[f64], dims: &[usize]) -> Result<Self> {
        Self::refactor_with_bounds(scheme, data, dims, &default_snapshot_bounds())
    }

    /// Refactors with an explicit relative-bound ladder (snapshot schemes
    /// only; ignored by the PMGARD variants, which are ladder-free).
    pub fn refactor_with_bounds(
        scheme: Scheme,
        data: &[f64],
        dims: &[usize],
        rel_bounds: &[f64],
    ) -> Result<Self> {
        let n: usize = dims.iter().product();
        if n != data.len() {
            return Err(PqrError::ShapeMismatch(format!(
                "dims {:?} = {n} elements, data has {}",
                dims,
                data.len()
            )));
        }
        let range = stats::value_range(data);
        let (lo, hi) = stats::min_max(data);
        let max_abs = lo.abs().max(hi.abs());
        // Degenerate (constant/empty) data still needs a usable ladder.
        let scale = if range > 0.0 { range } else { 1.0 };

        let body = match scheme {
            Scheme::Psz3 => {
                let sz = SzCompressor::new(SzConfig::default());
                let mut snaps = Vec::with_capacity(rel_bounds.len());
                for &rb in rel_bounds {
                    let eb = rb * scale;
                    snaps.push(Snapshot {
                        eb_abs: eb,
                        blob: sz.compress(data, dims, eb)?,
                    });
                }
                Body::Snapshots(snaps)
            }
            Scheme::Psz3Delta => {
                let sz = SzCompressor::new(SzConfig::default());
                let mut snaps = Vec::with_capacity(rel_bounds.len());
                let mut residual = data.to_vec();
                for &rb in rel_bounds {
                    let eb = rb * scale;
                    let blob = sz.compress(&residual, dims, eb)?;
                    let (recon, _) = sz.decompress(&blob)?;
                    for (r, d) in residual.iter_mut().zip(&recon) {
                        *r -= d;
                    }
                    snaps.push(Snapshot { eb_abs: eb, blob });
                }
                Body::Snapshots(snaps)
            }
            Scheme::PmgardHb => {
                Body::Mgard(MgardRefactorer::new(Basis::Hierarchical).refactor(data, dims)?)
            }
            Scheme::PmgardOb => {
                Body::Mgard(MgardRefactorer::new(Basis::Orthogonal).refactor(data, dims)?)
            }
            Scheme::Pzfp => Body::Zfp(ZfpRefactorer::new().refactor(data, dims)?),
        };
        Ok(Self {
            scheme,
            dims: dims.to_vec(),
            range,
            max_abs,
            body,
        })
    }

    /// The representation this field was refactored into.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Array shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True for zero-element fields.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `max − min` of the original data.
    pub fn value_range(&self) -> f64 {
        self.range
    }

    /// `max |x|` of the original data.
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }

    /// Total archived bytes.
    pub fn total_bytes(&self) -> usize {
        match &self.body {
            Body::Snapshots(s) => s.iter().map(|x| x.blob.len()).sum(),
            Body::Mgard(m) => m.total_bytes(),
            Body::Zfp(z) => z.total_bytes(),
        }
    }

    /// Opens a progressive reader at zero fetched fragments.
    pub fn reader(&self) -> FieldReader<'_> {
        let n = self.len();
        match &self.body {
            Body::Snapshots(snaps) => FieldReader {
                field: self,
                recon: vec![0.0; n],
                bound: self.max_abs,
                fetched: 0,
                state: ReaderState::Snapshots {
                    snaps,
                    next: 0,
                    delta: self.scheme == Scheme::Psz3Delta,
                },
            },
            Body::Mgard(stream) => {
                let reader = stream.reader();
                let fetched = reader.total_fetched();
                let bound = reader.guaranteed_bound();
                // the metadata (always fetched) carries the root value, so
                // the zero-plane reconstruction is already meaningful
                let recon = reader.reconstruct();
                FieldReader {
                    field: self,
                    recon,
                    bound,
                    fetched,
                    state: ReaderState::Mgard(reader),
                }
            }
            Body::Zfp(stream) => {
                let reader = stream.reader();
                let fetched = reader.total_fetched();
                // the zfp bound model can exceed max|x| before any plane
                // arrives; the zero-vector bound is the better of the two
                let bound = reader.guaranteed_bound().min(self.max_abs);
                FieldReader {
                    field: self,
                    recon: vec![0.0; n],
                    bound,
                    fetched,
                    state: ReaderState::Zfp(reader),
                }
            }
        }
    }

    /// Opens a reader restored to a previously saved [`ReaderProgress`]
    /// (from [`FieldReader::progress`]) by deterministically replaying the
    /// recorded fetches against this archive. The resumed reader's
    /// reconstruction, guaranteed bound and cumulative byte accounting match
    /// the original reader's state exactly.
    pub fn reader_resumed(&self, progress: &ReaderProgress) -> Result<FieldReader<'_>> {
        let mut reader = self.reader();
        match (&mut reader.state, progress) {
            (
                ReaderState::Snapshots { snaps, next, delta },
                ReaderProgress::Snapshots {
                    next: want,
                    fetched,
                },
            ) => {
                let want = *want as usize;
                if want > snaps.len() {
                    return Err(PqrError::InvalidRequest(format!(
                        "progress wants snapshot {want}, archive has {}",
                        snaps.len()
                    )));
                }
                let sz = SzCompressor::new(SzConfig::default());
                if *delta {
                    for s in &snaps[..want] {
                        let (part, _) = sz.decompress(&s.blob)?;
                        for (acc, p) in reader.recon.iter_mut().zip(&part) {
                            *acc += p;
                        }
                        reader.bound = s.eb_abs;
                    }
                } else if want > 0 {
                    let s = &snaps[want - 1];
                    let (recon, _) = sz.decompress(&s.blob)?;
                    reader.recon = recon;
                    reader.bound = s.eb_abs;
                }
                *next = want;
                reader.fetched = *fetched as usize;
            }
            (ReaderState::Mgard(m), ReaderProgress::Mgard { planes }) => {
                m.restore(planes)?;
                reader.recon = m.reconstruct();
                reader.bound = m.guaranteed_bound();
                reader.fetched = m.total_fetched();
            }
            (ReaderState::Zfp(z), ReaderProgress::Zfp { planes }) => {
                z.fetch_planes(*planes as usize)?;
                if z.planes_read() != *planes {
                    return Err(PqrError::InvalidRequest(format!(
                        "progress wants {planes} planes, archive has {}",
                        z.planes_read()
                    )));
                }
                // mirror refine_to: adopt the zfp reconstruction only once
                // its guarantee beats the zero-vector bound
                let zb = z.guaranteed_bound();
                if zb <= reader.bound {
                    reader.recon = z.reconstruct();
                    reader.bound = zb;
                }
                reader.fetched = z.total_fetched();
            }
            _ => {
                return Err(PqrError::InvalidRequest(format!(
                    "progress marker does not match scheme {}",
                    self.scheme.name()
                )))
            }
        }
        Ok(reader)
    }

    /// Serializes the archive artifact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_raw(b"PQRF");
        w.put_u8(self.scheme.tag());
        w.put_u8(self.dims.len() as u8);
        for &d in &self.dims {
            w.put_u64(d as u64);
        }
        w.put_f64(self.range);
        w.put_f64(self.max_abs);
        match &self.body {
            Body::Snapshots(snaps) => {
                w.put_u32(snaps.len() as u32);
                for s in snaps {
                    w.put_f64(s.eb_abs);
                    w.put_bytes(&s.blob);
                }
            }
            Body::Mgard(m) => {
                w.put_u32(u32::MAX); // sentinel: mgard body
                w.put_bytes(&m.to_bytes());
            }
            Body::Zfp(z) => {
                w.put_u32(u32::MAX - 1); // sentinel: zfp body
                w.put_bytes(&z.to_bytes());
            }
        }
        w.finish()
    }

    /// Deserializes an archive artifact.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        if r.get_raw(4)? != b"PQRF" {
            return Err(PqrError::CorruptStream("bad field magic".into()));
        }
        let scheme = Scheme::from_tag(r.get_u8()?)
            .ok_or_else(|| PqrError::CorruptStream("unknown scheme".into()))?;
        let nd = r.get_u8()? as usize;
        let mut dims = Vec::with_capacity(nd);
        for _ in 0..nd {
            dims.push(r.get_u64()? as usize);
        }
        pqr_util::byteio::check_dims(&dims)?;
        let range = r.get_f64()?;
        let max_abs = r.get_f64()?;
        let marker = r.get_u32()?;
        let body = if marker == u32::MAX {
            Body::Mgard(MgardStream::from_bytes(r.get_bytes()?)?)
        } else if marker == u32::MAX - 1 {
            Body::Zfp(ZfpStream::from_bytes(r.get_bytes()?)?)
        } else {
            if marker > 4096 {
                return Err(PqrError::CorruptStream(format!("{marker} snapshots")));
            }
            let mut snaps = Vec::with_capacity(marker as usize);
            for _ in 0..marker {
                let eb_abs = r.get_f64()?;
                let blob = r.get_bytes()?.to_vec();
                snaps.push(Snapshot { eb_abs, blob });
            }
            Body::Snapshots(snaps)
        };
        Ok(Self {
            scheme,
            dims,
            range,
            max_abs,
            body,
        })
    }

    /// Sizes of the individually fetchable fragments, in storage order — the
    /// transfer simulator uses this to model per-segment movement.
    pub fn fragment_sizes(&self) -> Vec<usize> {
        match &self.body {
            Body::Snapshots(s) => s.iter().map(|x| x.blob.len()).collect(),
            Body::Mgard(m) => {
                let mut v = vec![m.metadata_bytes()];
                v.extend(m.segment_sizes());
                v
            }
            Body::Zfp(z) => {
                let mut v = vec![z.metadata_bytes()];
                v.extend(z.segment_sizes());
                v
            }
        }
    }
}

/// Resumable progress marker of a [`FieldReader`] — everything needed to
/// reconstruct the reader's exact state against the same archive in another
/// process (Fig. 1's retrieval side is long-lived; sessions outlive
/// processes). Replay is deterministic, so restoring reproduces both the
/// reconstruction and the cumulative byte accounting bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReaderProgress {
    /// Snapshot schemes: index one past the last fetched snapshot, plus the
    /// session's cumulative fetched bytes (not derivable from the index —
    /// plain PSZ3 may have re-fetched several snapshots on the way).
    Snapshots {
        /// One past the last fetched snapshot index.
        next: u32,
        /// Cumulative fetched bytes at save time.
        fetched: u64,
    },
    /// PMGARD schemes: planes consumed per level.
    Mgard {
        /// Fetched plane count per multilevel level.
        planes: Vec<u32>,
    },
    /// PZFP: global planes consumed.
    Zfp {
        /// Fetched plane count.
        planes: u32,
    },
}

impl ReaderProgress {
    /// Serializes the marker.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            ReaderProgress::Snapshots { next, fetched } => {
                w.put_u8(0);
                w.put_u32(*next);
                w.put_u64(*fetched);
            }
            ReaderProgress::Mgard { planes } => {
                w.put_u8(1);
                w.put_u32(planes.len() as u32);
                for &p in planes {
                    w.put_u32(p);
                }
            }
            ReaderProgress::Zfp { planes } => {
                w.put_u8(2);
                w.put_u32(*planes);
            }
        }
        w.finish()
    }

    /// Deserializes a marker written by [`ReaderProgress::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let p = Self::read(&mut r)?;
        if r.remaining() != 0 {
            return Err(PqrError::CorruptStream("trailing progress bytes".into()));
        }
        Ok(p)
    }

    pub(crate) fn read(r: &mut ByteReader<'_>) -> Result<Self> {
        Ok(match r.get_u8()? {
            0 => ReaderProgress::Snapshots {
                next: r.get_u32()?,
                fetched: r.get_u64()?,
            },
            1 => {
                let n = r.get_u32()? as usize;
                if n > 64 {
                    return Err(PqrError::CorruptStream(format!("{n} levels in progress")));
                }
                let mut planes = Vec::with_capacity(n);
                for _ in 0..n {
                    planes.push(r.get_u32()?);
                }
                ReaderProgress::Mgard { planes }
            }
            2 => ReaderProgress::Zfp {
                planes: r.get_u32()?,
            },
            t => return Err(PqrError::CorruptStream(format!("unknown progress tag {t}"))),
        })
    }

    pub(crate) fn write(&self, w: &mut ByteWriter) {
        w.put_raw(&self.to_bytes());
    }
}

/// Progressive reader over a [`RefactoredField`].
///
/// Maintains the current reconstruction, the guaranteed L∞ bound, and the
/// cumulative number of fetched bytes (what a remote retrieval would move).
#[derive(Debug)]
pub struct FieldReader<'a> {
    field: &'a RefactoredField,
    recon: Vec<f64>,
    bound: f64,
    fetched: usize,
    state: ReaderState<'a>,
}

#[derive(Debug)]
enum ReaderState<'a> {
    Snapshots {
        snaps: &'a [Snapshot],
        /// Next snapshot index to fetch (all below are fetched).
        next: usize,
        /// Delta mode: reconstruction accumulates; plain mode: replaces.
        delta: bool,
    },
    Mgard(MgardReader<'a>),
    Zfp(ZfpReader<'a>),
}

impl FieldReader<'_> {
    /// Current reconstruction (zeros before any fetch — Algorithm 2 line 2).
    pub fn data(&self) -> &[f64] {
        &self.recon
    }

    /// Guaranteed L∞ bound of [`FieldReader::data`] versus the original.
    pub fn guaranteed_bound(&self) -> f64 {
        self.bound
    }

    /// Cumulative fetched bytes.
    pub fn total_fetched(&self) -> usize {
        self.fetched
    }

    /// The underlying field.
    pub fn field(&self) -> &RefactoredField {
        self.field
    }

    /// The reader's resumable progress marker (see [`ReaderProgress`]).
    pub fn progress(&self) -> ReaderProgress {
        match &self.state {
            ReaderState::Snapshots { next, .. } => ReaderProgress::Snapshots {
                next: *next as u32,
                fetched: self.fetched as u64,
            },
            ReaderState::Mgard(m) => ReaderProgress::Mgard {
                planes: m.planes_read(),
            },
            ReaderState::Zfp(z) => ReaderProgress::Zfp {
                planes: z.planes_read(),
            },
        }
    }

    /// True when no further refinement is possible.
    pub fn exhausted(&self) -> bool {
        match &self.state {
            ReaderState::Snapshots { snaps, next, .. } => *next >= snaps.len(),
            ReaderState::Mgard(r) => r.fully_fetched(),
            ReaderState::Zfp(r) => r.fully_fetched(),
        }
    }

    /// Progression in **resolution** (the second PMGARD axis, §II): drops
    /// the `drop_finest` finest levels and reconstructs the coarse subgrid
    /// from the bytes already fetched. Returns `(coarse_data, coarse_dims)`.
    ///
    /// Only multilevel representations carry a resolution hierarchy;
    /// snapshot- and block-transform-based schemes return
    /// [`PqrError::Unsupported`].
    pub fn reconstruct_at_resolution(&self, drop_finest: usize) -> Result<(Vec<f64>, Vec<usize>)> {
        match &self.state {
            ReaderState::Mgard(reader) => Ok(reader.reconstruct_at_resolution(drop_finest)),
            ReaderState::Snapshots { .. } => Err(PqrError::Unsupported(format!(
                "{} has no resolution hierarchy",
                self.field.scheme.name()
            ))),
            ReaderState::Zfp(_) => Err(PqrError::Unsupported(
                "PZFP has no resolution hierarchy".into(),
            )),
        }
    }

    /// Fetches fragments until the guaranteed bound is ≤ `eb` (absolute) or
    /// the representation is exhausted. Returns newly fetched bytes.
    pub fn refine_to(&mut self, eb: f64) -> Result<usize> {
        if eb < 0.0 || eb.is_nan() {
            return Err(PqrError::InvalidRequest(format!("bad error bound {eb}")));
        }
        if self.bound <= eb {
            return Ok(0);
        }
        let mut newly = 0usize;
        match &mut self.state {
            ReaderState::Snapshots { snaps, next, delta } => {
                let sz = SzCompressor::new(SzConfig::default());
                // target: smallest index with eb_abs ≤ eb (ladder is sorted
                // descending); if none, the last (floor).
                let target = match snaps.iter().position(|s| s.eb_abs <= eb) {
                    Some(i) => i,
                    None => snaps.len().saturating_sub(1),
                };
                if *delta {
                    // fetch the prefix ..=target that is still missing
                    while *next <= target && *next < snaps.len() {
                        let s = &snaps[*next];
                        newly += s.blob.len();
                        let (part, _) = sz.decompress(&s.blob)?;
                        for (acc, p) in self.recon.iter_mut().zip(&part) {
                            *acc += p;
                        }
                        self.bound = s.eb_abs;
                        *next += 1;
                    }
                } else if target >= *next {
                    // plain PSZ3 re-fetches the full adequate snapshot —
                    // the cross-snapshot redundancy of §V-B
                    let s = &snaps[target];
                    newly += s.blob.len();
                    let (recon, _) = sz.decompress(&s.blob)?;
                    self.recon = recon;
                    self.bound = s.eb_abs;
                    *next = target + 1;
                }
            }
            ReaderState::Mgard(reader) => {
                newly = reader.refine_to(eb)?;
                if newly > 0 {
                    self.recon = reader.reconstruct();
                }
                self.bound = reader.guaranteed_bound().min(self.bound);
            }
            ReaderState::Zfp(reader) => {
                newly = reader.refine_to(eb)?;
                // The zfp bound model is conservative: for the first few
                // planes it can exceed the zero-vector bound max|x| this
                // reader starts from. Only adopt the zfp reconstruction
                // once its guarantee beats the current one; the fetched
                // planes are retained in the reader either way.
                let zb = reader.guaranteed_bound();
                if zb <= self.bound {
                    self.recon = reader.reconstruct();
                    self.bound = zb;
                }
            }
        }
        self.fetched += newly;
        Ok(newly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqr_util::stats::max_abs_diff;

    fn field_data(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = i as f64 / n as f64;
                (x * 7.0).sin() * 3.0 + (x * 23.0).cos() * 0.4 + x
            })
            .collect()
    }

    fn bounds_short() -> Vec<f64> {
        (1..=8).map(|i| 10f64.powi(-i)).collect()
    }

    #[test]
    fn every_scheme_meets_requested_bounds() {
        let data = field_data(3000);
        let range = stats::value_range(&data);
        for scheme in Scheme::extended() {
            let rf = RefactoredField::refactor_with_bounds(scheme, &data, &[3000], &bounds_short())
                .unwrap();
            let mut reader = rf.reader();
            for rel in [1e-1, 1e-3, 1e-6] {
                let eb = rel * range;
                reader.refine_to(eb).unwrap();
                assert!(
                    reader.guaranteed_bound() <= eb,
                    "{}: bound {} > {eb}",
                    scheme.name(),
                    reader.guaranteed_bound()
                );
                let real = max_abs_diff(&data, reader.data());
                assert!(
                    real <= reader.guaranteed_bound(),
                    "{}: real {real} > guarantee {}",
                    scheme.name(),
                    reader.guaranteed_bound()
                );
            }
        }
    }

    #[test]
    fn byte_accounting_is_cumulative_and_monotone() {
        let data = field_data(4000);
        let range = stats::value_range(&data);
        for scheme in Scheme::extended() {
            let rf = RefactoredField::refactor_with_bounds(scheme, &data, &[4000], &bounds_short())
                .unwrap();
            let mut reader = rf.reader();
            let mut last = reader.total_fetched();
            for rel in [1e-1, 1e-2, 1e-4, 1e-6] {
                reader.refine_to(rel * range).unwrap();
                assert!(reader.total_fetched() >= last, "{}", scheme.name());
                last = reader.total_fetched();
            }
        }
    }

    #[test]
    fn psz3_refetches_full_snapshots_but_delta_does_not() {
        // the §V-B redundancy argument: under a progressive request series
        // PSZ3 moves more bytes than PSZ3-delta
        let data = field_data(20_000);
        let range = stats::value_range(&data);
        let psz3 =
            RefactoredField::refactor_with_bounds(Scheme::Psz3, &data, &[20_000], &bounds_short())
                .unwrap();
        let delta = RefactoredField::refactor_with_bounds(
            Scheme::Psz3Delta,
            &data,
            &[20_000],
            &bounds_short(),
        )
        .unwrap();
        let mut rp = psz3.reader();
        let mut rd = delta.reader();
        for i in 1..=7 {
            let eb = 10f64.powi(-i) * range;
            rp.refine_to(eb).unwrap();
            rd.refine_to(eb).unwrap();
        }
        assert!(
            rp.total_fetched() > rd.total_fetched(),
            "PSZ3 {} !> delta {}",
            rp.total_fetched(),
            rd.total_fetched()
        );
    }

    #[test]
    fn single_request_psz3_fetches_one_snapshot() {
        let data = field_data(5000);
        let range = stats::value_range(&data);
        let rf =
            RefactoredField::refactor_with_bounds(Scheme::Psz3, &data, &[5000], &bounds_short())
                .unwrap();
        let mut reader = rf.reader();
        reader.refine_to(1e-4 * range).unwrap();
        // exactly the 1e-4 snapshot's bytes
        if let Body::Snapshots(snaps) = &rf.body {
            assert_eq!(reader.total_fetched(), snaps[3].blob.len());
        } else {
            panic!("wrong body");
        }
    }

    #[test]
    fn initial_state_is_zero_vector_with_max_abs_bound() {
        let data = field_data(100);
        for scheme in [Scheme::Psz3, Scheme::Psz3Delta] {
            let rf = RefactoredField::refactor_with_bounds(scheme, &data, &[100], &bounds_short())
                .unwrap();
            let reader = rf.reader();
            assert!(reader.data().iter().all(|&v| v == 0.0));
            assert_eq!(reader.guaranteed_bound(), rf.max_abs());
            let real = max_abs_diff(&data, reader.data());
            assert!(real <= reader.guaranteed_bound());
        }
    }

    #[test]
    fn snapshot_floor_reported_when_ladder_exhausted() {
        let data = field_data(500);
        let range = stats::value_range(&data);
        let rf =
            RefactoredField::refactor_with_bounds(Scheme::Psz3, &data, &[500], &bounds_short())
                .unwrap();
        let mut reader = rf.reader();
        // request beyond the ladder floor (1e-8 rel)
        reader.refine_to(1e-15 * range).unwrap();
        assert!(reader.exhausted());
        // bound floors at the last ladder step, NOT at the request
        assert!(reader.guaranteed_bound() <= 1e-8 * range * 1.001);
        assert!(reader.guaranteed_bound() > 1e-15 * range);
    }

    #[test]
    fn serialization_roundtrip_all_schemes() {
        let data = field_data(800);
        for scheme in Scheme::extended() {
            let rf = RefactoredField::refactor_with_bounds(scheme, &data, &[800], &bounds_short())
                .unwrap();
            let bytes = rf.to_bytes();
            let rf2 = RefactoredField::from_bytes(&bytes).unwrap();
            assert_eq!(rf2.scheme(), scheme);
            assert_eq!(rf2.dims(), rf.dims());
            assert_eq!(rf2.value_range(), rf.value_range());
            assert_eq!(rf2.total_bytes(), rf.total_bytes());
            // readers behave identically
            let range = rf.value_range();
            let mut a = rf.reader();
            let mut b = rf2.reader();
            a.refine_to(1e-4 * range).unwrap();
            b.refine_to(1e-4 * range).unwrap();
            assert_eq!(a.data(), b.data());
            assert_eq!(a.total_fetched(), b.total_fetched());
        }
    }

    #[test]
    fn constant_field_handled() {
        let data = vec![5.0; 300];
        for scheme in Scheme::extended() {
            let rf = RefactoredField::refactor_with_bounds(scheme, &data, &[300], &bounds_short())
                .unwrap();
            let mut reader = rf.reader();
            reader.refine_to(1e-6).unwrap();
            let real = max_abs_diff(&data, reader.data());
            assert!(real <= 1e-6, "{}: {real}", scheme.name());
        }
    }

    #[test]
    fn scheme_names_match_paper() {
        assert_eq!(Scheme::Psz3.name(), "PSZ3");
        assert_eq!(Scheme::Psz3Delta.name(), "PSZ3-delta");
        assert_eq!(Scheme::PmgardHb.name(), "PMGARD-HB");
        assert_eq!(Scheme::PmgardOb.name(), "PMGARD");
        assert_eq!(Scheme::Pzfp.name(), "PZFP");
    }

    #[test]
    fn extended_adds_pzfp_after_paper_schemes() {
        let ext = Scheme::extended();
        assert_eq!(&ext[..4], &Scheme::all());
        assert_eq!(ext[4], Scheme::Pzfp);
    }

    #[test]
    fn pzfp_meets_requested_bounds() {
        let data = field_data(3000);
        let range = stats::value_range(&data);
        let rf = RefactoredField::refactor(Scheme::Pzfp, &data, &[3000]).unwrap();
        let mut reader = rf.reader();
        for rel in [1e-1, 1e-3, 1e-6, 1e-9] {
            let eb = rel * range;
            reader.refine_to(eb).unwrap();
            assert!(reader.guaranteed_bound() <= eb, "rel={rel}");
            let real = max_abs_diff(&data, reader.data());
            assert!(real <= reader.guaranteed_bound(), "rel={rel}: {real}");
        }
    }

    #[test]
    fn pzfp_initial_state_is_sound_zero_vector() {
        let data = field_data(200);
        let rf = RefactoredField::refactor(Scheme::Pzfp, &data, &[200]).unwrap();
        let reader = rf.reader();
        assert!(reader.data().iter().all(|&v| v == 0.0));
        let real = max_abs_diff(&data, reader.data());
        assert!(real <= reader.guaranteed_bound());
        assert!(reader.guaranteed_bound() <= rf.max_abs());
    }

    #[test]
    fn pzfp_serialization_roundtrip() {
        let data = field_data(900);
        let rf = RefactoredField::refactor(Scheme::Pzfp, &data, &[900]).unwrap();
        let rf2 = RefactoredField::from_bytes(&rf.to_bytes()).unwrap();
        assert_eq!(rf2.scheme(), Scheme::Pzfp);
        let range = rf.value_range();
        let mut a = rf.reader();
        let mut b = rf2.reader();
        a.refine_to(1e-5 * range).unwrap();
        b.refine_to(1e-5 * range).unwrap();
        assert_eq!(a.data(), b.data());
        assert_eq!(a.total_fetched(), b.total_fetched());
    }

    #[test]
    fn pzfp_bound_never_regresses_while_refining() {
        // the conservative early-plane model must never push the reported
        // bound above the zero-vector bound the reader starts from
        let data = field_data(2048);
        let range = stats::value_range(&data);
        let rf = RefactoredField::refactor(Scheme::Pzfp, &data, &[2048]).unwrap();
        let mut reader = rf.reader();
        let mut prev = reader.guaranteed_bound();
        for i in 1..=25 {
            let eb = 0.5 * (2.0f64).powi(-i) * range;
            reader.refine_to(eb).unwrap();
            assert!(reader.guaranteed_bound() <= prev, "i={i}");
            let real = max_abs_diff(&data, reader.data());
            assert!(real <= reader.guaranteed_bound(), "i={i}");
            prev = reader.guaranteed_bound();
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        assert!(RefactoredField::refactor(Scheme::Psz3, &[1.0], &[2]).is_err());
    }
}
