//! Mask-based outlier management (§V-A).
//!
//! Points where the masked fields are exactly zero make √-type QoI
//! estimates unboundable (Theorem 2's denominator vanishes as the
//! reconstruction approaches zero). The paper records such points in a
//! bitmap at refactor time; because the archive *certifies* their value is
//! exactly zero, the retrieval side can treat them as known — value 0,
//! ε = 0 — and the estimator never sees the pathological case.
//!
//! Deviation from the paper, documented in DESIGN.md: the paper compacts the
//! arrays (refactors only unmasked points); we keep points in place (exact
//! zeros cost virtually nothing under any of our representations) and pin
//! them at retrieval. The estimator-facing behaviour — the reason the mask
//! exists — is identical.

use pqr_util::byteio::{ByteReader, ByteWriter};
use pqr_util::error::{PqrError, Result};

/// Bitmap of points whose listed fields are exactly zero in the original
/// data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZeroMask {
    /// The field indices the mask certifies (e.g. Vx, Vy, Vz).
    fields: Vec<usize>,
    /// Packed bitmap, one bit per point.
    bits: Vec<u64>,
    len: usize,
}

impl ZeroMask {
    /// Builds a mask from a per-point boolean vector.
    pub fn new(fields: Vec<usize>, mask: Vec<bool>) -> Self {
        let len = mask.len();
        let mut bits = vec![0u64; len.div_ceil(64)];
        for (j, &m) in mask.iter().enumerate() {
            if m {
                bits[j / 64] |= 1u64 << (j % 64);
            }
        }
        Self { fields, bits, len }
    }

    /// Number of points covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The field indices this mask certifies as exactly zero.
    pub fn fields(&self) -> &[usize] {
        &self.fields
    }

    /// Whether point `j` is masked (certified all-zero).
    #[inline]
    pub fn is_masked(&self, j: usize) -> bool {
        debug_assert!(j < self.len);
        (self.bits[j / 64] >> (j % 64)) & 1 == 1
    }

    /// Whether field `i` is covered by this mask.
    #[inline]
    pub fn covers_field(&self, i: usize) -> bool {
        self.fields.contains(&i)
    }

    /// Number of masked points.
    pub fn masked_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Storage cost in bytes (what a retrieval moves for the mask).
    pub fn storage_bytes(&self) -> usize {
        8 + 8 * self.fields.len() + self.bits.len() * 8
    }

    /// Serializes the mask.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.len as u64);
        w.put_u64_slice(&self.fields.iter().map(|&f| f as u64).collect::<Vec<_>>());
        w.put_u64_slice(&self.bits);
        w.finish()
    }

    /// Deserializes a mask.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let len = r.get_u64()? as usize;
        let fields: Vec<usize> = r.get_u64_vec()?.into_iter().map(|v| v as usize).collect();
        let bits = r.get_u64_vec()?;
        if bits.len() != len.div_ceil(64) {
            return Err(PqrError::CorruptStream("mask bitmap size mismatch".into()));
        }
        Ok(Self { fields, bits, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_semantics() {
        let mask = ZeroMask::new(vec![0, 2], vec![true, false, true, true, false]);
        assert_eq!(mask.len(), 5);
        assert!(mask.is_masked(0));
        assert!(!mask.is_masked(1));
        assert!(mask.is_masked(3));
        assert_eq!(mask.masked_count(), 3);
        assert!(mask.covers_field(0));
        assert!(!mask.covers_field(1));
        assert!(mask.covers_field(2));
    }

    #[test]
    fn crosses_word_boundaries() {
        let mut v = vec![false; 130];
        v[63] = true;
        v[64] = true;
        v[129] = true;
        let mask = ZeroMask::new(vec![0], v);
        assert!(mask.is_masked(63));
        assert!(mask.is_masked(64));
        assert!(mask.is_masked(129));
        assert!(!mask.is_masked(65));
        assert_eq!(mask.masked_count(), 3);
    }

    #[test]
    fn serialization_roundtrip() {
        let v: Vec<bool> = (0..1000).map(|i| i % 7 == 0).collect();
        let mask = ZeroMask::new(vec![1, 3, 5], v);
        let bytes = mask.to_bytes();
        let back = ZeroMask::from_bytes(&bytes).unwrap();
        assert_eq!(mask, back);
    }

    #[test]
    fn corrupt_mask_rejected() {
        let mask = ZeroMask::new(vec![0], vec![true; 100]);
        let bytes = mask.to_bytes();
        assert!(ZeroMask::from_bytes(&bytes[..bytes.len() - 4]).is_err());
    }

    #[test]
    fn empty_mask() {
        let mask = ZeroMask::new(vec![], vec![]);
        assert!(mask.is_empty());
        assert_eq!(mask.masked_count(), 0);
        let back = ZeroMask::from_bytes(&mask.to_bytes()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn storage_cost_is_about_one_bit_per_point() {
        let mask = ZeroMask::new(vec![0, 1, 2], vec![false; 64_000]);
        assert!(mask.storage_bytes() < 64_000 / 8 + 64);
    }
}
