//! Named multi-field datasets and their refactored archives.
//!
//! A [`Dataset`] holds the original fields (archive-side only); refactoring
//! produces a [`RefactoredDataset`] carrying, per field, the progressive
//! fragments plus the metadata the retrieval side needs: field value ranges
//! (for relative primary-data bounds, Algorithm 3) and — computed once at
//! refactor time, when the original data is still available — the value
//! ranges of registered QoIs (for relative QoI tolerances, §III-C).

use crate::mask::ZeroMask;
use crate::refactored::{default_snapshot_bounds, RefactoredField, Scheme};
use pqr_qoi::QoiExpr;
use pqr_util::error::{PqrError, Result};
use pqr_util::stats;

/// A dataset of equally-shaped named fields (the archive side's view).
#[derive(Debug, Clone)]
pub struct Dataset {
    dims: Vec<usize>,
    names: Vec<String>,
    fields: Vec<Vec<f64>>,
}

impl Dataset {
    /// An empty dataset of the given shape.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
            names: Vec::new(),
            fields: Vec::new(),
        }
    }

    /// Adds a field; its length must match the dataset shape.
    pub fn add_field(&mut self, name: &str, data: Vec<f64>) -> Result<usize> {
        let n: usize = self.dims.iter().product();
        if data.len() != n {
            return Err(PqrError::ShapeMismatch(format!(
                "field '{name}' has {} elements, dataset shape {:?} = {n}",
                data.len(),
                self.dims
            )));
        }
        self.names.push(name.to_string());
        self.fields.push(data);
        Ok(self.fields.len() - 1)
    }

    /// Shape shared by every field.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of fields (`nv` in the paper's notation).
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// Elements per field (`ne`).
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// Field index by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Field data by index.
    pub fn field(&self, i: usize) -> &[f64] {
        &self.fields[i]
    }

    /// Field name by index.
    pub fn field_name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Evaluates a QoI over the whole dataset (archive side: original data
    /// is available) and returns its value range — the denominator of the
    /// paper's relative QoI error metric.
    pub fn qoi_range(&self, qoi: &QoiExpr) -> Result<f64> {
        let arity = qoi.arity();
        if arity > self.num_fields() {
            return Err(PqrError::ShapeMismatch(format!(
                "QoI reads variable {} but dataset has {} fields",
                arity - 1,
                self.num_fields()
            )));
        }
        let ne = self.num_elements();
        if ne == 0 {
            return Ok(0.0);
        }
        // one full-domain evaluation per registered QoI at archive-build
        // time — worth the parallel min/max reduction on large volumes
        let (lo, hi) = pqr_util::par::par_chunk_reduce(
            ne,
            (f64::INFINITY, f64::NEG_INFINITY),
            |start, end| {
                let mut lo = f64::INFINITY;
                let mut hi = f64::NEG_INFINITY;
                // eval only reads variables below `arity` (checked above),
                // so gather just those — the tail of `x` stays 0.0 unused
                let mut x = vec![0.0f64; self.num_fields()];
                for j in start..end {
                    for (i, f) in self.fields.iter().take(arity).enumerate() {
                        x[i] = f[j];
                    }
                    let v = qoi.eval(&x);
                    if v.is_finite() {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
                (lo, hi)
            },
            |a, b| (a.0.min(b.0), a.1.max(b.1)),
        );
        if lo > hi {
            return Ok(0.0);
        }
        Ok(hi - lo)
    }

    /// True QoI values over the dataset (evaluation on original data) —
    /// used by the harnesses to measure *actual* QoI errors.
    pub fn qoi_values(&self, qoi: &QoiExpr) -> Vec<f64> {
        let ne = self.num_elements();
        let arity = qoi.arity().min(self.num_fields());
        let mut out = vec![0.0f64; ne];
        pqr_util::par::par_chunk_fill(&mut out, pqr_util::par::worker_count(), |start, chunk| {
            let mut x = vec![0.0f64; self.num_fields()];
            for (off, slot) in chunk.iter_mut().enumerate() {
                let j = start + off;
                for (i, f) in self.fields.iter().take(arity).enumerate() {
                    x[i] = f[j];
                }
                *slot = qoi.eval(&x);
            }
        });
        out
    }

    /// Builds the zero-outlier mask over the given fields (§V-A): a point is
    /// masked when *all* listed fields are exactly zero there.
    pub fn zero_mask(&self, field_indices: &[usize]) -> ZeroMask {
        let ne = self.num_elements();
        let mut bits = vec![false; ne];
        for (j, slot) in bits.iter_mut().enumerate() {
            *slot = !field_indices.is_empty()
                && field_indices.iter().all(|&i| self.fields[i][j] == 0.0);
        }
        ZeroMask::new(field_indices.to_vec(), bits)
    }

    /// Refactors every field under `scheme` with the default snapshot-bound
    /// ladder.
    pub fn refactor(&self, scheme: Scheme) -> Result<RefactoredDataset> {
        self.refactor_with_bounds(scheme, &default_snapshot_bounds())
    }

    /// Refactors with an explicit relative-bound ladder (Algorithm 1).
    ///
    /// Fields are independent, so they refactor in parallel — Algorithm 1's
    /// loop is embarrassingly parallel and refactoring dominates archive-side
    /// cost (Table IV). Dynamic dispatch handles the uneven per-field cost of
    /// snapshot schemes (18 compressions per field).
    pub fn refactor_with_bounds(
        &self,
        scheme: Scheme,
        rel_bounds: &[f64],
    ) -> Result<RefactoredDataset> {
        self.refactor_with_workers(scheme, rel_bounds, 0)
    }

    /// [`Dataset::refactor_with_bounds`] with an explicit worker budget
    /// (`0` resolves to [`pqr_util::par::worker_count`]).
    ///
    /// Workers split across fields first; when fields are scarcer than
    /// workers the surplus moves *inside* each field
    /// ([`RefactoredField::refactor_with_bounds_workers`]) to parallelise
    /// snapshot ladders, mgard levels and zfp block rounds. Output is
    /// byte-identical at every worker count.
    pub fn refactor_with_workers(
        &self,
        scheme: Scheme,
        rel_bounds: &[f64],
        workers: usize,
    ) -> Result<RefactoredDataset> {
        let (outer, inner) = split_workers(workers, self.fields.len());
        let fields = pqr_util::par::par_dynamic(self.fields.len(), outer, |i| {
            RefactoredField::refactor_with_bounds_workers(
                scheme,
                &self.fields[i],
                &self.dims,
                rel_bounds,
                inner,
            )
        })
        .into_iter()
        .collect::<Result<Vec<_>>>()?;
        Ok(RefactoredDataset {
            dims: self.dims.clone(),
            names: self.names.clone(),
            fields,
            mask: None,
        })
    }

    /// Refactors and **streams** the archive to `path`: with `overlap_io`,
    /// finished fields' fragments go to disk while later fields are still
    /// encoding — the write-side mirror of the retrieval engine's
    /// overlapped prefetcher. `mask_fields` builds and embeds the
    /// zero-outlier mask; `app_meta` is stored verbatim. The on-disk
    /// container is byte-identical for every `workers` / `overlap_io`
    /// combination. Returns the total bytes written; on error the partial
    /// file is removed.
    #[allow(clippy::too_many_arguments)]
    pub fn refactor_to_path(
        &self,
        scheme: Scheme,
        rel_bounds: &[f64],
        mask_fields: Option<&[usize]>,
        app_meta: &[u8],
        path: impl AsRef<std::path::Path>,
        workers: usize,
        overlap_io: bool,
    ) -> Result<u64> {
        let mask = mask_fields.map(|idx| self.zero_mask(idx));
        let (outer, inner) = split_workers(workers, self.fields.len());
        let path = path.as_ref();
        let res = crate::fragstore::write_container_streaming(
            path,
            &self.dims,
            &self.names,
            scheme,
            rel_bounds.len(),
            mask.as_ref(),
            app_meta,
            outer,
            overlap_io,
            |i| {
                RefactoredField::refactor_with_bounds_workers(
                    scheme,
                    &self.fields[i],
                    &self.dims,
                    rel_bounds,
                    inner,
                )
            },
        );
        if res.is_err() {
            let _ = std::fs::remove_file(path);
        }
        res
    }
}

/// Splits a worker budget across `nfields` fields: fields first (outer),
/// remaining depth inside each field (inner). `total == 0` resolves to
/// [`pqr_util::par::worker_count`].
fn split_workers(total: usize, nfields: usize) -> (usize, usize) {
    let total = if total == 0 {
        pqr_util::par::worker_count()
    } else {
        total
    };
    let outer = total.clamp(1, nfields.max(1));
    (outer, (total / outer).max(1))
}

/// A refactored multi-field archive: what the storage system holds and what
/// the retrieval engine reads from.
#[derive(Debug, Clone)]
pub struct RefactoredDataset {
    dims: Vec<usize>,
    names: Vec<String>,
    fields: Vec<RefactoredField>,
    mask: Option<ZeroMask>,
}

impl RefactoredDataset {
    /// Shape shared by every field.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// Elements per field.
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// The refactored field at `i`.
    pub fn field(&self, i: usize) -> &RefactoredField {
        &self.fields[i]
    }

    /// Field name at `i`.
    pub fn field_name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Field index by name.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Attaches the zero-outlier mask (built archive-side from the original
    /// data via [`Dataset::zero_mask`]).
    pub fn set_mask(&mut self, mask: ZeroMask) -> Result<()> {
        if mask.len() != self.num_elements() {
            return Err(PqrError::ShapeMismatch(format!(
                "mask covers {} points, dataset has {}",
                mask.len(),
                self.num_elements()
            )));
        }
        self.mask = Some(mask);
        Ok(())
    }

    /// The attached mask, if any.
    pub fn mask(&self) -> Option<&ZeroMask> {
        self.mask.as_ref()
    }

    /// Total archived bytes across fields (the "original" transfer baseline
    /// is `num_fields · num_elements · 8` instead).
    pub fn total_bytes(&self) -> usize {
        self.fields.iter().map(|f| f.total_bytes()).sum()
    }

    /// Raw (uncompressed f64) size of the dataset in bytes.
    pub fn raw_bytes(&self) -> usize {
        self.num_fields() * self.num_elements() * 8
    }

    /// The `(name, field)` pairs the fragment-store helpers consume.
    fn field_pairs(&self) -> Vec<(&str, &RefactoredField)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.fields.iter())
            .collect()
    }

    /// Serializes the whole archive (fields, names, mask) into the
    /// fragment-addressed container format (see [`crate::fragstore`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_with_meta(&[])
    }

    /// Like [`RefactoredDataset::to_bytes`], embedding an opaque
    /// application-metadata blob in the manifest (e.g. `pqr-core`'s QoI
    /// registry) so lazily opened archives can read it without touching a
    /// single payload fragment.
    pub fn to_bytes_with_meta(&self, app_meta: &[u8]) -> Vec<u8> {
        crate::fragstore::write_container(
            &self.dims,
            &self.field_pairs(),
            self.mask.as_ref(),
            app_meta,
        )
    }

    /// Deserializes (fully materialises) an archive from
    /// [`RefactoredDataset::to_bytes`]. Retrieval paths that only need a
    /// *part* of the archive should open a
    /// [`crate::fragstore::FragmentSource`] instead.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let src = crate::fragstore::InMemorySource::new(bytes.to_vec())?;
        Self::from_source(&src)
    }

    /// Fully materialises an archive by fetching every fragment of every
    /// field through `source`.
    pub fn from_source(source: &dyn crate::fragstore::FragmentSource) -> Result<Self> {
        let manifest = source.manifest()?;
        let mut names = Vec::with_capacity(manifest.num_fields());
        let mut fields = Vec::with_capacity(manifest.num_fields());
        for (i, entry) in manifest.fields.iter().enumerate() {
            names.push(entry.name.clone());
            fields.push(crate::fragstore::load_field(source, &manifest, i)?);
        }
        if let Some(mask) = &manifest.mask {
            if mask.len() != manifest.num_elements() {
                return Err(PqrError::ShapeMismatch(format!(
                    "mask covers {} points, dataset has {}",
                    mask.len(),
                    manifest.num_elements()
                )));
            }
        }
        Ok(Self {
            dims: manifest.dims,
            names,
            fields,
            mask: manifest.mask,
        })
    }
}

impl crate::fragstore::FragmentSource for RefactoredDataset {
    fn manifest(&self) -> Result<crate::fragstore::Manifest> {
        Ok(crate::fragstore::build_manifest(
            &self.dims,
            &self.field_pairs(),
            self.mask.as_ref(),
            &[],
            0,
        ))
    }

    fn fetch(&self, id: crate::fragstore::FragmentId) -> Result<std::sync::Arc<Vec<u8>>> {
        let field = self
            .fields
            .get(id.field as usize)
            .ok_or_else(|| PqrError::InvalidRequest(format!("field {} out of range", id.field)))?;
        Ok(std::sync::Arc::new(crate::fragstore::fetch_field_payload(
            field, id.index,
        )?))
    }
}

/// Convenience: relative L∞ error of a reconstruction against reference
/// values, using the reference range (the paper's distortion metric).
pub fn relative_qoi_error(reference: &[f64], approx: &[f64]) -> f64 {
    stats::rel_linf(reference, approx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqr_qoi::library::velocity_magnitude;

    fn small_dataset() -> Dataset {
        let n = 200;
        let mut ds = Dataset::new(&[n]);
        for c in 0..3usize {
            let f: Vec<f64> = (0..n)
                .map(|i| ((i + c * 31) as f64 * 0.05).sin() + 1.5)
                .collect();
            ds.add_field(["Vx", "Vy", "Vz"][c], f).unwrap();
        }
        ds
    }

    #[test]
    fn parallel_refactor_is_deterministic() {
        // the per-field parallel loop must be bit-identical to whatever a
        // serial pass would produce — archives are content-addressed in
        // practice and any nondeterminism would break dedup and the tests
        // comparing reader byte counts
        let ds = small_dataset();
        for scheme in [Scheme::Psz3Delta, Scheme::PmgardHb, Scheme::Pzfp] {
            let a = ds.refactor_with_bounds(scheme, &[1e-1, 1e-3]).unwrap();
            let b = ds.refactor_with_bounds(scheme, &[1e-1, 1e-3]).unwrap();
            for i in 0..ds.num_fields() {
                assert_eq!(
                    a.field(i).to_bytes(),
                    b.field(i).to_bytes(),
                    "{} field {i}",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn add_field_validates_shape() {
        let mut ds = Dataset::new(&[10]);
        assert!(ds.add_field("bad", vec![0.0; 7]).is_err());
        assert_eq!(ds.add_field("ok", vec![0.0; 10]).unwrap(), 0);
        assert_eq!(ds.num_fields(), 1);
        assert_eq!(ds.field_index("ok"), Some(0));
        assert_eq!(ds.field_index("nope"), None);
    }

    #[test]
    fn qoi_range_matches_direct_computation() {
        let ds = small_dataset();
        let q = velocity_magnitude(0, 3);
        let vals = ds.qoi_values(&q);
        let direct = stats::value_range(&vals);
        assert!((ds.qoi_range(&q).unwrap() - direct).abs() < 1e-12);
    }

    #[test]
    fn qoi_range_rejects_arity_overflow() {
        let ds = small_dataset();
        let q = velocity_magnitude(0, 5); // needs 5 fields, dataset has 3
        assert!(ds.qoi_range(&q).is_err());
    }

    #[test]
    fn zero_mask_flags_all_zero_points() {
        let mut ds = Dataset::new(&[4]);
        ds.add_field("a", vec![0.0, 1.0, 0.0, 0.0]).unwrap();
        ds.add_field("b", vec![0.0, 0.0, 2.0, 0.0]).unwrap();
        let m = ds.zero_mask(&[0, 1]);
        assert!(m.is_masked(0));
        assert!(!m.is_masked(1));
        assert!(!m.is_masked(2));
        assert!(m.is_masked(3));
        assert_eq!(m.masked_count(), 2);
    }

    #[test]
    fn refactor_preserves_names_and_shapes() {
        let ds = small_dataset();
        let rd = ds
            .refactor_with_bounds(Scheme::PmgardHb, &[1e-1, 1e-2])
            .unwrap();
        assert_eq!(rd.num_fields(), 3);
        assert_eq!(rd.field_name(2), "Vz");
        assert_eq!(rd.field_index("Vy"), Some(1));
        assert_eq!(rd.dims(), &[200]);
        assert!(rd.total_bytes() > 0);
        assert_eq!(rd.raw_bytes(), 3 * 200 * 8);
    }

    #[test]
    fn mask_shape_validated() {
        let ds = small_dataset();
        let mut rd = ds.refactor_with_bounds(Scheme::PmgardHb, &[1e-1]).unwrap();
        let bad = ZeroMask::new(vec![0], vec![false; 3]);
        assert!(rd.set_mask(bad).is_err());
        let good = ds.zero_mask(&[0, 1, 2]);
        assert!(rd.set_mask(good).is_ok());
        assert!(rd.mask().is_some());
    }

    #[test]
    fn empty_dataset_qoi_range_zero() {
        let ds = Dataset::new(&[0]);
        let q = QoiExpr::var(0);
        // arity 1 > 0 fields → error, not a panic
        assert!(ds.qoi_range(&q).is_err());
    }

    #[test]
    fn refactored_dataset_serialization_roundtrip() {
        let ds = small_dataset();
        let mut rd = ds
            .refactor_with_bounds(Scheme::Psz3Delta, &[1e-1, 1e-3])
            .unwrap();
        rd.set_mask(ds.zero_mask(&[0, 1, 2])).unwrap();
        let bytes = rd.to_bytes();
        let back = RefactoredDataset::from_bytes(&bytes).unwrap();
        assert_eq!(back.num_fields(), 3);
        assert_eq!(back.field_name(1), "Vy");
        assert_eq!(back.dims(), rd.dims());
        assert_eq!(back.total_bytes(), rd.total_bytes());
        assert!(back.mask().is_some());
        assert!(RefactoredDataset::from_bytes(&bytes[..30]).is_err());
    }

    #[test]
    fn streaming_refactor_is_schedule_invariant_and_readable() {
        // every (workers, overlap) schedule must produce the same bytes,
        // and the padded-directory file must load back identically
        let ds = small_dataset();
        let dir = std::env::temp_dir().join("pqr_field_streaming_test");
        std::fs::create_dir_all(&dir).unwrap();
        for scheme in [Scheme::Psz3, Scheme::PmgardOb, Scheme::Pzfp] {
            let mut reference: Option<Vec<u8>> = None;
            for (workers, overlap) in [(1, false), (1, true), (4, false), (4, true)] {
                let path = dir.join(format!("{}_{workers}_{overlap}.pqr", scheme.name()));
                ds.refactor_to_path(
                    scheme,
                    &[1e-1, 1e-3],
                    Some(&[0, 1]),
                    b"meta",
                    &path,
                    workers,
                    overlap,
                )
                .unwrap();
                let bytes = std::fs::read(&path).unwrap();
                match &reference {
                    None => reference = Some(bytes),
                    Some(r) => assert_eq!(
                        r,
                        &bytes,
                        "{} workers={workers} overlap={overlap}",
                        scheme.name()
                    ),
                }
                std::fs::remove_file(&path).unwrap();
            }
            // the streamed container parses and matches the in-memory path
            let path = dir.join(format!("{}_load.pqr", scheme.name()));
            ds.refactor_to_path(
                scheme,
                &[1e-1, 1e-3],
                Some(&[0, 1]),
                b"meta",
                &path,
                2,
                true,
            )
            .unwrap();
            let back = RefactoredDataset::from_bytes(&std::fs::read(&path).unwrap()).unwrap();
            let mut rd = ds.refactor_with_bounds(scheme, &[1e-1, 1e-3]).unwrap();
            rd.set_mask(ds.zero_mask(&[0, 1])).unwrap();
            for i in 0..ds.num_fields() {
                assert_eq!(back.field(i).to_bytes(), rd.field(i).to_bytes());
            }
            assert!(back.mask().is_some());
            std::fs::remove_file(&path).unwrap();
        }
    }
}
